"""Ablation: wavefront occupancy (latency hiding) per compute unit.

The Fig. 8 engines run latency-exposed (one resident wavefront per CU
— the FPGA MIAOW regime).  A deeper wavepool hides memory latency by
interleaving wavefronts; this sweep quantifies how much of the 5-CU
speedup a single busier CU could have bought instead, using the ELM
kernel's four workgroups as the workload.
"""

import pytest

from conftest import save_result
from repro.eval.prep import get_bundle
from repro.eval.report import format_table
from repro.miaow.gpu import Gpu

RESIDENCIES = (1, 2, 4)
BENCHMARK = "403.gcc"


@pytest.fixture(scope="module")
def occupancy_results():
    bundle = get_bundle(BENCHMARK, "elm")
    out = {}
    for resident in RESIDENCIES:
        deployment = bundle.make_deployment()
        gpu = Gpu(num_cus=1, max_resident=resident)
        deployment.load(gpu)
        result = deployment.infer(bundle.normal_ids[:bundle.window])
        reference = deployment.reference_score(
            bundle.normal_ids[:bundle.window]
        )
        out[resident] = (result.dispatch.cycles, result.score, reference)
    return out


def test_occupancy_ablation(benchmark, occupancy_results):
    bundle = get_bundle(BENCHMARK, "elm")

    def one_inference():
        deployment = bundle.make_deployment()
        deployment.load(Gpu(num_cus=1, max_resident=4))
        return deployment.infer(bundle.normal_ids[:bundle.window])

    benchmark.pedantic(one_inference, rounds=3, iterations=1)

    base = occupancy_results[1][0]
    rows = [
        (resident, cycles, f"{base / cycles:.2f}x")
        for resident, (cycles, _, _) in sorted(occupancy_results.items())
    ]
    save_result(
        "ablation_occupancy",
        format_table(
            ["resident wavefronts", "ELM cycles (1 CU)", "speedup"],
            rows,
            title="Ablation — wavefront occupancy vs latency hiding",
        ),
    )

    # Results are numerically identical at any occupancy...
    scores = {s for _, s, _ in occupancy_results.values()}
    assert len(scores) == 1
    assert occupancy_results[1][1] == pytest.approx(
        occupancy_results[1][2], rel=1e-3
    )
    # ...and interleaving four workgroups on one CU hides some latency,
    # but far less than four real CUs would (issue bandwidth is shared).
    cycles = [occupancy_results[r][0] for r in RESIDENCIES]
    assert cycles[1] < cycles[0]
    assert cycles[2] <= cycles[1]
    assert cycles[0] / cycles[2] < 3.0  # no 4x from occupancy alone
