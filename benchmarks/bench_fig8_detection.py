"""Fig. 8: anomaly detection latency per benchmark and model, on the
original MIAOW vs the trimmed ML-MIAOW."""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.fig8 import (
    PAPER_LATENCY_US,
    PAPER_MEAN_SPEEDUP,
    fig8_summary,
    format_fig8,
    run_fig8,
)

TRIALS = 5


@pytest.fixture(scope="module")
def fig8_rows():
    return run_fig8(trials=TRIALS)


def test_fig8_detection_latency(benchmark, fig8_rows):
    """Benchmark one representative cell; validate the full figure."""
    from repro.eval.fig8 import _run_cell

    benchmark.pedantic(
        _run_cell,
        args=("403.gcc", "lstm", "ML-MIAOW", 1, 0),
        rounds=1,
        iterations=1,
    )
    save_result("fig8", format_fig8(fig8_rows))

    summary = fig8_summary(fig8_rows)

    # Engine speedup: ML-MIAOW beats MIAOW for both models; the mean
    # is in the paper's 2.75x neighbourhood.
    assert 1.5 < summary["lstm/speedup"] < 4.5
    assert 2.5 < summary["elm/speedup"] < 4.5
    assert 2.0 < summary["mean_speedup"] < 4.5

    # ELM latencies are near-constant across benchmarks (syscalls are
    # sparse enough that no queueing develops).
    elm_ml = [
        r.ml_miaow.mean_latency_us
        for r in fig8_rows
        if r.model == "elm" and r.ml_miaow.mean_latency_us
    ]
    assert np.std(elm_ml) / np.mean(elm_ml) < 0.1

    # LSTM latencies vary by benchmark (branch pressure differs).
    lstm_miaow = [
        r.miaow.mean_latency_us
        for r in fig8_rows
        if r.model == "lstm" and r.miaow.mean_latency_us
    ]
    assert np.std(lstm_miaow) / np.mean(lstm_miaow) > 0.15


def test_fig8_omnetpp_overflow_story(benchmark, fig8_rows):
    """471.omnetpp overflows the MCM FIFO under MIAOW but (rarely)
    under ML-MIAOW — the paper's headline queueing observation."""
    benchmark(lambda: fig8_summary(fig8_rows))
    omnetpp = next(
        r for r in fig8_rows
        if r.benchmark == "471.omnetpp" and r.model == "lstm"
    )
    assert omnetpp.miaow.overflowed
    assert not omnetpp.ml_miaow.overflowed
    # and it is the slowest benchmark under the untrimmed engine
    lstm_rows = [r for r in fig8_rows if r.model == "lstm"]
    slowest = max(
        lstm_rows,
        key=lambda r: r.miaow.mean_latency_us or 0.0,
    )
    assert slowest.benchmark in ("471.omnetpp", "483.xalancbmk")


def test_fig8_ordering_vs_paper(benchmark, fig8_rows):
    """Relative ordering of the four averaged bars matches Fig. 8."""
    benchmark(lambda: format_fig8(fig8_rows))
    summary = fig8_summary(fig8_rows)
    assert (
        summary["elm/ML-MIAOW"]
        < summary["elm/MIAOW"]
        < summary["lstm/MIAOW"]
    )
    assert summary["lstm/ML-MIAOW"] < summary["lstm/MIAOW"]
    # paper reference, for the record in the printed table
    assert PAPER_LATENCY_US[("elm", "ML-MIAOW")] < PAPER_LATENCY_US[
        ("elm", "MIAOW")
    ]
    assert PAPER_MEAN_SPEEDUP == 2.75
