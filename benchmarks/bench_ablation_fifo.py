"""Ablation: MCM FIFO depth vs branch-information loss.

The paper observes overflow on branch-heavy workloads under the slow
engine; this sweep quantifies the depth/loss trade the 16-entry FIFO
(10 BRAMs in Table I) sits on.  Depth buys burst absorption but not
stability: with the arrival rate above the service rate (471.omnetpp
on MIAOW) every finite FIFO eventually drops.
"""

import pytest

from conftest import save_result
from repro.eval.prep import get_bundle, make_miaow, make_ml_miaow
from repro.eval.report import format_table

DEPTHS = (4, 8, 16, 32, 64)
BENCHMARK = "471.omnetpp"


@pytest.fixture(scope="module")
def drops_by_depth():
    bundle = get_bundle(BENCHMARK, "lstm")
    out = {}
    for depth in DEPTHS:
        row = {}
        for engine_name, factory in (
            ("MIAOW", make_miaow), ("ML-MIAOW", make_ml_miaow)
        ):
            soc = bundle.make_soc(
                factory(), execute_on_gpu=False, fifo_depth=depth
            )
            result = soc.run_attack_trial(
                normal_ids=bundle.normal_ids[:400],
                mean_interval_us=bundle.mean_interval_us,
                gadget_ids=[int(g) for g in bundle.gadget_pool[:10]],
                onset_index=200,
                seed=0,
            )
            row[engine_name] = (result.dropped_vectors, result.inferences)
        out[depth] = row
    return out


def test_fifo_depth_ablation(benchmark, drops_by_depth):
    bundle = get_bundle(BENCHMARK, "lstm")

    def one():
        soc = bundle.make_soc(make_miaow(), execute_on_gpu=False,
                              fifo_depth=16)
        soc.run_monitored_stream(
            bundle.normal_ids[:100],
            [i * bundle.mean_interval_us * 1e3 for i in range(100)],
        )

    benchmark.pedantic(one, rounds=3, iterations=1)

    rows = []
    for depth in DEPTHS:
        miaow_drops, miaow_ok = drops_by_depth[depth]["MIAOW"]
        ml_drops, ml_ok = drops_by_depth[depth]["ML-MIAOW"]
        rows.append((depth, miaow_drops, miaow_ok, ml_drops, ml_ok))
    save_result(
        "ablation_fifo",
        format_table(
            ["depth", "MIAOW drops", "MIAOW served",
             "ML-MIAOW drops", "ML-MIAOW served"],
            rows,
            title=f"Ablation — MCM FIFO depth ({BENCHMARK}, LSTM)",
        ),
    )

    # Shallow FIFOs lose data under the slow engine (the paper's
    # "occasionally observed" overflow at the 16-entry depth); enough
    # depth absorbs the bursts since omnetpp sits just under
    # saturation on MIAOW (rho ~ 0.9).
    miaow_drops = [drops_by_depth[d]["MIAOW"][0] for d in DEPTHS]
    assert miaow_drops[0] > 0
    assert drops_by_depth[16]["MIAOW"][0] > 0
    assert sorted(miaow_drops, reverse=True) == miaow_drops
    # The fast engine loses strictly less at every depth.
    for depth in DEPTHS:
        assert (
            drops_by_depth[depth]["ML-MIAOW"][0]
            <= drops_by_depth[depth]["MIAOW"][0]
        )
    assert drops_by_depth[64]["ML-MIAOW"][0] == 0
