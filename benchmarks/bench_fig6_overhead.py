"""Fig. 6: host performance overhead across SPEC CINT2006."""

import pytest

from conftest import save_result
from repro.eval.fig6 import (
    PAPER_GEOMEAN,
    fig6_geomeans,
    format_fig6,
    run_fig6,
)


def test_fig6_overhead(benchmark):
    rows = benchmark(run_fig6)
    save_result("fig6", format_fig6(rows))

    assert len(rows) == 12
    means = fig6_geomeans(rows)

    # Shape: RTAD << SW_SYS << SW_FUNC << SW_ALL.
    assert means["RTAD"] < means["SW_SYS"] < means["SW_FUNC"] < means["SW_ALL"]
    assert means["RTAD"] < 0.1

    # Calibrated geomeans land on the paper's numbers.
    for key, paper_value in PAPER_GEOMEAN.items():
        assert means[key] == pytest.approx(paper_value, rel=0.25), key

    # Per-benchmark: omnetpp/xalancbmk carry the heaviest SW_FUNC tax.
    by_name = {r.benchmark: r for r in rows}
    heaviest = max(rows, key=lambda r: r.sw_func_pct)
    assert heaviest.benchmark in ("471.omnetpp", "483.xalancbmk")
    assert by_name["456.hmmer"].sw_all_pct < by_name["462.libquantum"].sw_all_pct
