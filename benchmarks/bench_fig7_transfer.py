"""Fig. 7: data transfer latency, software path vs RTAD hardware path."""

import pytest

from conftest import save_result
from repro.eval.fig7 import PAPER_RTAD, PAPER_SW, format_fig7, run_fig7


def test_fig7_transfer_latency(benchmark):
    result = benchmark(run_fig7)
    save_result("fig7", format_fig7(result))

    # SW: dominated by the CPU copy into peripheral memory.
    assert result.sw.copy_us > result.sw.vectorize_us > result.sw.read_us
    assert result.sw.total_us == pytest.approx(PAPER_SW.total_us, rel=0.05)

    # RTAD: dominated by PTM FIFO buffering; IGM step is 2 cycles.
    assert result.rtad.read_us > result.rtad.copy_us
    assert result.rtad.vectorize_us == pytest.approx(0.016, rel=0.01)
    assert result.rtad.total_us == pytest.approx(
        PAPER_RTAD.total_us, rel=0.25
    )

    # RTAD drives the MCM ~16 us earlier (paper: 16.4 us / 4100 CPU
    # cycles at 250 MHz).
    assert result.rtad_advantage_us == pytest.approx(16.4, rel=0.1)
    cpu_cycles_earlier = result.rtad_advantage_us * 250
    assert cpu_cycles_earlier == pytest.approx(4_100, rel=0.1)
