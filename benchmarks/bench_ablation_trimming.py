"""Ablation: coverage merged across N deployed models vs trim depth.

Section II: "we consider simultaneous trimming for multiple
applications by merging the minimum required logics of several
different ML models."  The cost of generality: every extra deployed
model's coverage keeps more logic, so the trimmed engine grows from
the single-model minimum toward full MIAOW.
"""

import pytest

from conftest import save_result
from repro.eval.coverage_runs import elm_run, lstm_run
from repro.eval.report import format_table
from repro.miaow.trimming import TrimmingFlow


@pytest.fixture(scope="module")
def merge_results():
    """Coverage reports per deployment mix, plus ONE area model.

    The area model is calibrated once, on the standard merged
    coverage; the per-mix engines are then priced under that fixed
    calibration (recalibrating per mix would pin every answer to the
    published ML-MIAOW area by construction).
    """
    from repro.synthesis.area_model import CuAreaModel

    flow = TrimmingFlow()
    elm = elm_run()
    lstm = lstm_run()
    configs = {
        "ELM only": [elm],
        "LSTM only": [lstm],
        "ELM + LSTM": [elm, lstm],
    }
    reports = {
        label: flow.merge(flow.simulate(runs))
        for label, runs in configs.items()
    }
    area_model = CuAreaModel(covered_ours=reports["ELM + LSTM"].covered)
    return reports, area_model


def test_coverage_merge_ablation(benchmark, merge_results):
    flow = TrimmingFlow()
    lstm = lstm_run()
    benchmark.pedantic(
        lambda: flow.merge(flow.simulate([lstm])), rounds=2, iterations=1
    )

    reports, area_model = merge_results
    full = area_model.full_area().lut_ff_sum

    rows = []
    areas = {}
    for label, report in reports.items():
        area = area_model.coverage_trimmed_area(report.covered)
        areas[label] = area.lut_ff_sum
        rows.append(
            (
                label,
                len(report.covered),
                len(report.covered_opcodes),
                round(area.lut_ff_sum),
                f"-{(1 - area.lut_ff_sum / full) * 100:.0f}%",
            )
        )
    save_result(
        "ablation_trimming_merge",
        format_table(
            ["deployed models", "covered points", "kept opcodes",
             "trimmed LUT+FF", "reduction"],
            rows,
            title="Ablation — coverage merge breadth vs trim depth "
                  "(fixed calibration)",
        ),
    )

    # Merged coverage keeps at least as much as each single model.
    merged = reports["ELM + LSTM"]
    assert merged.covered >= reports["ELM only"].covered
    assert merged.covered >= reports["LSTM only"].covered
    assert areas["ELM + LSTM"] >= max(
        areas["ELM only"], areas["LSTM only"]
    )
    # The ELM's kernel vocabulary is strictly smaller; its engine is
    # the smallest of the three.
    assert areas["ELM only"] < areas["LSTM only"]
    # ...and even the merged engine still trims most of the SI fat.
    assert areas["ELM + LSTM"] < 0.4 * full
