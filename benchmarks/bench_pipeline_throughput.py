"""Trace-dataplane throughput: per-event loop vs batched stages.

Times ``RtadSoc.run_events`` on the same demo SoC and the same traces
under both dataplane implementations and records events/sec into
``benchmarks/results/BENCH_pipeline.json`` (mirrored to the
repository root via ``bench_io.save_result``).  The acceptance gate for
the staged-dataplane refactor is >= 3x events/sec on the 1M-event
trace; both implementations produce byte-identical records
(``tests/test_pipeline_equivalence.py``), so this is pure speed.

Runs two ways:

- ``pytest benchmarks/bench_pipeline_throughput.py`` — all three
  trace sizes, asserts the 1M-event speedup gate;
- ``python benchmarks/bench_pipeline_throughput.py --smoke`` — the
  smallest size only, for the CI smoke step (fails on speedup < 1).
"""

from __future__ import annotations

import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.metrics import build_demo_soc, demo_events  # noqa: E402

RESULT_NAME = "BENCH_pipeline.json"

FULL_SIZES = (50_000, 200_000, 1_000_000)
SMOKE_SIZES = (50_000,)
SPEEDUP_GATE = 3.0


def _timed_run(soc, events, dataplane: str):
    start = time.perf_counter()
    records = soc.run_events(events, dataplane=dataplane)
    wall_s = time.perf_counter() - start
    return wall_s, len(records)


def run_throughput(sizes=FULL_SIZES, kind: str = "lstm") -> dict:
    soc = build_demo_soc(kind)
    entries = []
    for size in sizes:
        events = demo_events(
            kind, 0, size, run_label=f"throughput-{size}"
        )
        measured = {}
        for dataplane in ("loop", "batched"):
            wall_s, total_records = _timed_run(soc, events, dataplane)
            measured[dataplane] = {
                "wall_s": round(wall_s, 4),
                "events_per_s": round(len(events) / wall_s, 1),
            }
        entries.append(
            {
                "events": len(events),
                "loop": measured["loop"],
                "batched": measured["batched"],
                "speedup": round(
                    measured["batched"]["events_per_s"]
                    / measured["loop"]["events_per_s"],
                    2,
                ),
            }
        )
    return {
        "benchmark": "pipeline_throughput",
        "kind": kind,
        "dataplanes": ["loop", "batched"],
        "gate_speedup_at_1m": SPEEDUP_GATE,
        "sizes": entries,
    }


def save_and_format(result: dict, smoke: bool = False) -> str:
    from bench_io import save_result

    result = dict(result, smoke=smoke)
    save_result(RESULT_NAME, result)
    lines = [
        "pipeline throughput: per-event loop vs batched stages",
        f"{'events':>10}  {'loop ev/s':>12}  {'batched ev/s':>13}  "
        f"{'speedup':>8}",
    ]
    for entry in result["sizes"]:
        lines.append(
            f"{entry['events']:>10}  "
            f"{entry['loop']['events_per_s']:>12,.0f}  "
            f"{entry['batched']['events_per_s']:>13,.0f}  "
            f"{entry['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def test_pipeline_throughput():
    result = run_throughput(FULL_SIZES)
    print()
    print(save_and_format(result))
    largest = result["sizes"][-1]
    assert largest["events"] == 1_000_000
    assert largest["speedup"] >= SPEEDUP_GATE, (
        f"batched dataplane only {largest['speedup']}x at 1M events"
    )
    # batched must never be slower, at any size
    for entry in result["sizes"]:
        assert entry["speedup"] >= 1.0, entry


def main(argv) -> int:
    smoke = "--smoke" in argv
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    result = run_throughput(sizes)
    print(save_and_format(result, smoke=smoke))
    worst = min(entry["speedup"] for entry in result["sizes"])
    if smoke:
        return 0 if worst >= 1.0 else 1
    return 0 if result["sizes"][-1]["speedup"] >= SPEEDUP_GATE else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
