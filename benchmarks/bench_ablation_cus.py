"""Ablation: ML-MIAOW compute-unit count vs detection latency.

The paper fixes 5 CUs (what fits the ZC706 after trimming); this sweep
shows the latency curve the designers traded against area — gains
saturate once the CU count reaches the kernels' workgroup parallelism
(4 gate workgroups + serial tail for the LSTM).
"""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.prep import get_bundle
from repro.eval.report import format_table
from repro.miaow.gpu import Gpu

CU_COUNTS = (1, 2, 3, 4, 5, 8)
BENCHMARK = "403.gcc"


@pytest.fixture(scope="module")
def latency_by_cus():
    bundle = get_bundle(BENCHMARK, "lstm")
    results = {}
    for num_cus in CU_COUNTS:
        soc = bundle.make_soc(Gpu(num_cus=num_cus), execute_on_gpu=False)
        result = soc.run_attack_trial(
            normal_ids=bundle.normal_ids[:300],
            mean_interval_us=bundle.mean_interval_us,
            gadget_ids=[int(g) for g in bundle.gadget_pool[:8]],
            onset_index=150,
            seed=0,
        )
        results[num_cus] = result.detection_latency_us
    return results


def test_cu_count_ablation(benchmark, latency_by_cus):
    bundle = get_bundle(BENCHMARK, "lstm")

    def one_trial():
        soc = bundle.make_soc(Gpu(num_cus=5), execute_on_gpu=False)
        return soc.run_attack_trial(
            normal_ids=bundle.normal_ids[:150],
            mean_interval_us=bundle.mean_interval_us,
            gadget_ids=[1, 2, 3, 4],
            onset_index=75,
            seed=1,
        )

    benchmark.pedantic(one_trial, rounds=3, iterations=1)

    rows = [
        (cus, latency_by_cus[cus],
         latency_by_cus[1] / latency_by_cus[cus])
        for cus in CU_COUNTS
    ]
    save_result(
        "ablation_cus",
        format_table(
            ["CUs", "LSTM judgment latency us", "speedup vs 1 CU"],
            rows,
            title=f"Ablation — CU count ({BENCHMARK}, LSTM)",
        ),
    )

    # More CUs never hurt; 4 CUs capture the gate-level parallelism.
    latencies = [latency_by_cus[c] for c in CU_COUNTS]
    assert all(b <= a * 1.02 for a, b in zip(latencies, latencies[1:]))
    gain_1_to_4 = latency_by_cus[1] / latency_by_cus[4]
    gain_4_to_8 = latency_by_cus[4] / latency_by_cus[8]
    assert gain_1_to_4 > 1.5
    assert gain_4_to_8 < 1.25  # saturation past the WG parallelism
