"""Ablation: fixed-point precision vs detection quality.

A quantized deployment avoids the float datapath entirely, letting the
coverage flow trim the FP blocks too — *if* detection survives the
precision loss.  This bench sweeps weight/activation formats and
reports AUC and rank agreement against the float32 ELM.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.report import format_table
from repro.ml.detector import roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.quantize import QuantizedElm, quantization_agreement
from repro.utils.fixed_point import FixedPointFormat
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

FORMATS = [
    ("Q4.12 / Q8.8", FixedPointFormat(4, 12), FixedPointFormat(8, 8)),
    ("Q2.6  / Q4.4", FixedPointFormat(2, 6), FixedPointFormat(4, 4)),
    ("Q2.3  / Q3.2", FixedPointFormat(2, 3), FixedPointFormat(3, 2)),
]


@pytest.fixture(scope="module")
def elm_setup():
    program = SyntheticProgram(get_profile("403.gcc"), seed=31)
    dataset = build_dataset(
        program, feature="syscall", window=16,
        train_events=14_000, test_events=6_000, num_attacks=25, seed=1,
    )
    dictionary = PatternDictionary(n=3, capacity=1023, unseen_gain=3)
    dictionary.fit(dataset.train_windows)
    train = dictionary.features(dataset.train_windows)
    normal = dictionary.features(dataset.test_normal)
    anomalous = dictionary.features(dataset.test_anomalous)
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=1
    ).fit(train)
    return model, train, normal, anomalous


def test_quantization_ablation(benchmark, elm_setup):
    model, train, normal, anomalous = elm_setup

    benchmark.pedantic(
        lambda: QuantizedElm.from_model(model).score(normal[:100]),
        rounds=3, iterations=1,
    )

    float_auc = roc_auc(
        model.score_mahalanobis(normal), model.score_mahalanobis(anomalous)
    )
    rows = [("float32", round(float_auc, 3), "-", "-")]
    aucs = {}
    for label, w_fmt, a_fmt in FORMATS:
        quantized = QuantizedElm.from_model(model, w_fmt, a_fmt)
        auc = roc_auc(
            quantized.score(normal), quantized.score(anomalous)
        )
        agreement = quantization_agreement(
            model, normal[:200], w_fmt, a_fmt
        )
        savings = quantized.memory_savings_vs_f32()
        aucs[label] = auc
        rows.append(
            (label, round(auc, 3), round(agreement, 3),
             f"{savings * 100:.0f}%")
        )
    save_result(
        "ablation_quantization",
        format_table(
            ["format (w/act)", "AUC", "rank agreement", "memory saved"],
            rows,
            title="Ablation — fixed-point precision vs detection quality",
        ),
    )

    # 16-bit weights lose essentially nothing; extreme formats decay.
    assert aucs["Q4.12 / Q8.8"] > float_auc - 0.03
    assert aucs["Q2.3  / Q3.2"] <= aucs["Q4.12 / Q8.8"] + 1e-9
