"""Shared benchmark-result I/O: one writer, two synchronized homes.

Every ``BENCH_*.json`` document lives in the canonical
``benchmarks/results/`` directory *and* as a mirror at the repository
root, where the acceptance gate looks for it.  Historically each
benchmark script hand-rolled its own mirroring (and the pipeline
benchmark relied on the MCM benchmark to copy its file), which let the
two copies drift.  :func:`save_result` is now the only writer: both
copies come from the same serialized payload in the same call, and
``tests/test_bench_results_sync.py`` pins byte-equality for the
checked-in files.
"""

from __future__ import annotations

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Result documents mirrored at the repository root.  Adding a new
#: benchmark JSON here is what opts it into the drift test.
MIRRORED_RESULTS = (
    "BENCH_pipeline.json",
    "BENCH_mcm.json",
    "BENCH_mcm_batched.json",
    "BENCH_serve.json",
    "BENCH_fleet.json",
)


def save_result(name: str, result: dict) -> str:
    """Write one benchmark JSON to ``results/`` and its root mirror.

    Returns the serialized payload.  ``name`` must be registered in
    :data:`MIRRORED_RESULTS` so the drift test covers the new file.
    """
    if name not in MIRRORED_RESULTS:
        raise ValueError(
            f"unknown benchmark result {name!r}; add it to "
            "bench_io.MIRRORED_RESULTS so the drift test covers it"
        )
    payload = json.dumps(result, indent=2) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(payload)
    (REPO_ROOT / name).write_text(payload)
    return payload
