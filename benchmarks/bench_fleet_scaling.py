"""Fleet sharding scalability: modeled aggregate events/s vs shards.

The quantity this benchmark reports is **model-domain** aggregate
throughput, the same time basis as the paper-facing latency numbers
(``bench_ablation_cus.py`` reports modeled detection latency the same
way): every :class:`~repro.mcm.mcm.InferenceRecord` carries virtual
timestamps (``arrival_ns`` .. ``done_ns``) in the simulated SoC's
clock, where one shared ML-MIAOW engine serves every tenant's vectors.
With all tenants behind a single engine the simulated engine is the
bottleneck — the modeled round makespan far exceeds the trace's
arrival span.  Sharding tenants across N fleet workers gives each
shard its *own* modeled engine, so the aggregate makespan shrinks by
~N.  The metric:

    modeled aggregate events/s
        = total branch events / max-over-shards(modeled makespan)

where a shard's makespan is ``max(done_ns) - min(arrival_ns)`` over
its tenants' records for the round.

**Host wall-clock events/s is reported alongside and is NOT the
gate**: the simulation itself is CPU-bound Python and this container
is single-core, so wall-clock throughput stays roughly flat no matter
how many worker processes run (noted per point in the JSON).

Determinism ride-along: verdict flags per tenant must be identical
across every shard count, and counter conservation
(``fleet.rounds.admitted == fresh + replayed``) must hold per point.

Results go to ``benchmarks/results/BENCH_fleet.json`` with a root
mirror via ``bench_io.save_result``.  Gate: modeled aggregate events/s
at 4 shards >= 3x the 1-shard baseline.

Runs three ways:

- ``pytest benchmarks/bench_fleet_scaling.py``
- ``python benchmarks/bench_fleet_scaling.py``
- ``python benchmarks/bench_fleet_scaling.py --smoke`` (CI: fewer
  events, same gates)
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_NAME = "BENCH_fleet.json"
SEED = 0
TENANTS = 8
SHARD_COUNTS = (1, 2, 4)
EVENTS_PER_TENANT = 1_500
SMOKE_EVENTS_PER_TENANT = 500
SPEEDUP_GATE = 3.0


def _flags(records):
    return [(bool(r.anomalous), float(r.score)) for r in records]


def run_fleet_scaling(
    events_per_tenant: int = EVENTS_PER_TENANT, seed: int = SEED
) -> dict:
    """One scaling sweep over :data:`SHARD_COUNTS`."""
    from repro.eval.metrics import demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = [f"tenant{index}" for index in range(TENANTS)]
    # Homogeneous offered load: every tenant replays the same CFG walk
    # (its own mapper/encoder/lane, same event stream), the standard
    # scaling-benchmark setup — shard throughput then measures the
    # engine, not accidental per-walk load imbalance.
    stream = demo_events(
        "lstm", seed, events_per_tenant, run_label="fleet-scaling"
    )
    traces = {name: stream for name in names}
    total_events = sum(len(events) for events in traces.values())
    points = []
    flags_by_shards = {}
    for num_shards in SHARD_COUNTS:
        journal_root = tempfile.mkdtemp(prefix="repro-bench-fleet-")
        with FleetCoordinator(
            demo_factory,
            names,
            journal_root,
            FleetConfig(num_shards=num_shards),
        ) as fleet:
            start_s = time.perf_counter()
            records = fleet.run_events(traces)
            wall_s = time.perf_counter() - start_s
            counters = fleet.counters()
            placement = {
                shard.id: list(shard.tenants) for shard in fleet.shards
            }
        flags_by_shards[num_shards] = {
            name: _flags(records.get(name, [])) for name in names
        }
        # Modeled makespan per shard: its private engine's busy span
        # over this round, in the simulation's virtual clock.
        makespans_ns = []
        for shard_tenants in placement.values():
            shard_records = [
                record
                for name in shard_tenants
                for record in records.get(name, [])
            ]
            if not shard_records:
                continue
            makespans_ns.append(
                max(r.done_ns for r in shard_records)
                - min(r.arrival_ns for r in shard_records)
            )
        makespan_ns = max(makespans_ns)
        admitted = int(counters.get("fleet.rounds.admitted", 0))
        replayed = int(counters.get("fleet.rounds.replayed", 0))
        fresh = sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        )
        points.append(
            {
                "shards": num_shards,
                "tenants": TENANTS,
                "events": total_events,
                "verdicts": sum(len(r) for r in records.values()),
                "modeled_makespan_us": makespan_ns / 1e3,
                "modeled_events_per_s": total_events
                / (makespan_ns / 1e9),
                "wall_s": wall_s,
                "wall_events_per_s": total_events / wall_s,
                "wall_note": (
                    "host wall-clock; flat on a single-core container "
                    "regardless of worker count — not the gate"
                ),
                "conservation_ok": admitted == fresh + replayed,
            }
        )
    baseline = points[0]["modeled_events_per_s"]
    for point in points:
        point["modeled_speedup_vs_1_shard"] = (
            point["modeled_events_per_s"] / baseline
        )
    flags_identical = all(
        flags_by_shards[num_shards] == flags_by_shards[SHARD_COUNTS[0]]
        for num_shards in SHARD_COUNTS
    )
    return {
        "benchmark": "fleet_scaling",
        "seed": seed,
        "metric": (
            "modeled aggregate events/s = total events / max-over-"
            "shards modeled makespan (virtual InferenceRecord clock)"
        ),
        "events_per_tenant": events_per_tenant,
        "points": points,
        "speedup_gate": SPEEDUP_GATE,
        "flags_identical_across_shard_counts": flags_identical,
    }


def bench_failures(result: dict) -> list:
    """Violated gates, as human-readable strings (empty == pass)."""
    failures = []
    by_shards = {p["shards"]: p for p in result["points"]}
    speedup = by_shards[4]["modeled_speedup_vs_1_shard"]
    if speedup < result["speedup_gate"]:
        failures.append(
            f"4-shard modeled speedup {speedup:.2f}x is below the "
            f"{result['speedup_gate']:g}x gate"
        )
    if not result["flags_identical_across_shard_counts"]:
        failures.append(
            "verdict flags diverged across shard counts (sharding "
            "must not change detection)"
        )
    for point in result["points"]:
        if not point["conservation_ok"]:
            failures.append(
                f"{point['shards']}-shard run violated counter "
                "conservation (admitted != fresh + replayed)"
            )
    return failures


def format_result(result: dict) -> str:
    lines = [
        "fleet scaling: modeled aggregate events/s "
        f"({TENANTS} tenants, {result['events_per_tenant']} "
        "events/tenant)",
        f"{'shards':>6} | {'modeled ev/s':>14} | {'speedup':>8} | "
        f"{'makespan us':>12} | {'wall ev/s':>10}",
    ]
    for point in result["points"]:
        lines.append(
            f"{point['shards']:>6} | "
            f"{point['modeled_events_per_s']:>14.0f} | "
            f"{point['modeled_speedup_vs_1_shard']:>7.2f}x | "
            f"{point['modeled_makespan_us']:>12.1f} | "
            f"{point['wall_events_per_s']:>10.0f}"
        )
    return "\n".join(lines)


def save_and_format(result: dict, smoke: bool = False) -> str:
    from bench_io import save_result

    save_result(RESULT_NAME, dict(result, smoke=smoke))
    return format_result(result)


def test_fleet_scaling():
    result = run_fleet_scaling()
    print()
    print(save_and_format(result))
    assert bench_failures(result) == []


def main(argv) -> int:
    smoke = "--smoke" in argv
    result = run_fleet_scaling(
        SMOKE_EVENTS_PER_TENANT if smoke else EVENTS_PER_TENANT
    )
    print(save_and_format(result, smoke=smoke))
    failures = bench_failures(result)
    for line in failures:
        print(f"FAIL: {line}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
