"""Fleet sharding scalability: modeled aggregate events/s vs shards.

The quantity this benchmark reports is **model-domain** aggregate
throughput, the same time basis as the paper-facing latency numbers
(``bench_ablation_cus.py`` reports modeled detection latency the same
way): every :class:`~repro.mcm.mcm.InferenceRecord` carries virtual
timestamps (``arrival_ns`` .. ``done_ns``) in the simulated SoC's
clock, where one shared ML-MIAOW engine serves every tenant's vectors.
With all tenants behind a single engine the simulated engine is the
bottleneck — the modeled round makespan far exceeds the trace's
arrival span.  Sharding tenants across N fleet workers gives each
shard its *own* modeled engine, so the aggregate makespan shrinks by
~N.  The metric:

    modeled aggregate events/s
        = total branch events / max-over-shards(modeled makespan)

where a shard's makespan is ``max(done_ns) - min(arrival_ns)`` over
its tenants' records for the round.

**Host wall-clock events/s is reported alongside and is NOT the
gate**: the simulation itself is CPU-bound Python and this container
is single-core, so wall-clock throughput stays roughly flat no matter
how many worker processes run (noted per point in the JSON).

Determinism ride-along: verdict flags per tenant must be identical
across every shard count, and counter conservation
(``fleet.rounds.admitted == fresh + replayed``) must hold per point.

**Transport comparison (pipe vs shm)**: a second sweep re-runs the
default 8-tenant load under both fleet transports and reports the
measured coordinator->worker transport time per dispatch — the
``fleet.transport.c2w_ns`` counter, a wall-clock-free sum of the four
thread-CPU shares of the byte path (coordinator staging + pipe send +
worker drain + worker payload fetch; see docs/FLEET.md §5).  Byte
counters (staged/consumed/discarded) and their conservation law ride
along per point, as does pipe-vs-shm verdict byte-identity.  Gate:
shared-memory reduces c2w time per dispatch by >= 2x at the 1-shard
point — the point where each dispatch carries the full 8-tenant round
payload, so the per-dispatch fixed cost (waking the blocked worker,
paid identically by both transports) does not dominate the bytes.
The smaller per-dispatch payloads at 2/4 shards report their ratios
un-gated for the same reason.  The transport gate only applies to
full (non-smoke) runs: smoke payloads are too small to clear the
fixed cost.

Results go to ``benchmarks/results/BENCH_fleet.json`` with a root
mirror via ``bench_io.save_result``.  Gate: modeled aggregate events/s
at 4 shards >= 3x the 1-shard baseline.

Runs three ways:

- ``pytest benchmarks/bench_fleet_scaling.py``
- ``python benchmarks/bench_fleet_scaling.py``
- ``python benchmarks/bench_fleet_scaling.py --smoke`` (CI: fewer
  events, same gates)
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_NAME = "BENCH_fleet.json"
SEED = 0
TENANTS = 8
SHARD_COUNTS = (1, 2, 4)
EVENTS_PER_TENANT = 1_500
SMOKE_EVENTS_PER_TENANT = 500
SPEEDUP_GATE = 3.0
#: c2w reduction the shm transport must show at the gate point.
TRANSPORT_GATE = 2.0
#: Shard count the transport gate applies to: one dispatch carrying
#: the whole 8-tenant round, where bytes dominate the fixed wake cost.
TRANSPORT_GATE_SHARDS = 1
TRANSPORT_WARMUP_ROUNDS = 2
TRANSPORT_MEASURED_ROUNDS = 6
SMOKE_TRANSPORT_MEASURED_ROUNDS = 2


def _flags(records):
    return [(bool(r.anomalous), float(r.score)) for r in records]


def _transport_fields(stats: dict) -> dict:
    """Per-point transport bytes + serialization time from a
    :meth:`FleetCoordinator.transport_stats` snapshot (or delta)."""
    staged = int(stats.get("fleet.transport.bytes.staged", 0))
    consumed = int(stats.get("fleet.transport.bytes.consumed", 0))
    discarded = int(stats.get("fleet.transport.bytes.discarded", 0))
    dispatches = max(1, int(stats.get("fleet.transport.rounds", 0)))
    return {
        "transport_bytes_staged": staged,
        "transport_bytes_consumed": consumed,
        "transport_bytes_discarded": discarded,
        "transport_conservation_ok": staged == consumed + discarded,
        "serialization_us_per_dispatch": (
            int(stats.get("fleet.transport.stage_ns", 0))
            / dispatches
            / 1e3
        ),
        "transport_c2w_us_per_dispatch": (
            int(stats.get("fleet.transport.c2w_ns", 0))
            / dispatches
            / 1e3
        ),
        "transport_wall_us_per_dispatch": (
            int(stats.get("fleet.transport.ns", 0)) / dispatches / 1e3
        ),
    }


def run_transport_comparison(
    events_per_tenant: int = EVENTS_PER_TENANT,
    seed: int = SEED,
    warmup_rounds: int = TRANSPORT_WARMUP_ROUNDS,
    measured_rounds: int = TRANSPORT_MEASURED_ROUNDS,
) -> dict:
    """Pipe vs shm: measured c2w transport time per dispatch.

    Runs the same multi-round 8-tenant load under both transports at
    each shard count.  Warm-up rounds are excluded (first-dispatch
    costs: ring creation, import paths, branch-predictor warmth);
    the per-dispatch figures are counter deltas over the measured
    rounds.  Conservation is asserted over the *whole* run including
    warm-up.
    """
    from repro.eval.metrics import demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = [f"tenant{index}" for index in range(TENANTS)]
    total_rounds = warmup_rounds + measured_rounds
    rounds = [
        {
            name: demo_events(
                "lstm",
                seed,
                events_per_tenant,
                run_label=f"fleet-transport-r{index}-{name}",
            )
            for name in names
        }
        for index in range(total_rounds)
    ]
    points = []
    for num_shards in SHARD_COUNTS:
        legs = {}
        flags = {}
        for transport in ("pipe", "shm"):
            journal_root = tempfile.mkdtemp(
                prefix="repro-bench-transport-"
            )
            with FleetCoordinator(
                demo_factory,
                names,
                journal_root,
                FleetConfig(
                    num_shards=num_shards, transport=transport
                ),
            ) as fleet:
                leg_flags = []
                for index in range(warmup_rounds):
                    fleet.run_events(rounds[index])
                base = dict(fleet.transport_stats())
                for index in range(warmup_rounds, total_rounds):
                    records = fleet.run_events(rounds[index])
                    leg_flags.append(
                        {
                            name: _flags(records.get(name, []))
                            for name in names
                        }
                    )
                stats = fleet.transport_stats()
            delta = {
                key: stats[key] - base.get(key, 0) for key in stats
            }
            fields = _transport_fields(delta)
            # Conservation over the whole run, warm-up included.
            fields["transport_conservation_ok"] = int(
                stats.get("fleet.transport.bytes.staged", 0)
            ) == int(
                stats.get("fleet.transport.bytes.consumed", 0)
            ) + int(stats.get("fleet.transport.bytes.discarded", 0))
            fields["inline_spills"] = int(
                delta.get("fleet.transport.payloads.inline", 0)
            )
            legs[transport] = fields
            flags[transport] = leg_flags
        points.append(
            {
                "shards": num_shards,
                "dispatches_measured": measured_rounds * num_shards,
                "pipe": legs["pipe"],
                "shm": legs["shm"],
                "c2w_reduction": (
                    legs["pipe"]["transport_c2w_us_per_dispatch"]
                    / legs["shm"]["transport_c2w_us_per_dispatch"]
                ),
                "conservation_ok": (
                    legs["pipe"]["transport_conservation_ok"]
                    and legs["shm"]["transport_conservation_ok"]
                ),
                "flags_identical_pipe_vs_shm": (
                    flags["pipe"] == flags["shm"]
                ),
            }
        )
    return {
        "metric": (
            "coordinator->worker transport time per dispatch: the "
            "fleet.transport.c2w_ns counter (sum of the four "
            "thread-CPU shares of the byte path) over measured "
            "rounds, warm-up excluded"
        ),
        "tenants": TENANTS,
        "events_per_tenant": events_per_tenant,
        "warmup_rounds": warmup_rounds,
        "measured_rounds": measured_rounds,
        "gate": TRANSPORT_GATE,
        "gate_shards": TRANSPORT_GATE_SHARDS,
        "gate_note": (
            "gated at the 1-shard point where each dispatch carries "
            "the full round payload; 2/4-shard dispatches are floored "
            "by the fixed worker-wake cost both transports pay"
        ),
        "points": points,
    }


def run_fleet_scaling(
    events_per_tenant: int = EVENTS_PER_TENANT,
    seed: int = SEED,
    smoke: bool = False,
) -> dict:
    """One scaling sweep over :data:`SHARD_COUNTS`."""
    from repro.eval.metrics import demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = [f"tenant{index}" for index in range(TENANTS)]
    # Homogeneous offered load: every tenant replays the same CFG walk
    # (its own mapper/encoder/lane, same event stream), the standard
    # scaling-benchmark setup — shard throughput then measures the
    # engine, not accidental per-walk load imbalance.
    stream = demo_events(
        "lstm", seed, events_per_tenant, run_label="fleet-scaling"
    )
    traces = {name: stream for name in names}
    total_events = sum(len(events) for events in traces.values())
    points = []
    flags_by_shards = {}
    for num_shards in SHARD_COUNTS:
        journal_root = tempfile.mkdtemp(prefix="repro-bench-fleet-")
        with FleetCoordinator(
            demo_factory,
            names,
            journal_root,
            FleetConfig(num_shards=num_shards),
        ) as fleet:
            start_s = time.perf_counter()
            records = fleet.run_events(traces)
            wall_s = time.perf_counter() - start_s
            counters = fleet.counters()
            transport_stats = fleet.transport_stats()
            placement = {
                shard.id: list(shard.tenants) for shard in fleet.shards
            }
        flags_by_shards[num_shards] = {
            name: _flags(records.get(name, [])) for name in names
        }
        # Modeled makespan per shard: its private engine's busy span
        # over this round, in the simulation's virtual clock.
        makespans_ns = []
        for shard_tenants in placement.values():
            shard_records = [
                record
                for name in shard_tenants
                for record in records.get(name, [])
            ]
            if not shard_records:
                continue
            makespans_ns.append(
                max(r.done_ns for r in shard_records)
                - min(r.arrival_ns for r in shard_records)
            )
        makespan_ns = max(makespans_ns)
        admitted = int(counters.get("fleet.rounds.admitted", 0))
        replayed = int(counters.get("fleet.rounds.replayed", 0))
        fresh = sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        )
        points.append(
            {
                "shards": num_shards,
                "tenants": TENANTS,
                "events": total_events,
                "verdicts": sum(len(r) for r in records.values()),
                "modeled_makespan_us": makespan_ns / 1e3,
                "modeled_events_per_s": total_events
                / (makespan_ns / 1e9),
                "wall_s": wall_s,
                "wall_events_per_s": total_events / wall_s,
                "wall_note": (
                    "host wall-clock; flat on a single-core container "
                    "regardless of worker count — not the gate"
                ),
                "conservation_ok": admitted == fresh + replayed,
                **_transport_fields(transport_stats),
            }
        )
    baseline = points[0]["modeled_events_per_s"]
    for point in points:
        point["modeled_speedup_vs_1_shard"] = (
            point["modeled_events_per_s"] / baseline
        )
    flags_identical = all(
        flags_by_shards[num_shards] == flags_by_shards[SHARD_COUNTS[0]]
        for num_shards in SHARD_COUNTS
    )
    transport = run_transport_comparison(
        events_per_tenant,
        seed,
        warmup_rounds=1 if smoke else TRANSPORT_WARMUP_ROUNDS,
        measured_rounds=(
            SMOKE_TRANSPORT_MEASURED_ROUNDS
            if smoke
            else TRANSPORT_MEASURED_ROUNDS
        ),
    )
    return {
        "benchmark": "fleet_scaling",
        "seed": seed,
        "smoke": smoke,
        "metric": (
            "modeled aggregate events/s = total events / max-over-"
            "shards modeled makespan (virtual InferenceRecord clock)"
        ),
        "events_per_tenant": events_per_tenant,
        "points": points,
        "speedup_gate": SPEEDUP_GATE,
        "flags_identical_across_shard_counts": flags_identical,
        "transport": transport,
    }


def bench_failures(result: dict) -> list:
    """Violated gates, as human-readable strings (empty == pass)."""
    failures = []
    by_shards = {p["shards"]: p for p in result["points"]}
    speedup = by_shards[4]["modeled_speedup_vs_1_shard"]
    if speedup < result["speedup_gate"]:
        failures.append(
            f"4-shard modeled speedup {speedup:.2f}x is below the "
            f"{result['speedup_gate']:g}x gate"
        )
    if not result["flags_identical_across_shard_counts"]:
        failures.append(
            "verdict flags diverged across shard counts (sharding "
            "must not change detection)"
        )
    for point in result["points"]:
        if not point["conservation_ok"]:
            failures.append(
                f"{point['shards']}-shard run violated counter "
                "conservation (admitted != fresh + replayed)"
            )
        if not point["transport_conservation_ok"]:
            failures.append(
                f"{point['shards']}-shard run violated transport byte "
                "conservation (staged != consumed + discarded)"
            )
    transport = result["transport"]
    for point in transport["points"]:
        if not point["conservation_ok"]:
            failures.append(
                f"transport comparison at {point['shards']} shards "
                "violated byte conservation"
            )
        if not point["flags_identical_pipe_vs_shm"]:
            failures.append(
                f"transport comparison at {point['shards']} shards: "
                "verdict flags diverged between pipe and shm (the "
                "transport must not change detection)"
            )
    if not result.get("smoke"):
        gated = next(
            p
            for p in transport["points"]
            if p["shards"] == transport["gate_shards"]
        )
        if gated["c2w_reduction"] < transport["gate"]:
            failures.append(
                f"shm c2w reduction {gated['c2w_reduction']:.2f}x at "
                f"{transport['gate_shards']} shard(s) is below the "
                f"{transport['gate']:g}x gate"
            )
    return failures


def format_result(result: dict) -> str:
    lines = [
        "fleet scaling: modeled aggregate events/s "
        f"({TENANTS} tenants, {result['events_per_tenant']} "
        "events/tenant)",
        f"{'shards':>6} | {'modeled ev/s':>14} | {'speedup':>8} | "
        f"{'makespan us':>12} | {'wall ev/s':>10}",
    ]
    for point in result["points"]:
        lines.append(
            f"{point['shards']:>6} | "
            f"{point['modeled_events_per_s']:>14.0f} | "
            f"{point['modeled_speedup_vs_1_shard']:>7.2f}x | "
            f"{point['modeled_makespan_us']:>12.1f} | "
            f"{point['wall_events_per_s']:>10.0f}"
        )
    transport = result["transport"]
    lines.append(
        "transport: coordinator->worker us/dispatch "
        f"(measured, {transport['measured_rounds']} rounds)"
    )
    lines.append(
        f"{'shards':>6} | {'pipe c2w us':>12} | {'shm c2w us':>11} | "
        f"{'reduction':>9} | {'conserved':>9} | {'flags==':>7}"
    )
    for point in transport["points"]:
        gate_mark = (
            " *" if point["shards"] == transport["gate_shards"] else ""
        )
        lines.append(
            f"{point['shards']:>6} | "
            f"{point['pipe']['transport_c2w_us_per_dispatch']:>12.0f} | "
            f"{point['shm']['transport_c2w_us_per_dispatch']:>11.0f} | "
            f"{point['c2w_reduction']:>8.2f}x | "
            f"{str(point['conservation_ok']):>9} | "
            f"{str(point['flags_identical_pipe_vs_shm']):>7}"
            f"{gate_mark}"
        )
    lines.append(
        f"  * gate point: shm must cut c2w >= {transport['gate']:g}x"
    )
    return "\n".join(lines)


def save_and_format(result: dict, smoke: bool = False) -> str:
    from bench_io import save_result

    save_result(RESULT_NAME, dict(result, smoke=smoke))
    return format_result(result)


def test_fleet_scaling():
    result = run_fleet_scaling()
    print()
    print(save_and_format(result))
    assert bench_failures(result) == []


def main(argv) -> int:
    smoke = "--smoke" in argv
    result = run_fleet_scaling(
        SMOKE_EVENTS_PER_TENANT if smoke else EVENTS_PER_TENANT,
        smoke=smoke,
    )
    print(save_and_format(result, smoke=smoke))
    failures = bench_failures(result)
    for line in failures:
        print(f"FAIL: {line}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
