"""Table II: the coverage-merge trimming flow vs MIAOW2.0."""

import pytest

from conftest import save_result
from repro.eval.table2 import (
    PAPER_REDUCTIONS,
    PAPER_TABLE2,
    format_table2,
    run_table2,
    table2_rows,
)


@pytest.fixture(scope="module")
def trim_result():
    return run_table2()


def test_table2_trimming_flow(benchmark, trim_result):
    """Benchmark the trim+account step (coverage already collected)."""
    flow_report = trim_result.report

    def trim_step():
        from repro.miaow.trimming import TrimmingFlow

        return TrimmingFlow().trim(flow_report)

    benchmark(trim_step)
    save_result("table2", format_table2(trim_result))

    # The four-step flow must end verified (trimmed == original).
    assert trim_result.verified

    # The live coverage of the deployed kernels matches the frozen
    # reference the area model is calibrated on — drift detector.
    from repro.synthesis.area_model import REFERENCE_COVERAGE

    assert trim_result.report.covered == set(REFERENCE_COVERAGE)

    rows = {row.variant: row for row in table2_rows(trim_result)}
    # Exact calibration against the published synthesis.
    for variant, (luts, ffs) in PAPER_TABLE2.items():
        assert rows[variant].luts == pytest.approx(luts, abs=2)
        assert rows[variant].ffs == pytest.approx(ffs, abs=2)

    # Shape criteria: ours trims far deeper than instruction analysis.
    assert trim_result.reduction_pct == pytest.approx(
        PAPER_REDUCTIONS["ML-MIAOW"], abs=1.0
    )
    assert trim_result.instruction_reduction_pct == pytest.approx(
        PAPER_REDUCTIONS["MIAOW2.0"], abs=1.0
    )
    assert trim_result.perf_per_area_vs_instruction == pytest.approx(
        3.2, abs=0.2
    )
    assert trim_result.perf_per_area_vs_full > 5.0


def test_trimmed_engine_supports_both_models(benchmark, trim_result):
    """ML-MIAOW keeps every opcode either deployed model needs."""
    from repro.miaow.trimming import TrimmingFlow

    benchmark(
        lambda: TrimmingFlow().build_trimmed_gpu(trim_result, num_cus=5)
    )
    assert {"v_mac_f32", "v_exp_f32", "ds_swizzle_b32"} <= (
        trim_result.allowed_ops
    )
    # and sheds what neither uses
    assert "v_sqrt_f32" not in trim_result.allowed_ops
    assert "v_log_f32" in trim_result.allowed_ops  # LSTM surprisal uses it
