"""MCM inference throughput: interpreter vs trace-compiled fast path.

Times exact-mode inference (every kernel really dispatched on the GPU
simulator, through the :class:`MlMiaowDriver` sequencing layer the MCM
uses) with the engine's compiled fast path on and off, for the ELM and
the LSTM at three model sizes each.  Both paths are bit-identical
(``tests/test_miaow_compiler.py``), so this is pure speed.

Results go to ``benchmarks/results/BENCH_mcm.json`` and are mirrored
to the repository root via ``bench_io.save_result``, where
the acceptance gate reads them.  The gate for the fast-path work is
>= 5x inferences/sec at the *default* model sizes (ELM hidden_dim=256,
LSTM hidden_size=32).

A second, cross-tenant mode times the batched dispatch path: 16 ELM
tenants served one ``run_inference`` at a time versus one fused
``run_inference_batch`` (bit-identical results, see
``tests/test_miaow_batch_equivalence.py``).  The batched entry gates
>= 1.5x aggregate inference throughput over the single-dispatch fast
path.

Runs three ways:

- ``pytest benchmarks/bench_mcm_throughput.py`` — all sizes plus the
  batched mode, asserts the 5x gate at the defaults and the 1.5x
  batched gate;
- ``python benchmarks/bench_mcm_throughput.py --smoke`` — smallest
  size per model, for the CI smoke step (fails if the compiled path is
  ever slower than the interpreter);
- ``python benchmarks/bench_mcm_throughput.py --smoke --batched`` —
  the batched mode only, written to ``BENCH_mcm_batched.json`` (the CI
  smoke step uploads both variants).
"""

from __future__ import annotations

import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.mcm.driver import MlMiaowDriver  # noqa: E402
from repro.miaow.gpu import Gpu  # noqa: E402
from repro.ml.elm import ExtremeLearningMachine  # noqa: E402
from repro.ml.features import PatternDictionary  # noqa: E402
from repro.ml.kernels import DeployedElm, DeployedLstm  # noqa: E402
from repro.ml.lstm import LstmModel  # noqa: E402

RESULT_NAME = "BENCH_mcm.json"

#: Default deployment sizes (the constructor defaults the SoC uses);
#: the 5x gate applies to these rows.
ELM_DEFAULT_HIDDEN = 256
LSTM_DEFAULT_HIDDEN = 32

ELM_SIZES = (64, 128, 256)
LSTM_SIZES = (8, 16, 32)
SMOKE_ELM_SIZES = (64,)
SMOKE_LSTM_SIZES = (8,)
SPEEDUP_GATE = 5.0

#: Cross-tenant batched dispatch: tenants sharing one fused launch,
#: and the aggregate-throughput multiplier the batched entry gates.
BATCH_TENANTS = 16
BATCH_SPEEDUP_GATE = 1.5
BATCHED_RESULT_NAME = "BENCH_mcm_batched.json"

WINDOW = 16
NUM_CUS = 5
SEED = 7


def _throughput(run_once, min_reps: int, min_wall_s: float = 0.25) -> dict:
    """Inferences/sec of ``run_once`` (warm-up excluded)."""
    run_once()
    reps = 0
    start = time.perf_counter()
    while True:
        run_once()
        reps += 1
        wall_s = time.perf_counter() - start
        if reps >= min_reps and wall_s >= min_wall_s:
            break
    return {
        "reps": reps,
        "wall_s": round(wall_s, 4),
        "inferences_per_s": round(reps / wall_s, 1),
    }


def _elm_driver(hidden: int, fast_path: bool, dictionary, windows):
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=hidden, seed=SEED
    ).fit(dictionary.features(windows))
    gpu = Gpu(num_cus=NUM_CUS, fast_path=fast_path)
    deployed = DeployedElm(model, dictionary, WINDOW)
    return MlMiaowDriver(deployed, gpu, execute_on_gpu=True)


def _lstm_driver(hidden: int, fast_path: bool):
    model = LstmModel(vocabulary_size=64, hidden_size=hidden, seed=SEED)
    gpu = Gpu(num_cus=NUM_CUS, fast_path=fast_path)
    return MlMiaowDriver(DeployedLstm(model), gpu, execute_on_gpu=True)


def run_batched_throughput(
    hidden: int,
    tenants: int = BATCH_TENANTS,
    min_reps: int = 10,
) -> dict:
    """Aggregate inf/s: K sequential dispatches vs one fused dispatch.

    K exact-mode ELM drivers share one engine (the arbitrated-SoC
    shape).  The single path serves them with K compiled dispatches,
    the batched path with one ``run_inference_batch`` — bit-identical
    results, so the multiplier is pure host-dispatch amortization.
    """
    rng = np.random.default_rng(SEED)
    windows = rng.integers(0, 12, size=(200, WINDOW))
    dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
    dictionary.fit(windows)
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=hidden, seed=SEED
    ).fit(dictionary.features(windows))
    gpu = Gpu(num_cus=NUM_CUS, fast_path=True)
    drivers = [
        MlMiaowDriver(
            DeployedElm(model, dictionary, WINDOW), gpu, execute_on_gpu=True
        )
        for _ in range(tenants)
    ]
    inputs = [dictionary.indices(windows[i]) for i in range(tenants)]

    def run_single():
        for driver, indices in zip(drivers, inputs):
            driver.run_inference(indices)

    def run_batched():
        MlMiaowDriver.run_inference_batch(drivers, inputs)

    measured = {
        "single": _throughput(run_single, min_reps),
        "batched": _throughput(run_batched, min_reps),
    }
    for stats in measured.values():
        # each rep serves every tenant once: report aggregate inf/s
        stats["inferences_per_s"] = round(
            stats["inferences_per_s"] * tenants, 1
        )
    return {
        "kind": "elm",
        "hidden": hidden,
        "tenants": tenants,
        "single": measured["single"],
        "batched": measured["batched"],
        "batch_speedup": round(
            measured["batched"]["inferences_per_s"]
            / measured["single"]["inferences_per_s"],
            2,
        ),
        "gate": BATCH_SPEEDUP_GATE,
    }


def run_throughput(
    elm_sizes=ELM_SIZES,
    lstm_sizes=LSTM_SIZES,
    min_reps: int = 20,
    include_batched: bool = True,
) -> dict:
    rng = np.random.default_rng(SEED)
    windows = rng.integers(0, 12, size=(200, WINDOW))
    dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
    dictionary.fit(windows)
    indices = dictionary.indices(windows[0])

    entries = []
    for hidden in elm_sizes:
        measured = {}
        for label, fast in (("interpreter", False), ("compiled", True)):
            driver = _elm_driver(hidden, fast, dictionary, windows)
            measured[label] = _throughput(
                lambda: driver.run_inference(indices), min_reps
            )
        entries.append(
            {
                "kind": "elm",
                "hidden": hidden,
                "default_size": hidden == ELM_DEFAULT_HIDDEN,
                "interpreter": measured["interpreter"],
                "compiled": measured["compiled"],
                "speedup": round(
                    measured["compiled"]["inferences_per_s"]
                    / measured["interpreter"]["inferences_per_s"],
                    2,
                ),
            }
        )
    for hidden in lstm_sizes:
        measured = {}
        for label, fast in (("interpreter", False), ("compiled", True)):
            driver = _lstm_driver(hidden, fast)
            measured[label] = _throughput(
                lambda: driver.run_inference(3), min_reps
            )
        entries.append(
            {
                "kind": "lstm",
                "hidden": hidden,
                "default_size": hidden == LSTM_DEFAULT_HIDDEN,
                "interpreter": measured["interpreter"],
                "compiled": measured["compiled"],
                "speedup": round(
                    measured["compiled"]["inferences_per_s"]
                    / measured["interpreter"]["inferences_per_s"],
                    2,
                ),
            }
        )
    result = {
        "benchmark": "mcm_throughput",
        "mode": "exact (execute_on_gpu=True)",
        "num_cus": NUM_CUS,
        "gate_speedup_at_default": SPEEDUP_GATE,
        "default_sizes": {
            "elm": ELM_DEFAULT_HIDDEN,
            "lstm": LSTM_DEFAULT_HIDDEN,
        },
        "models": entries,
    }
    if include_batched:
        result["batched"] = run_batched_throughput(
            hidden=max(elm_sizes), min_reps=max(3, min_reps // 4)
        )
    return result


def save_and_format(
    result: dict, smoke: bool = False, result_name: str = RESULT_NAME
) -> str:
    from bench_io import save_result

    result = dict(result, smoke=smoke)
    # One writer for both homes (results/ + repo root); the old
    # side-channel copy of the *pipeline* benchmark's file is gone —
    # every script mirrors its own result at write time.
    save_result(result_name, result)
    lines = []
    if result.get("models"):
        lines += [
            "mcm throughput: interpreter vs compiled fast path (exact mode)",
            f"{'model':>6}  {'hidden':>6}  {'interp inf/s':>13}  "
            f"{'compiled inf/s':>15}  {'speedup':>8}",
        ]
        for entry in result["models"]:
            marker = " *" if entry["default_size"] else ""
            lines.append(
                f"{entry['kind']:>6}  {entry['hidden']:>6}  "
                f"{entry['interpreter']['inferences_per_s']:>13,.0f}  "
                f"{entry['compiled']['inferences_per_s']:>15,.0f}  "
                f"{entry['speedup']:>7.2f}x{marker}"
            )
        lines.append("  (* = default deployment size, gated at "
                     f">= {SPEEDUP_GATE}x)")
    batched = result.get("batched")
    if batched:
        lines += [
            f"batched dispatch: {batched['tenants']} tenants, "
            f"elm h={batched['hidden']} (aggregate inf/s)",
            f"  single {batched['single']['inferences_per_s']:>12,.0f}  "
            f"batched {batched['batched']['inferences_per_s']:>12,.0f}  "
            f"{batched['batch_speedup']:.2f}x "
            f"(gated at >= {BATCH_SPEEDUP_GATE}x)",
        ]
    return "\n".join(lines)


def test_mcm_throughput():
    result = run_throughput()
    print()
    print(save_and_format(result))
    defaults = [e for e in result["models"] if e["default_size"]]
    assert {e["kind"] for e in defaults} == {"elm", "lstm"}
    for entry in defaults:
        assert entry["speedup"] >= SPEEDUP_GATE, (
            f"{entry['kind']} h={entry['hidden']} compiled path only "
            f"{entry['speedup']}x"
        )
    # the compiled path must never be slower, at any size
    for entry in result["models"]:
        assert entry["speedup"] >= 1.0, entry
    batched = result["batched"]
    assert batched["tenants"] >= BATCH_TENANTS
    assert batched["batch_speedup"] >= BATCH_SPEEDUP_GATE, (
        f"batched dispatch at {batched['tenants']} tenants only "
        f"{batched['batch_speedup']}x over single-dispatch"
    )


def main(argv) -> int:
    smoke = "--smoke" in argv
    batched_only = "--batched" in argv
    if batched_only:
        # CI runs this variant alongside the default smoke so both
        # BENCH_mcm.json flavours land in the artifact set.
        result = {
            "models": [],
            "batched": run_batched_throughput(
                hidden=min(SMOKE_ELM_SIZES) if smoke else max(ELM_SIZES),
                min_reps=3 if smoke else 10,
            ),
        }
        print(save_and_format(
            result, smoke=smoke, result_name=BATCHED_RESULT_NAME
        ))
        ok = result["batched"]["batch_speedup"] >= (
            1.0 if smoke else BATCH_SPEEDUP_GATE
        )
        return 0 if ok else 1
    if smoke:
        result = run_throughput(
            SMOKE_ELM_SIZES, SMOKE_LSTM_SIZES, min_reps=5
        )
    else:
        result = run_throughput()
    print(save_and_format(result, smoke=smoke))
    worst = min(entry["speedup"] for entry in result["models"])
    batch_ok = result["batched"]["batch_speedup"] >= (
        1.0 if smoke else BATCH_SPEEDUP_GATE
    )
    if smoke:
        return 0 if worst >= 1.0 and batch_ok else 1
    defaults_ok = all(
        entry["speedup"] >= SPEEDUP_GATE
        for entry in result["models"]
        if entry["default_size"]
    )
    return 0 if defaults_ok and worst >= 1.0 and batch_ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
