"""Model-quality comparison: the claims behind the model choices.

The paper picks ELM because it is "more lightweight than a traditional
MLP while providing similar accuracy", and the LSTM for its sequence
modeling.  This bench quantifies both claims on our substrate, with
the STIDE n-gram baseline for context.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.report import format_table
from repro.ml.detector import roc_auc
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.lstm import LstmModel
from repro.ml.mlp import MlpAutoencoder
from repro.ml.ngram import NgramModel
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram

BENCHMARK = "403.gcc"


@pytest.fixture(scope="module")
def quality_data():
    program = SyntheticProgram(get_profile(BENCHMARK), seed=21)
    syscall = build_dataset(
        program, feature="syscall", window=16,
        train_events=16_000, test_events=6_000, num_attacks=25, seed=2,
    )
    dictionary = PatternDictionary(n=3, capacity=1023, unseen_gain=3)
    dictionary.fit(syscall.train_windows)
    features = {
        "train": dictionary.features(syscall.train_windows),
        "normal": dictionary.features(syscall.test_normal),
        "anomalous": dictionary.features(syscall.test_anomalous),
    }
    call = build_dataset(
        program, feature="call", window=16,
        train_events=150_000, test_events=50_000, num_attacks=25,
        seed=2, mapper_size=48,
    )
    return program, syscall, dictionary, features, call


@pytest.fixture(scope="module")
def model_scores(quality_data):
    program, syscall, dictionary, features, call = quality_data

    scores = {}

    elm = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=1
    ).fit(features["train"])
    scores["ELM"] = (
        elm.score_mahalanobis(features["normal"]),
        elm.score_mahalanobis(features["anomalous"]),
        2 * elm.hidden_dim,  # only the hidden mean/variance are fitted
    )

    mlp = MlpAutoencoder(input_dim=dictionary.size, hidden_dim=64, seed=1)
    mlp.fit(features["train"], epochs=25)
    scores["MLP"] = (
        mlp.score(features["normal"]),
        mlp.score(features["anomalous"]),
        mlp.parameter_count,
    )

    ngram = NgramModel(3).fit(syscall.train_windows)
    scores["n-gram"] = (
        ngram.score(syscall.test_normal),
        ngram.score(syscall.test_anomalous),
        ngram.table_size,
    )

    lstm = LstmModel(call.vocabulary.size, hidden_size=32, seed=1)
    lstm.fit(call.train_windows[:6000], epochs=5, seed=1)
    scores["LSTM"] = (
        lstm.window_nll(call.test_normal[:1500]),
        lstm.window_nll(call.test_anomalous[:1500]),
        sum(p.size for p in lstm.params.values()),
    )
    return scores


def test_model_quality_comparison(benchmark, model_scores, quality_data):
    _, _, dictionary, features, _ = quality_data

    def elm_train():
        return ExtremeLearningMachine(
            input_dim=dictionary.size, hidden_dim=256, seed=1
        ).fit(features["train"])

    benchmark.pedantic(elm_train, rounds=3, iterations=1)

    rows = []
    aucs = {}
    for name, (normal, anomalous, size) in model_scores.items():
        auc = roc_auc(normal, anomalous)
        aucs[name] = auc
        rows.append((name, round(auc, 3), size))
    save_result(
        "models_quality",
        format_table(
            ["model", "AUC", "trained params / table size"],
            rows,
            title=f"Model quality on {BENCHMARK} (higher AUC better)",
        ),
    )

    # Every model separates attacks from normal behaviour.
    assert all(auc > 0.6 for auc in aucs.values()), aucs
    # ELM ~ MLP accuracy (the paper's lightweight claim) ...
    assert abs(aucs["ELM"] - aucs["MLP"]) < 0.2
    # ... while training far fewer parameters than the MLP autoencoder.
    assert model_scores["ELM"][2] * 10 < model_scores["MLP"][2]


def test_deployed_engine_scaling_per_model(benchmark, quality_data):
    """How each deployed model uses the 5-CU trimmed engine.

    The ELM's four independent workgroups scale; the LSTM's serial
    phase chain scales partially; the MLP autoencoder (two sequential
    single-workgroup phases) does not scale at all — completing the
    paper's case for the ELM/LSTM pairing.
    """
    import numpy as np

    from repro.miaow.gpu import Gpu
    from repro.ml.elm import ExtremeLearningMachine
    from repro.ml.kernels import DeployedElm, DeployedLstm, DeployedMlp
    from repro.ml.lstm import LstmModel
    from repro.ml.mlp import MlpAutoencoder
    from repro.ml.features import histogram_features, normalize_histogram

    program, syscall, dictionary, features, call = quality_data

    elm = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=1
    ).fit(features["train"])
    hist_train = normalize_histogram(
        histogram_features(syscall.train_windows, 33)
    )
    mlp = MlpAutoencoder(input_dim=33, hidden_dim=48, seed=1)
    mlp.fit(hist_train[:600], epochs=10)
    lstm = LstmModel(call.vocabulary.size, hidden_size=32, seed=1)
    lstm.fit(call.train_windows[:800], epochs=1, seed=1)

    def cycles_for(deployment_factory, run):
        out = {}
        for cus in (1, 5):
            deployment = deployment_factory()
            deployment.load(Gpu(num_cus=cus))
            out[cus] = run(deployment)
        return out

    window = syscall.test_normal[0]
    elm_cycles = cycles_for(
        lambda: DeployedElm(elm, dictionary, window=16),
        lambda d: d.infer(window).dispatch.cycles,
    )
    mlp_cycles = cycles_for(
        lambda: DeployedMlp(mlp),
        lambda d: d.infer(hist_train[0]).total_cycles,
    )
    lstm_cycles = cycles_for(
        lambda: DeployedLstm(lstm),
        lambda d: d.infer(1).total_cycles,
    )
    benchmark.pedantic(
        lambda: DeployedMlp(mlp).load(Gpu(num_cus=5)),
        rounds=3, iterations=1,
    )

    rows = []
    for name, cycles in (
        ("ELM", elm_cycles), ("LSTM", lstm_cycles), ("MLP", mlp_cycles)
    ):
        rows.append(
            (name, cycles[1], cycles[5],
             f"{cycles[1] / cycles[5]:.2f}x")
        )
    save_result(
        "models_engine_scaling",
        format_table(
            ["model", "1-CU cycles", "5-CU cycles", "scaling"],
            rows,
            title="Deployed models on MIAOW vs ML-MIAOW (engine scaling)",
        ),
    )

    assert elm_cycles[1] / elm_cycles[5] > 3.0   # 4 parallel WGs
    assert 1.5 < lstm_cycles[1] / lstm_cycles[5] < 3.0
    assert mlp_cycles[1] == mlp_cycles[5]        # fully serial


def test_elm_trains_orders_faster_than_mlp(benchmark, quality_data):
    """The lightweight-training half of the paper's ELM argument."""
    import time

    _, _, dictionary, features, _ = quality_data

    def mlp_fit():
        MlpAutoencoder(
            input_dim=dictionary.size, hidden_dim=64, seed=1
        ).fit(features["train"], epochs=25)

    mlp_stats = benchmark.pedantic(mlp_fit, rounds=2, iterations=1)

    start = time.perf_counter()
    ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=256, seed=1
    ).fit(features["train"])
    elm_time = time.perf_counter() - start
    assert elm_time < benchmark.stats.stats.mean
