"""Table I: synthesized resources of every RTAD module."""

import pytest

from conftest import save_result
from repro.eval.table1 import ML_MIAOW_CUS, format_table1, run_table1
from repro.synthesis.area_model import rtad_module_areas


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


def test_table1_synthesis(benchmark, table1_rows):
    """Benchmark the structural-accounting step itself."""
    benchmark(rtad_module_areas)
    save_result("table1", format_table1(table1_rows))

    by_name = {row.submodule: row for row in table1_rows}
    total = next(r for r in table1_rows if r.module == "Total")

    # Shape criteria (DESIGN.md): the engine dominates, the TA is the
    # LUT-heavy IGM block, the FIFO holds the BRAMs.
    engine = by_name[f"ML-MIAOW ({ML_MIAOW_CUS} CUs)"]
    assert engine.area.luts > 0.8 * total.area.luts
    assert by_name["Trace Analyzer"].area.luts > by_name["P2S"].area.luts
    assert by_name["Trace Analyzer"].area.luts > (
        by_name["Input Vector Generator"].area.luts
    )
    assert by_name["Internal FIFO"].area.brams == 10

    # Paper match: FPGA columns are exact by calibration.
    for row in table1_rows:
        assert row.area.luts == row.paper[0]
        assert row.area.ffs == row.paper[1]
        assert row.area.brams == row.paper[2]


def test_table1_gate_counts_close(benchmark, table1_rows):
    """ASIC gate estimates land near the Design Compiler numbers."""
    from repro.synthesis.library import DEFAULT_LIBRARY

    benchmark(lambda: DEFAULT_LIBRARY.gates_for(183_715, 76_375, 140))
    for row in table1_rows:
        if row.module == "Total":
            assert row.area.gates == pytest.approx(row.paper[3], rel=0.07)
