"""Benchmark-harness helpers.

Each benchmark regenerates one table/figure of the paper, prints the
measured-vs-paper comparison, and persists it under
``benchmarks/results/`` so the artifact survives pytest's output
capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
