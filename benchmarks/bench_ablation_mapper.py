"""Ablation: address-mapper selectivity vs engine load.

"Users can configure the table to select branches related to their ML
models" — this sweep shows why the configuration matters: widening the
monitored set raises the filtered event rate toward the engine's
service rate until the MCM saturates, queues, and finally loses branch
information.  The LSTM hidden-size half of the sweep shows the other
side of the same trade: a bigger model is slower to serve.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.prep import get_bundle, make_ml_miaow
from repro.eval.report import format_table
from repro.miaow.gpu import Gpu
from repro.ml.kernels import DeployedLstm
from repro.ml.lstm import LstmModel

BENCHMARK = "403.gcc"
#: Multipliers on the profile's monitored event rate (1.0 = paper's
#: sparse configuration; bigger = a denser mapper table).
RATE_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


@pytest.fixture(scope="module")
def selectivity_sweep():
    bundle = get_bundle(BENCHMARK, "lstm")
    out = {}
    for factor in RATE_FACTORS:
        soc = bundle.make_soc(make_ml_miaow(), execute_on_gpu=False)
        result = soc.run_attack_trial(
            normal_ids=bundle.normal_ids[:400],
            mean_interval_us=bundle.mean_interval_us / factor,
            gadget_ids=[int(g) for g in bundle.gadget_pool[:8]],
            onset_index=200,
            seed=0,
        )
        out[factor] = result
    return out


def test_mapper_selectivity_ablation(benchmark, selectivity_sweep):
    bundle = get_bundle(BENCHMARK, "lstm")
    benchmark.pedantic(
        lambda: bundle.make_soc(make_ml_miaow(), execute_on_gpu=False),
        rounds=3, iterations=1,
    )

    rows = []
    for factor in RATE_FACTORS:
        result = selectivity_sweep[factor]
        rows.append(
            (
                f"x{factor}",
                round(bundle.mean_interval_us / factor, 1),
                "-" if result.detection_latency_us is None
                else round(result.detection_latency_us, 1),
                result.dropped_vectors,
                "yes" if result.overflowed else "no",
            )
        )
    save_result(
        "ablation_mapper",
        format_table(
            ["monitored rate", "interval us", "judgment us",
             "dropped", "overflow"],
            rows,
            title=f"Ablation — mapper selectivity ({BENCHMARK}, LSTM, "
                  "ML-MIAOW)",
        ),
    )

    # Sparse configurations are loss-free; dense ones overflow.
    assert not selectivity_sweep[0.5].overflowed
    assert not selectivity_sweep[1.0].overflowed
    assert selectivity_sweep[8.0].overflowed
    # Latency grows monotonically-ish with load.
    lat = [
        selectivity_sweep[f].detection_latency_us for f in (0.5, 1.0, 4.0)
    ]
    assert lat[0] <= lat[1] * 1.05 <= lat[2] * 1.1


@pytest.fixture(scope="module")
def hidden_size_sweep():
    """LSTM hidden size vs per-inference service cycles.

    H stops at 32: with the vocabulary padded to one wavefront (64),
    a 48-wide LSTM's weights (~99 KB) no longer fit the 64 KB LDS —
    the same capacity wall that bounds the real ML-MIAOW's models.
    """
    out = {}
    for hidden in (8, 16, 24, 32):
        model = LstmModel(vocabulary_size=48, hidden_size=hidden, seed=0)
        deployment = DeployedLstm(model)
        deployment.load(Gpu(num_cus=5))
        result = deployment.infer(1)
        out[hidden] = result.total_cycles
    return out


def test_lstm_hidden_size_ablation(benchmark, hidden_size_sweep):
    benchmark.pedantic(
        lambda: DeployedLstm(
            LstmModel(vocabulary_size=48, hidden_size=32, seed=0)
        ),
        rounds=3, iterations=1,
    )
    rows = [
        (hidden, cycles, round(cycles / 50, 1))
        for hidden, cycles in sorted(hidden_size_sweep.items())
    ]
    save_result(
        "ablation_lstm_hidden",
        format_table(
            ["hidden size", "cycles/inference", "us @50MHz"],
            rows,
            title="Ablation — LSTM hidden size vs service time (5 CUs; "
                  "H=48 exceeds the 64 KB LDS)",
        ),
    )
    cycles = [hidden_size_sweep[h] for h in (8, 16, 32)]
    assert cycles == sorted(cycles)
    # Service grows linearly in H on top of a fixed softmax/activation
    # tail (~500 cycles): doubling H costs ~1.5x.
    assert hidden_size_sweep[32] > 1.4 * hidden_size_sweep[16]
    per_h = (hidden_size_sweep[32] - hidden_size_sweep[8]) / 24
    assert 20 < per_h < 60  # ~32 cycles per hidden unit per inference


def test_lstm_hidden_capped_by_lds(benchmark):
    """The LDS capacity wall: H=48 weights cannot be loaded."""
    from repro.errors import GpuMemoryError

    model = LstmModel(vocabulary_size=48, hidden_size=48, seed=0)
    deployment = DeployedLstm(model)

    def try_load():
        try:
            deployment.load(Gpu(num_cus=1))
        except GpuMemoryError:
            return True
        return False

    overflowed = benchmark.pedantic(try_load, rounds=1, iterations=1)
    assert overflowed
