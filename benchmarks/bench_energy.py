"""Energy per inference: the power-efficiency half of the trimming trade.

The paper claims area saving "can bring power efficiency" without
numbers; this bench produces them.  Same model, same inference, both
engines: ML-MIAOW retires the same instructions (equal dynamic energy)
but holds 5x the CUs in 1/5.5 the silicon of one full MIAOW — and
finishes sooner, so it leaks for less time.
"""

import numpy as np
import pytest

from conftest import save_result
from repro.eval.prep import get_bundle
from repro.eval.report import format_table
from repro.eval.table2 import run_table2
from repro.miaow.coverage import CoverageCollector
from repro.miaow.gpu import Gpu
from repro.synthesis.power import PowerModel


@pytest.fixture(scope="module")
def energy_reports():
    trim = run_table2()
    bundle = get_bundle("403.gcc", "elm")
    window = bundle.normal_ids[: bundle.window]
    reports = {}
    for name, cus, area in (
        ("MIAOW", 1, trim.full_area),
        ("ML-MIAOW", 5, trim.trimmed_area.times(5)),
    ):
        collector = CoverageCollector(name)
        gpu = Gpu(num_cus=cus, coverage=collector, name=name)
        deployment = bundle.make_deployment()
        deployment.load(gpu)
        result = deployment.infer(window)
        model = PowerModel(engine_area=area)
        reports[name] = model.energy_of_run(gpu, result.dispatch.cycles)
    return reports


def test_energy_per_inference(benchmark, energy_reports):
    bundle = get_bundle("403.gcc", "elm")

    def one():
        deployment = bundle.make_deployment()
        deployment.load(Gpu(num_cus=5))
        deployment.infer(bundle.normal_ids[: bundle.window])

    benchmark.pedantic(one, rounds=3, iterations=1)

    rows = []
    for name, report in energy_reports.items():
        rows.append(
            (
                name,
                round(report.elapsed_s * 1e6, 1),
                round(report.dynamic_pj / 1e6, 3),
                round(report.static_pj / 1e6, 3),
                round(report.total_uj, 3),
            )
        )
    miaow = energy_reports["MIAOW"]
    ml = energy_reports["ML-MIAOW"]
    rows.append(
        ("ratio", round(miaow.elapsed_s / ml.elapsed_s, 2),
         round(miaow.dynamic_pj / ml.dynamic_pj, 2),
         round(miaow.static_pj / ml.static_pj, 2),
         round(miaow.total_uj / ml.total_uj, 2))
    )
    save_result(
        "energy",
        format_table(
            ["engine", "latency us", "dynamic uJ", "static uJ",
             "total uJ"],
            rows,
            title="Energy per ELM inference (403.gcc)",
        ),
    )

    # Identical math => identical dynamic energy (same retired ops).
    assert miaow.dynamic_pj == pytest.approx(ml.dynamic_pj, rel=1e-6)
    # The trimmed engine leaks less: slightly less powered area, and
    # it finishes ~4x sooner.
    assert ml.static_pj < miaow.static_pj
    assert ml.total_uj < miaow.total_uj
    # Static advantage ≈ (area ratio) x (latency ratio).
    expected = (
        (ml.static_area_lutff / miaow.static_area_lutff)
        * (ml.elapsed_s / miaow.elapsed_s)
    )
    assert ml.static_pj / miaow.static_pj == pytest.approx(
        expected, rel=1e-6
    )
