"""Ingestion front-door soak: 1000+ concurrent clients, p50/p99.

Drives ``repro.serve.IngestServer`` through the four scenarios of
:func:`repro.eval.soak.run_soak` — a steady-state fleet streaming raw
frontend bytes (both grammars) and pre-decoded event batches over the
in-memory transport, an overload fleet with deadline-aware shedding
armed vs disarmed, and a rate-limited fleet — and records
ingest-to-verdict latency percentiles plus the full ``serve.*``
shed/admission accounting.

Results go to ``benchmarks/results/BENCH_serve.json`` and are
mirrored to the repository root via ``bench_io.save_result``, where
the acceptance gate reads them.  The gates are the soak invariants
themselves (:func:`repro.eval.soak.soak_failures`): zero dataplane
crashes, every frame answered, admitted == drained + stale, and the
armed overload scenario's admitted p99 bounded by the ingest deadline.

Runs three ways:

- ``pytest benchmarks/bench_serve_soak.py`` — the full 1000-client
  soak, asserts every invariant;
- ``python benchmarks/bench_serve_soak.py`` — same, as a script;
- ``python benchmarks/bench_serve_soak.py --smoke`` — a reduced fleet
  for the CI smoke step (same invariants, fewer clients).
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode imports
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.soak import (  # noqa: E402
    DEFAULT_CLIENTS,
    format_soak,
    run_soak,
    soak_failures,
    soak_to_json,
)

RESULT_NAME = "BENCH_serve.json"
SMOKE_CLIENTS = 120
SEED = 0


def save_and_format(soak, smoke: bool = False) -> str:
    from bench_io import save_result

    save_result(RESULT_NAME, dict(soak_to_json(soak), smoke=smoke))
    return format_soak(soak)


def test_serve_soak():
    soak = run_soak(clients=DEFAULT_CLIENTS, seed=SEED)
    print()
    print(save_and_format(soak))
    assert soak_failures(soak) == []


def main(argv) -> int:
    smoke = "--smoke" in argv
    clients = SMOKE_CLIENTS if smoke else DEFAULT_CLIENTS
    soak = run_soak(clients=clients, seed=SEED)
    print(save_and_format(soak, smoke=smoke))
    failures = soak_failures(soak)
    for line in failures:
        print(f"FAIL: {line}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
