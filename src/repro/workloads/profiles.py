"""SPEC CINT2006-like benchmark profiles.

Each profile captures the dynamic characteristics of one SPEC CINT2006
benchmark that matter to RTAD: how often branches / calls / syscalls
retire, how memory-bound the benchmark is (CPI), and how large its code
working set is.  The rates are drawn from published characterization
studies of the suite; they do not need to be exact — the evaluation
only relies on the *relative ordering* (e.g. 471.omnetpp being the most
call-intensive workload, which is what makes it overflow the MCM FIFO
under the untrimmed MIAOW engine in Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError

#: Host CPU clock in Hz (paper: Cortex-A9 down-clocked to 250 MHz).
CPU_CLOCK_HZ = 250_000_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """Dynamic characteristics of one synthetic benchmark.

    Rates are per 1000 retired instructions (``*_per_kinst``) except
    syscalls, which are rare enough to be expressed per million
    (``syscalls_per_minst``).
    """

    name: str
    description: str
    branches_per_kinst: float
    calls_per_kinst: float
    indirect_per_kinst: float
    syscalls_per_minst: float
    cpi: float
    num_functions: int
    blocks_per_function: int
    #: Fraction of dynamic call events whose target is in the IGM
    #: address-mapper table when monitoring "general branches" (LSTM
    #: configuration).  Chosen so filtered event intervals land in the
    #: tens-of-microseconds regime the paper's Fig. 8 discussion implies.
    monitored_call_fraction: float

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    @property
    def instructions_per_second(self) -> float:
        return CPU_CLOCK_HZ / self.cpi

    @property
    def branch_rate_hz(self) -> float:
        """Retired branches per second (all kinds)."""
        return self.instructions_per_second * self.branches_per_kinst / 1e3

    @property
    def call_rate_hz(self) -> float:
        return self.instructions_per_second * self.calls_per_kinst / 1e3

    @property
    def syscall_rate_hz(self) -> float:
        return self.instructions_per_second * self.syscalls_per_minst / 1e6

    @property
    def monitored_call_rate_hz(self) -> float:
        """Rate of call events that survive the address mapper (LSTM)."""
        return self.call_rate_hz * self.monitored_call_fraction

    @property
    def monitored_call_interval_us(self) -> float:
        rate = self.monitored_call_rate_hz
        if rate <= 0:
            raise WorkloadError(f"{self.name}: no monitored calls")
        return 1e6 / rate

    @property
    def syscall_interval_us(self) -> float:
        rate = self.syscall_rate_hz
        if rate <= 0:
            raise WorkloadError(f"{self.name}: no syscalls")
        return 1e6 / rate

    @property
    def mean_block_size(self) -> float:
        """Instructions per basic block implied by the branch rate."""
        return 1e3 / self.branches_per_kinst

    # Fractions of blocks ending in each terminator kind, for CFG
    # generation (remainder are conditional branches).
    @property
    def call_block_fraction(self) -> float:
        return self.calls_per_kinst / self.branches_per_kinst

    @property
    def indirect_block_fraction(self) -> float:
        return self.indirect_per_kinst / self.branches_per_kinst

    @property
    def syscall_block_fraction(self) -> float:
        return (self.syscalls_per_minst / 1e3) / self.branches_per_kinst


def _p(name, desc, br, call, ind, sysc, cpi, funcs, blocks, monitored):
    return BenchmarkProfile(
        name=name,
        description=desc,
        branches_per_kinst=br,
        calls_per_kinst=call,
        indirect_per_kinst=ind,
        syscalls_per_minst=sysc,
        cpi=cpi,
        num_functions=funcs,
        blocks_per_function=blocks,
        monitored_call_fraction=monitored,
    )


#: The twelve SPEC CINT2006 benchmarks, in suite order.  The monitored
#: fractions put the filtered LSTM event interval at ~100-160 us for
#: ordinary benchmarks and well below the untrimmed engine's service
#: time only for the call-heaviest workloads (471.omnetpp first among
#: them, 483.xalancbmk marginal) — the regime Fig. 8 describes.
SPEC_CINT2006: List[BenchmarkProfile] = [
    _p("400.perlbench", "Perl interpreter; branchy, call-heavy, syscall-busy",
       210.0, 15.0, 6.0, 8.0, 1.1, 320, 10, 0.00226),
    _p("401.bzip2", "Compression; tight loops, few calls",
       150.0, 2.5, 0.3, 1.0, 1.0, 60, 12, 0.00941),
    _p("403.gcc", "C compiler; large code footprint, branchy",
       220.0, 10.0, 3.5, 6.0, 1.3, 480, 9, 0.00386),
    _p("429.mcf", "Network simplex; memory-bound (high CPI)",
       190.0, 5.0, 0.5, 0.5, 2.5, 40, 10, 0.01111),
    _p("445.gobmk", "Go AI; deep recursion, branchy",
       200.0, 12.0, 2.0, 2.0, 1.2, 280, 10, 0.00320),
    _p("456.hmmer", "HMM search; straight-line numeric loops",
       80.0, 1.2, 0.2, 0.3, 0.9, 50, 14, 0.01500),
    _p("458.sjeng", "Chess AI; branchy search",
       210.0, 8.0, 1.5, 0.5, 1.1, 140, 10, 0.00379),
    _p("462.libquantum", "Quantum simulation; loop-dominated",
       270.0, 4.0, 0.3, 0.2, 1.4, 30, 12, 0.00875),
    _p("464.h264ref", "Video encoder; numeric kernels",
       80.0, 6.0, 1.0, 1.0, 0.9, 160, 12, 0.00343),
    _p("471.omnetpp", "Discrete-event simulator; heaviest call pressure",
       210.0, 30.0, 9.0, 2.0, 1.4, 420, 8, 0.00233),
    _p("473.astar", "Path-finding; pointer-chasing",
       170.0, 12.0, 2.5, 0.5, 1.6, 90, 10, 0.00356),
    _p("483.xalancbmk", "XSLT processor; C++ virtual-call heavy",
       260.0, 28.0, 10.0, 3.0, 1.3, 520, 8, 0.00196),
]

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in SPEC_CINT2006}
# Accept short names ("omnetpp") as well as full ("471.omnetpp").
_BY_NAME.update({p.name.split(".", 1)[1]: p for p in SPEC_CINT2006})


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by full or short name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(p.name for p in SPEC_CINT2006)
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None


def profile_names() -> List[str]:
    return [p.name for p in SPEC_CINT2006]
