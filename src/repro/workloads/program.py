"""Executable synthetic program: CFG + profile -> branch event stream."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.cfg import (
    BasicBlock,
    BranchEvent,
    BranchKind,
    ControlFlowGraph,
    generate_cfg,
)
from repro.workloads.profiles import BenchmarkProfile

#: Cycles spent inside a syscall stub before the kernel returns.
SYSCALL_KERNEL_CYCLES = 900

#: Recursion guard — beyond this the walker forces returns.
MAX_CALL_DEPTH = 64


@dataclass
class TraceRecorder:
    """Collects a branch event stream plus useful summary columns."""

    events: List[BranchEvent] = field(default_factory=list)

    def record(self, event: BranchEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def targets(self) -> np.ndarray:
        return np.array([e.target for e in self.events], dtype=np.uint64)

    def cycles(self) -> np.ndarray:
        return np.array([e.cycle for e in self.events], dtype=np.int64)

    def of_kind(self, kind: BranchKind) -> List[BranchEvent]:
        return [e for e in self.events if e.kind is kind]


class SyntheticProgram:
    """A runnable synthetic benchmark.

    The program owns a randomly generated CFG shaped by its profile and
    can be *run* for a bounded number of branch events.  Runs are
    deterministic given (profile, seed, run label).
    """

    #: Pilot-walk length and rounds used to calibrate the generated CFG
    #: so the *dynamic* branch-kind mix matches the profile's rates
    #: (loops make conditional blocks execute far more often than their
    #: static share, so static fractions must be compensated).
    CALIBRATION_EVENTS = 4000
    CALIBRATION_ROUNDS = 3

    def __init__(
        self, profile: BenchmarkProfile, seed: int = 0, calibrate: bool = True
    ) -> None:
        self.profile = profile
        self.seed = seed

        target_call = profile.call_block_fraction
        target_indirect = profile.indirect_block_fraction
        target_syscall = profile.syscall_block_fraction
        call_f, indirect_f, syscall_f = target_call, target_indirect, target_syscall
        block_size = profile.mean_block_size

        rounds = self.CALIBRATION_ROUNDS if calibrate else 1
        for round_index in range(rounds):
            structure_rng = make_rng(
                derive_seed(seed, profile.name, "structure", round_index)
            )
            self.cfg = generate_cfg(
                num_functions=profile.num_functions,
                blocks_per_function=profile.blocks_per_function,
                mean_block_size=block_size,
                syscall_block_fraction=min(0.5, syscall_f),
                call_block_fraction=min(0.6, call_f),
                indirect_block_fraction=min(0.3, indirect_f),
                num_syscalls=32,
                seed_rng=structure_rng,
            )
            if round_index == rounds - 1:
                break
            call_f, indirect_f, syscall_f, block_size = self._recalibrate(
                call_f, indirect_f, syscall_f, block_size,
                target_call, target_indirect, target_syscall,
                round_index,
            )

    def _recalibrate(
        self,
        call_f: float,
        indirect_f: float,
        syscall_f: float,
        block_size: float,
        target_call: float,
        target_indirect: float,
        target_syscall: float,
        round_index: int,
    ) -> tuple:
        """One calibration step: pilot-walk, compare dynamic fractions
        against the profile targets, adjust multiplicatively."""
        pilot = TraceRecorder()
        for event in self.iter_events(
            self.CALIBRATION_EVENTS, run_label=f"calibration/{round_index}"
        ):
            pilot.record(event)
        total = max(1, len(pilot))
        counts = {kind: 0 for kind in BranchKind}
        instructions = 0.0
        for event in pilot.events:
            counts[event.kind] += 1
        if pilot.events:
            instructions = pilot.events[-1].cycle / self.profile.cpi

        def adjust(current: float, target: float, observed_count: int) -> float:
            observed = observed_count / total
            if observed <= 0:
                return min(0.6, current * 3.0)
            factor = target / observed
            factor = max(0.25, min(4.0, factor))
            return min(0.6, current * factor)

        call_f = adjust(call_f, target_call, counts[BranchKind.CALL])
        indirect_f = adjust(
            indirect_f, target_indirect, counts[BranchKind.INDIRECT]
        )
        syscall_f = adjust(
            syscall_f, target_syscall, counts[BranchKind.SYSCALL]
        )
        # Match instructions-per-branch: the dynamic block size drifts
        # from the static mean because loops revisit small hot blocks.
        if instructions > 0:
            observed_ipb = instructions / total
            factor = self.profile.mean_block_size / observed_ipb
            block_size = max(2.0, block_size * max(0.5, min(2.0, factor)))
        return call_f, indirect_f, syscall_f, block_size

    def run(
        self,
        max_branches: int,
        run_label: str = "run",
        recorder: Optional[TraceRecorder] = None,
    ) -> TraceRecorder:
        """Walk the CFG and record up to ``max_branches`` events."""
        if recorder is None:
            recorder = TraceRecorder()
        for event in self.iter_events(max_branches, run_label):
            recorder.record(event)
        return recorder

    def iter_events(
        self, max_branches: int, run_label: str = "run"
    ) -> Iterator[BranchEvent]:
        """Generator form of :meth:`run` for streaming consumers."""
        if max_branches < 0:
            raise WorkloadError("max_branches must be non-negative")
        rng = make_rng(derive_seed(self.seed, self.profile.name, run_label))
        cfg = self.cfg
        cpi = self.profile.cpi
        cycle = 0.0
        call_stack: List[int] = []
        current = cfg.blocks[cfg.entry]
        emitted = 0

        while emitted < max_branches:
            cycle += current.size * cpi
            branch_addr = current.branch_address
            kind = current.terminator

            if kind is BranchKind.CONDITIONAL:
                taken = bool(rng.random() < current.taken_probability)
                target = current.taken_target if taken else current.fallthrough
                yield BranchEvent(int(cycle), branch_addr, target, kind, taken)
                emitted += 1
                current = cfg.blocks[target]

            elif kind is BranchKind.UNCONDITIONAL:
                yield BranchEvent(
                    int(cycle), branch_addr, current.taken_target, kind
                )
                emitted += 1
                current = cfg.blocks[current.taken_target]

            elif kind is BranchKind.CALL:
                if len(call_stack) >= MAX_CALL_DEPTH:
                    # recursion guard: skip the call, fall through
                    yield BranchEvent(
                        int(cycle),
                        branch_addr,
                        current.fallthrough,
                        BranchKind.UNCONDITIONAL,
                    )
                    emitted += 1
                    current = cfg.blocks[current.fallthrough]
                else:
                    call_stack.append(current.fallthrough)
                    yield BranchEvent(
                        int(cycle), branch_addr, current.callee, kind
                    )
                    emitted += 1
                    current = cfg.blocks[current.callee]

            elif kind is BranchKind.INDIRECT:
                target = int(
                    rng.choice(
                        current.indirect_targets, p=current.indirect_weights
                    )
                )
                # Indirect jumps to a function entry behave like calls.
                if len(call_stack) < MAX_CALL_DEPTH:
                    call_stack.append(current.fallthrough)
                yield BranchEvent(int(cycle), branch_addr, target, kind)
                emitted += 1
                current = cfg.blocks[target]

            elif kind is BranchKind.SYSCALL:
                stub = cfg.syscall_stubs[current.syscall_number]
                yield BranchEvent(int(cycle), branch_addr, stub, kind)
                emitted += 1
                cycle += SYSCALL_KERNEL_CYCLES
                if emitted < max_branches:
                    yield BranchEvent(
                        int(cycle),
                        stub + 4,
                        current.fallthrough,
                        BranchKind.RETURN,
                    )
                    emitted += 1
                current = cfg.blocks[current.fallthrough]

            elif kind is BranchKind.RETURN:
                if call_stack:
                    target = call_stack.pop()
                else:
                    target = cfg.entry  # main loop wraps around
                yield BranchEvent(int(cycle), branch_addr, target, kind)
                emitted += 1
                current = cfg.blocks[target]

            else:  # pragma: no cover - exhaustive enum
                raise WorkloadError(f"unhandled terminator {kind}")

    # ------------------------------------------------------------------
    # Introspection used by IGM configuration and the ML feature layer
    # ------------------------------------------------------------------

    def monitored_call_targets(
        self, count: Optional[int] = None, run_label: str = "mapper"
    ) -> List[int]:
        """Function entries placed in the IGM address-mapper table.

        A deterministic sample of function entry points — the "critical
        API functions" a user would configure the mapper with.  By
        default the sample is sized by the profile's
        ``monitored_call_fraction`` (the sparse configuration used for
        the timing experiments); pass ``count`` for a denser table, as
        used when collecting training data.
        """
        entries = self.cfg.call_targets
        if count is None:
            fraction = self.profile.monitored_call_fraction
            count = max(1, int(round(len(entries) * fraction)))
        rng = make_rng(derive_seed(self.seed, self.profile.name, run_label))
        chosen = rng.choice(entries, size=min(count, len(entries)), replace=False)
        return sorted(int(a) for a in chosen)

    def syscall_targets(self) -> List[int]:
        """Syscall stub addresses (ELM mapper configuration)."""
        return self.cfg.syscall_addresses
