"""Synthetic workload substrate.

The paper exercises RTAD with the SPEC CINT2006 suite running on an ARM
Cortex-A9.  We cannot run SPEC, so this subpackage provides CFG-driven
synthetic programs whose *branch event streams* carry the same load
characteristics the RTAD hardware reacts to: branch frequency, call and
system-call frequency, and a benchmark-specific working set of branch
addresses.
"""

from repro.workloads.cfg import (
    BasicBlock,
    BranchEvent,
    BranchKind,
    ControlFlowGraph,
    generate_cfg,
)
from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC_CINT2006,
    get_profile,
    profile_names,
)
from repro.workloads.program import SyntheticProgram, TraceRecorder
from repro.workloads.attacks import AttackInjector, InjectedAttack
from repro.workloads.dataset import TraceDataset, build_dataset

__all__ = [
    "BasicBlock",
    "BranchEvent",
    "BranchKind",
    "ControlFlowGraph",
    "generate_cfg",
    "BenchmarkProfile",
    "SPEC_CINT2006",
    "get_profile",
    "profile_names",
    "SyntheticProgram",
    "TraceRecorder",
    "AttackInjector",
    "InjectedAttack",
    "TraceDataset",
    "build_dataset",
]
