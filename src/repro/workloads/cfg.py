"""Control-flow-graph model of a synthetic program.

A program is a set of functions; each function is a small CFG of basic
blocks.  Walking the CFG emits :class:`BranchEvent` records — exactly
the information the ARM CoreSight PTM observes: the branch source, its
target, its kind, and the cycle at which it retired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError

#: Byte size of one (ARM) instruction; blocks are laid out contiguously.
INSTRUCTION_BYTES = 4

#: Base virtual address of the synthetic text segment.
TEXT_BASE = 0x0001_0000

#: Base address of the syscall stubs ("kernel entry" targets).
SYSCALL_BASE = 0xFFFF_0000


class BranchKind(enum.Enum):
    """Taxonomy of control-flow transfers the PTM can observe."""

    CONDITIONAL = "cond"
    UNCONDITIONAL = "uncond"
    CALL = "call"
    RETURN = "ret"
    INDIRECT = "indirect"
    SYSCALL = "syscall"


@dataclass(frozen=True)
class BranchEvent:
    """One retired control-flow transfer.

    ``cycle`` counts CPU core cycles from program start; the SoC layer
    converts to wall-clock using the CPU clock domain.
    """

    cycle: int
    source: int
    target: int
    kind: BranchKind
    taken: bool = True

    def __str__(self) -> str:
        return (
            f"@{self.cycle} {self.kind.value} "
            f"{self.source:#010x} -> {self.target:#010x}"
            f"{'' if self.taken else ' (not taken)'}"
        )


def is_map_only(event: BranchEvent) -> bool:
    """True when a grammar may record this event as a single outcome
    bit, with no target address: a not-taken conditional branch.

    This classification is shared by every trace frontend (CoreSight
    atom packets, E-Trace branch maps) and by the batched dataplane's
    struct-of-arrays view, so the same CFG-walker event streams drive
    all grammars identically.
    """
    return event.kind is BranchKind.CONDITIONAL and not event.taken


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in a branch.

    ``terminator`` decides which successor fields are meaningful:

    - ``CONDITIONAL``: ``taken_target`` / ``fallthrough`` with
      ``taken_probability``.
    - ``UNCONDITIONAL`` / ``INDIRECT``: ``taken_target`` (for INDIRECT a
      target is sampled from ``indirect_targets``).
    - ``CALL``: ``callee`` function entry; control returns to
      ``fallthrough``.
    - ``RETURN``: pops the call stack.
    - ``SYSCALL``: branches to a syscall stub then to ``fallthrough``.
    """

    address: int
    size: int  # instruction count, including the terminator
    terminator: BranchKind
    taken_target: Optional[int] = None
    fallthrough: Optional[int] = None
    taken_probability: float = 0.5
    callee: Optional[int] = None
    syscall_number: Optional[int] = None
    indirect_targets: Tuple[int, ...] = ()
    indirect_weights: Tuple[float, ...] = ()

    @property
    def branch_address(self) -> int:
        """Address of the terminating branch instruction."""
        return self.address + (self.size - 1) * INSTRUCTION_BYTES

    @property
    def end_address(self) -> int:
        return self.address + self.size * INSTRUCTION_BYTES


@dataclass
class FunctionInfo:
    """Metadata for one synthetic function."""

    name: str
    entry: int
    blocks: List[int] = field(default_factory=list)  # block addresses


class ControlFlowGraph:
    """The static structure of a synthetic program."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.functions: List[FunctionInfo] = []
        self.syscall_stubs: Dict[int, int] = {}  # syscall number -> address
        self.entry: Optional[int] = None

    def add_block(self, block: BasicBlock) -> None:
        if block.address in self.blocks:
            raise WorkloadError(f"duplicate block at {block.address:#x}")
        self.blocks[block.address] = block

    def block_at(self, address: int) -> BasicBlock:
        try:
            return self.blocks[address]
        except KeyError:
            raise WorkloadError(f"no basic block at {address:#x}") from None

    @property
    def call_targets(self) -> List[int]:
        """Entry addresses of all functions (candidate mapper entries)."""
        return [f.entry for f in self.functions]

    @property
    def syscall_addresses(self) -> List[int]:
        """Addresses of all syscall stubs."""
        return sorted(self.syscall_stubs.values())

    def all_branch_sources(self) -> List[int]:
        """Addresses of every terminating branch instruction."""
        return sorted(b.branch_address for b in self.blocks.values())

    def validate(self) -> None:
        """Check referential integrity of every successor edge."""
        for block in self.blocks.values():
            refs: List[Optional[int]] = []
            if block.terminator is BranchKind.CONDITIONAL:
                refs = [block.taken_target, block.fallthrough]
            elif block.terminator is BranchKind.UNCONDITIONAL:
                refs = [block.taken_target]
            elif block.terminator is BranchKind.CALL:
                refs = [block.callee, block.fallthrough]
            elif block.terminator is BranchKind.SYSCALL:
                refs = [block.fallthrough]
                if block.syscall_number not in self.syscall_stubs:
                    raise WorkloadError(
                        f"block {block.address:#x} uses unknown syscall "
                        f"{block.syscall_number}"
                    )
            elif block.terminator is BranchKind.INDIRECT:
                if not block.indirect_targets:
                    raise WorkloadError(
                        f"indirect block {block.address:#x} has no targets"
                    )
                refs = list(block.indirect_targets)
            for ref in refs:
                if ref is None:
                    raise WorkloadError(
                        f"block {block.address:#x} missing successor"
                    )
                if ref not in self.blocks:
                    raise WorkloadError(
                        f"block {block.address:#x} references unknown "
                        f"target {ref:#x}"
                    )
        if self.entry is None or self.entry not in self.blocks:
            raise WorkloadError("CFG entry point not set or unknown")


def _layout_function(
    cfg: ControlFlowGraph,
    name: str,
    entry: int,
    num_blocks: int,
    mean_block_size: float,
    syscall_block_fraction: float,
    call_block_fraction: float,
    indirect_block_fraction: float,
    rng: np.random.Generator,
) -> FunctionInfo:
    """Create one function's blocks; call/return edges wired later."""
    info = FunctionInfo(name=name, entry=entry)
    address = entry
    sizes = []
    for _ in range(num_blocks):
        size = max(2, int(rng.geometric(1.0 / mean_block_size)))
        sizes.append(size)
    addresses = []
    for size in sizes:
        addresses.append(address)
        address += size * INSTRUCTION_BYTES

    for index, (addr, size) in enumerate(zip(addresses, sizes)):
        is_last = index == num_blocks - 1
        if is_last:
            terminator = BranchKind.RETURN
        else:
            draw = rng.random()
            if draw < syscall_block_fraction:
                terminator = BranchKind.SYSCALL
            elif draw < syscall_block_fraction + call_block_fraction:
                terminator = BranchKind.CALL
            elif draw < (
                syscall_block_fraction
                + call_block_fraction
                + indirect_block_fraction
            ):
                terminator = BranchKind.INDIRECT
            else:
                terminator = BranchKind.CONDITIONAL
        fallthrough = addresses[index + 1] if not is_last else None
        if terminator is BranchKind.CONDITIONAL:
            # Backward edge with some probability gives loops.
            if index > 0 and rng.random() < 0.3:
                target = addresses[rng.integers(0, index)]
                taken_p = float(rng.uniform(0.5, 0.85))  # loops mostly taken
            else:
                target = addresses[min(num_blocks - 1, index + int(rng.integers(1, 3)))]
                taken_p = float(rng.uniform(0.2, 0.8))
            block = BasicBlock(
                address=addr,
                size=size,
                terminator=terminator,
                taken_target=target,
                fallthrough=fallthrough,
                taken_probability=taken_p,
            )
        elif terminator is BranchKind.SYSCALL:
            block = BasicBlock(
                address=addr,
                size=size,
                terminator=terminator,
                fallthrough=fallthrough,
            )
        elif terminator is BranchKind.CALL:
            block = BasicBlock(
                address=addr,
                size=size,
                terminator=terminator,
                fallthrough=fallthrough,
            )
        elif terminator is BranchKind.INDIRECT:
            block = BasicBlock(
                address=addr,
                size=size,
                terminator=terminator,
                fallthrough=fallthrough,
            )
        else:  # RETURN
            block = BasicBlock(address=addr, size=size, terminator=terminator)
        cfg.add_block(block)
        info.blocks.append(addr)
    return info


def generate_cfg(
    num_functions: int,
    blocks_per_function: int,
    mean_block_size: float,
    syscall_block_fraction: float,
    call_block_fraction: float,
    indirect_block_fraction: float,
    num_syscalls: int,
    seed_rng: np.random.Generator,
) -> ControlFlowGraph:
    """Generate a random but well-formed program CFG.

    The fractions control what share of non-terminal blocks end in each
    branch kind; the remainder end in conditional branches.
    """
    if num_functions < 1:
        raise WorkloadError("need at least one function")
    cfg = ControlFlowGraph()

    # Syscall stubs live in a distinct "kernel" region.
    for i in range(num_syscalls):
        stub_addr = SYSCALL_BASE + i * 0x20
        cfg.syscall_stubs[i] = stub_addr

    address = TEXT_BASE
    for f_index in range(num_functions):
        blocks = max(
            2, int(seed_rng.normal(blocks_per_function, blocks_per_function * 0.3))
        )
        info = _layout_function(
            cfg,
            name=f"func_{f_index}",
            entry=address,
            num_blocks=blocks,
            mean_block_size=mean_block_size,
            syscall_block_fraction=syscall_block_fraction,
            call_block_fraction=call_block_fraction,
            indirect_block_fraction=indirect_block_fraction,
            rng=seed_rng,
        )
        cfg.functions.append(info)
        last_block = cfg.blocks[info.blocks[-1]]
        address = last_block.end_address + int(seed_rng.integers(4, 64)) * 4

    # Wire call edges, indirect target sets and syscall numbers now that
    # every function exists.
    entries = [f.entry for f in cfg.functions]
    for block in cfg.blocks.values():
        if block.terminator is BranchKind.CALL:
            block.callee = int(seed_rng.choice(entries))
        elif block.terminator is BranchKind.INDIRECT:
            count = int(seed_rng.integers(2, 6))
            targets = seed_rng.choice(entries, size=count, replace=True)
            weights = seed_rng.dirichlet(np.ones(count))
            block.indirect_targets = tuple(int(t) for t in targets)
            block.indirect_weights = tuple(float(w) for w in weights)
        elif block.terminator is BranchKind.SYSCALL:
            block.syscall_number = int(
                seed_rng.integers(0, len(cfg.syscall_stubs))
            )

    # The walker re-enters function 0 when the call stack drains, so if
    # function 0 happens to contain no call sites the walk never leaves
    # it — unlike any real `main`.  Guarantee at least two call blocks
    # there by converting conditionals (call-rate calibration then
    # proceeds from a connected CFG).
    entry_info = cfg.functions[0]
    entry_calls = sum(
        1
        for addr in entry_info.blocks[:-1]
        if cfg.blocks[addr].terminator is BranchKind.CALL
    )
    convertible = [
        addr
        for addr in entry_info.blocks[:-1]
        if cfg.blocks[addr].terminator is BranchKind.CONDITIONAL
    ]
    need = max(0, 2 - entry_calls)
    for addr in convertible[:need]:
        block = cfg.blocks[addr]
        block.terminator = BranchKind.CALL
        block.callee = int(seed_rng.choice(entries))
        block.taken_target = None

    cfg.entry = cfg.functions[0].entry
    cfg.validate()
    return cfg
