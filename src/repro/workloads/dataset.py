"""Trace dataset assembly for model training and evaluation.

RTAD "can help to collect data for training models by running the
target application in advance and extracting the branch traces"; here
the same filtering and encoding the IGM applies at inference time is
applied in software to produce training windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.attacks import AttackInjector
from repro.workloads.cfg import BranchEvent
from repro.workloads.program import SyntheticProgram

#: Vocabulary ID reserved for addresses not in the mapper table.  The
#: hardware drops those events entirely; the reserved ID only appears
#: if a caller encodes an unfiltered stream.
UNKNOWN_ID = 0


@dataclass
class Vocabulary:
    """Maps monitored branch-target addresses to dense integer IDs."""

    address_to_id: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_addresses(cls, addresses: Sequence[int]) -> "Vocabulary":
        mapping = {
            int(addr): index + 1  # 0 is UNKNOWN_ID
            for index, addr in enumerate(sorted(set(addresses)))
        }
        return cls(address_to_id=mapping)

    @property
    def size(self) -> int:
        """Number of IDs including the unknown slot."""
        return len(self.address_to_id) + 1

    def encode(self, address: int) -> int:
        return self.address_to_id.get(int(address), UNKNOWN_ID)

    def contains(self, address: int) -> bool:
        return int(address) in self.address_to_id

    def encode_events(
        self, events: Sequence[BranchEvent], drop_unknown: bool = True
    ) -> np.ndarray:
        """Encode a branch event stream to IDs, filtering like the IGM."""
        ids = []
        for event in events:
            encoded = self.encode(event.target)
            if encoded == UNKNOWN_ID and drop_unknown:
                continue
            ids.append(encoded)
        return np.array(ids, dtype=np.int64)


def sliding_windows(ids: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """All length-``window`` windows of an ID sequence (2-D array)."""
    if window < 1:
        raise WorkloadError("window must be >= 1")
    if len(ids) < window:
        return np.empty((0, window), dtype=np.int64)
    count = (len(ids) - window) // stride + 1
    out = np.empty((count, window), dtype=np.int64)
    for i in range(count):
        out[i] = ids[i * stride:i * stride + window]
    return out


@dataclass
class TraceDataset:
    """Windows for training plus labeled normal/anomalous test windows."""

    vocabulary: Vocabulary
    window: int
    train_windows: np.ndarray
    test_normal: np.ndarray
    test_anomalous: np.ndarray

    def summary(self) -> str:
        return (
            f"vocab={self.vocabulary.size} window={self.window} "
            f"train={len(self.train_windows)} "
            f"test_normal={len(self.test_normal)} "
            f"test_anomalous={len(self.test_anomalous)}"
        )


def build_dataset(
    program: SyntheticProgram,
    feature: str = "call",
    window: int = 16,
    train_events: int = 60_000,
    test_events: int = 20_000,
    num_attacks: int = 40,
    stride: int = 1,
    seed: int = 0,
    mapper_size: Optional[int] = None,
    monitored_addresses: Optional[Sequence[int]] = None,
) -> TraceDataset:
    """Run a program, filter its traces, and build an ML dataset.

    ``feature`` selects the mapper configuration: ``"syscall"`` keeps
    system-call stubs only (the ELM configuration from [2]);
    ``"call"`` keeps monitored general call targets (the LSTM
    configuration from [8]).  ``mapper_size`` overrides the profile's
    sparse default mapper table with a denser one — useful because the
    timing experiments want sparse (µs-scale intervals) while model
    training wants dense sequences.

    Syscalls are too rare in a raw CFG walk (a few per million
    instructions) to collect a corpus that way, so the syscall path
    samples the benchmark's :class:`SyscallSequenceModel` directly —
    the same substitution the training pipeline of [2] effectively
    makes by tracing hours of execution.
    """
    if feature == "syscall":
        return _build_syscall_dataset(
            program, window, train_events, test_events, num_attacks,
            stride, seed,
        )
    if feature == "call":
        if monitored_addresses is not None:
            monitored = sorted(int(a) for a in monitored_addresses)
        else:
            monitored = program.monitored_call_targets(count=mapper_size)
    else:
        raise WorkloadError(f"unknown feature kind {feature!r}")
    vocabulary = Vocabulary.from_addresses(monitored)

    # One continuous walk split train/test: separate walks can land in
    # different phase behaviour (one stuck in a call-free loop nest for
    # its whole budget), which starves one side of monitored events.
    total_events = train_events + test_events
    trace = program.run(total_events, run_label="trace")
    all_ids = vocabulary.encode_events(trace.events)
    split = int(len(all_ids) * train_events / total_events)
    train_ids = all_ids[:split]
    test_ids = all_ids[split:]
    train_windows = sliding_windows(train_ids, window, stride)
    test_normal = sliding_windows(test_ids, window, stride)
    if len(train_windows) == 0 or len(test_normal) == 0:
        raise WorkloadError(
            f"{program.profile.name}: only {len(all_ids)} monitored "
            f"events in {total_events}; increase train_events for "
            f"window={window}"
        )
    test_trace = trace

    injector = AttackInjector(seed=seed)
    anomalous_windows: List[np.ndarray] = []
    # An attacker must traverse monitored code to do anything useful, so
    # gadget targets are drawn from the monitored address set.
    attacked = injector.inject_many(
        test_trace.events, num_attacks, target_pool=monitored
    )
    for attacked_events, attack in attacked:
        # Encode only monitored events; locate windows overlapping the
        # injected region by encoding with positions tracked.
        ids = []
        injected_flags = []
        for index, event in enumerate(attacked_events):
            encoded = vocabulary.encode(event.target)
            if encoded == UNKNOWN_ID:
                continue
            ids.append(encoded)
            injected_flags.append(
                attack.position <= index < attack.position + attack.length
            )
        ids_arr = np.array(ids, dtype=np.int64)
        flags = np.array(injected_flags, dtype=bool)
        windows = sliding_windows(ids_arr, window, stride)
        for w_index in range(len(windows)):
            start = w_index * stride
            if flags[start:start + window].any():
                anomalous_windows.append(windows[w_index])
    if anomalous_windows:
        test_anomalous = np.stack(anomalous_windows)
    else:
        test_anomalous = np.empty((0, window), dtype=np.int64)

    return TraceDataset(
        vocabulary=vocabulary,
        window=window,
        train_windows=train_windows,
        test_normal=test_normal,
        test_anomalous=test_anomalous,
    )


def _build_syscall_dataset(
    program: SyntheticProgram,
    window: int,
    train_events: int,
    test_events: int,
    num_attacks: int,
    stride: int,
    seed: int,
) -> TraceDataset:
    """ELM-configuration dataset from the syscall sequence substrate."""
    from repro.workloads.syscalls import (
        NUM_SYSCALLS,
        SyscallSequenceModel,
        stub_address,
    )

    model = SyscallSequenceModel(program.profile, seed=seed)
    vocabulary = Vocabulary.from_addresses(
        [stub_address(i) for i in range(NUM_SYSCALLS)]
    )

    # Syscall IDs map to vocabulary IDs via their stub addresses; the
    # mapping is monotone so id + 1 == vocabulary id.
    train_ids = model.generate(train_events, run_label="train") + 1
    test_ids = model.generate(test_events, run_label="test") + 1
    train_windows = sliding_windows(train_ids, window, stride)
    test_normal = sliding_windows(test_ids, window, stride)

    anomalous_windows: List[np.ndarray] = []
    gadget_length = max(4, window // 2)
    for attack_index in range(num_attacks):
        attacked, position = model.inject_anomaly(
            test_ids - 1,
            gadget_length=gadget_length,
            label=f"attack/{attack_index}",
        )
        attacked = attacked + 1
        lo = max(0, position - window + 1)
        hi = min(len(attacked) - window + 1, position + gadget_length)
        for start in range(lo, hi, stride):
            anomalous_windows.append(attacked[start:start + window])
    if anomalous_windows:
        test_anomalous = np.stack(anomalous_windows).astype(np.int64)
    else:
        test_anomalous = np.empty((0, window), dtype=np.int64)

    return TraceDataset(
        vocabulary=vocabulary,
        window=window,
        train_windows=train_windows,
        test_normal=test_normal,
        test_anomalous=test_anomalous,
    )
