"""System-call sequence substrate for the ELM configuration.

The ELM model the paper deploys ([2], Creech & Hu) learns from
*system-call sequences*.  Syscalls are rare relative to branches (a few
per million instructions), so collecting a training corpus by walking
the full CFG would need billions of simulated branches.  Instead this
module models each benchmark's syscall behaviour directly as a sparse
first-order Markov chain with phase structure: programs alternate
between phases (startup / compute / IO) with distinct syscall
repertoires — the structure host-based IDS work exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.cfg import SYSCALL_BASE
from repro.workloads.profiles import BenchmarkProfile

#: Number of distinct syscalls a benchmark uses.
NUM_SYSCALLS = 32

#: Likely successors per state — low entropy makes sequences learnable,
#: matching real syscall traces which are highly repetitive.
SUCCESSORS_PER_STATE = 3


def stub_address(syscall_id: int) -> int:
    """Address of the kernel-entry stub for a syscall number."""
    if not 0 <= syscall_id < NUM_SYSCALLS:
        raise WorkloadError(f"syscall id {syscall_id} out of range")
    return SYSCALL_BASE + syscall_id * 0x20


@dataclass
class SyscallPhase:
    """One execution phase: a transition matrix over the repertoire."""

    transition: np.ndarray  # (NUM_SYSCALLS, NUM_SYSCALLS) row-stochastic
    mean_length: int


class SyscallSequenceModel:
    """Per-benchmark generative model of syscall ID sequences."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        num_phases: int = 3,
    ) -> None:
        if num_phases < 1:
            raise WorkloadError("need at least one phase")
        self.profile = profile
        self.seed = seed
        rng = make_rng(derive_seed(seed, profile.name, "syscall-model"))
        self.phases: List[SyscallPhase] = [
            self._make_phase(rng) for _ in range(num_phases)
        ]

    @staticmethod
    def _make_phase(rng: np.random.Generator) -> SyscallPhase:
        transition = np.full(
            (NUM_SYSCALLS, NUM_SYSCALLS), 1e-4, dtype=np.float64
        )
        for state in range(NUM_SYSCALLS):
            successors = rng.choice(
                NUM_SYSCALLS, size=SUCCESSORS_PER_STATE, replace=False
            )
            weights = rng.dirichlet(np.ones(SUCCESSORS_PER_STATE) * 0.6)
            for succ, weight in zip(successors, weights):
                transition[state, succ] += weight
        transition /= transition.sum(axis=1, keepdims=True)
        mean_length = int(rng.integers(200, 600))
        return SyscallPhase(transition=transition, mean_length=mean_length)

    def generate(
        self, length: int, run_label: str = "run"
    ) -> np.ndarray:
        """Generate a syscall ID sequence of the given length."""
        if length < 0:
            raise WorkloadError("length must be non-negative")
        rng = make_rng(
            derive_seed(self.seed, self.profile.name, "syscall-run", run_label)
        )
        out = np.empty(length, dtype=np.int64)
        phase_index = 0
        phase = self.phases[phase_index]
        remaining = phase.mean_length
        state = int(rng.integers(0, NUM_SYSCALLS))
        for i in range(length):
            out[i] = state
            state = int(
                rng.choice(NUM_SYSCALLS, p=phase.transition[state])
            )
            remaining -= 1
            if remaining <= 0:
                phase_index = (phase_index + 1) % len(self.phases)
                phase = self.phases[phase_index]
                remaining = max(
                    1, int(rng.normal(phase.mean_length, phase.mean_length * 0.2))
                )
        return out

    def generate_addresses(
        self, length: int, run_label: str = "run"
    ) -> np.ndarray:
        """Same sequence expressed as stub addresses (what the IGM sees)."""
        ids = self.generate(length, run_label)
        return np.array([stub_address(int(i)) for i in ids], dtype=np.uint64)

    def inject_anomaly(
        self,
        sequence: np.ndarray,
        gadget_length: int = 8,
        position: Optional[int] = None,
        label: str = "attack",
    ) -> tuple:
        """Insert legitimate-but-out-of-context syscalls.

        Mirrors the paper's attack emulation: inserted IDs are drawn
        from the *observed* repertoire (marginal distribution), so each
        individual syscall is legitimate while the local sequence is
        not.  Returns ``(new_sequence, position)``.
        """
        rng = make_rng(derive_seed(self.seed, label))
        sequence = np.asarray(sequence, dtype=np.int64)
        if len(sequence) < 2:
            raise WorkloadError("sequence too short to attack")
        if position is None:
            position = int(rng.integers(1, len(sequence)))
        observed = np.unique(sequence)
        gadget = rng.choice(observed, size=gadget_length, replace=True)
        new_sequence = np.concatenate(
            [sequence[:position], gadget, sequence[position:]]
        )
        return new_sequence, position
