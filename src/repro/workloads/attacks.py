"""Attack emulation: legitimate-branch insertion.

The paper emulates attacks "by randomly inserting legitimate branch
data (i.e., branch addresses that can be observed during normal
execution) in normal branch traces because inserting any random branch
address would be trivial for detection".  This mirrors control-flow
hijacks (ROP/JOP, data-only attacks) that reuse existing code but in an
order the program never produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.cfg import BranchEvent, BranchKind


@dataclass(frozen=True)
class InjectedAttack:
    """Metadata describing one injected anomaly.

    ``position`` is the index in the *output* event list of the first
    injected event; ``onset_cycle`` is its CPU cycle timestamp, which
    the SoC evaluation uses as time zero for detection latency.
    """

    position: int
    length: int
    onset_cycle: int
    injected_targets: Sequence[int]


class AttackInjector:
    """Inserts out-of-context but legitimate branch sequences."""

    def __init__(
        self,
        seed: int = 0,
        gadget_length: int = 8,
        inter_branch_cycles: int = 12,
    ) -> None:
        if gadget_length < 1:
            raise WorkloadError("gadget_length must be >= 1")
        self.seed = seed
        self.gadget_length = gadget_length
        self.inter_branch_cycles = inter_branch_cycles

    def _legitimate_targets(self, events: Sequence[BranchEvent]) -> List[int]:
        """The set of branch targets observed in the normal trace."""
        targets = sorted({e.target for e in events})
        if not targets:
            raise WorkloadError("cannot attack an empty trace")
        return targets

    def inject(
        self,
        events: Sequence[BranchEvent],
        position: Optional[int] = None,
        label: str = "attack",
        target_pool: Optional[Sequence[int]] = None,
    ) -> tuple:
        """Return ``(new_events, attack)`` with a gadget chain inserted.

        The injected events reuse *observed* (source, target) addresses
        but pair them in an order the program never executes; subsequent
        normal events are shifted in time by the gadget's duration.
        ``target_pool`` restricts the gadget targets — e.g. to the
        monitored addresses, modeling an attacker who necessarily
        traverses critical functions to do anything useful.
        """
        rng = make_rng(derive_seed(self.seed, label))
        events = list(events)
        if len(events) < 2:
            raise WorkloadError("trace too short to attack")
        if position is None:
            position = int(rng.integers(1, len(events)))
        if not 1 <= position <= len(events):
            raise WorkloadError(f"position {position} out of range")

        if target_pool is not None:
            targets = sorted(set(int(t) for t in target_pool))
            if not targets:
                raise WorkloadError("empty target_pool")
        else:
            targets = self._legitimate_targets(events)
        sources = sorted({e.source for e in events})
        onset_cycle = events[position - 1].cycle + 1

        injected: List[BranchEvent] = []
        cycle = onset_cycle
        chosen_targets: List[int] = []
        for _ in range(self.gadget_length):
            source = int(rng.choice(sources))
            target = int(rng.choice(targets))
            injected.append(
                BranchEvent(cycle, source, target, BranchKind.INDIRECT)
            )
            chosen_targets.append(target)
            cycle += self.inter_branch_cycles

        shift = cycle - onset_cycle
        shifted_tail = [
            BranchEvent(e.cycle + shift, e.source, e.target, e.kind, e.taken)
            for e in events[position:]
        ]
        new_events = events[:position] + injected + shifted_tail
        attack = InjectedAttack(
            position=position,
            length=self.gadget_length,
            onset_cycle=onset_cycle,
            injected_targets=tuple(chosen_targets),
        )
        return new_events, attack

    def inject_many(
        self,
        events: Sequence[BranchEvent],
        count: int,
        label: str = "attacks",
        target_pool: Optional[Sequence[int]] = None,
    ) -> List[tuple]:
        """Produce ``count`` independently attacked copies of a trace."""
        rng = make_rng(derive_seed(self.seed, label, "positions"))
        results = []
        for i in range(count):
            position = int(rng.integers(1, len(events)))
            results.append(
                self.inject(
                    events,
                    position=position,
                    label=f"{label}/{i}",
                    target_pool=target_pool,
                )
            )
        return results
