"""Instruction set: the Southern Islands subset MIAOW implements.

Opcode naming follows AMD SI conventions (``s_`` scalar, ``v_``
vector, ``ds_`` local data share, ``flat_`` global memory).  Each
opcode carries its functional-unit class and the hardware *block* it
belongs to — the granularity at which the trimming flow removes logic.

SI quirks preserved on purpose (they matter for kernel authors):

- ``v_exp_f32`` / ``v_log_f32`` are base-2, not base-e.
- ``v_*rev`` shifts take the shift amount as src0.
- ``v_cndmask_b32`` selects src1 where VCC is set, src0 elsewhere.
- ``v_mac_f32`` accumulates into its destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import AssemblerError

#: Lanes per wavefront.
WAVE_SIZE = 64

#: Architectural register-file sizes.
NUM_SGPRS = 104
NUM_VGPRS = 64


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SReg:
    index: int

    def __str__(self) -> str:
        return f"s{self.index}"


@dataclass(frozen=True)
class VReg:
    index: int

    def __str__(self) -> str:
        return f"v{self.index}"


@dataclass(frozen=True)
class Lit:
    """A 32-bit literal, stored as raw bits."""

    bits: int

    def __str__(self) -> str:
        return f"{self.bits:#x}"


@dataclass(frozen=True)
class Special:
    """Named special register: vcc, exec, scc."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[SReg, VReg, Lit, Special]


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    operands: Tuple[Operand, ...] = ()
    target: Optional[str] = None  # branch target label
    line: int = 0

    def __str__(self) -> str:
        parts = ", ".join(str(o) for o in self.operands)
        if self.target is not None:
            parts = (parts + ", " if parts else "") + self.target
        return f"{self.op} {parts}".strip()


# ---------------------------------------------------------------------------
# Opcode table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode.

    ``unit`` is the timing class (salu / valu / vtrans / lds / vmem /
    branch / export / special); ``block`` is the RTL block the decode +
    datapath logic for this opcode lives in — the trimming granularity.
    ``signature`` is the operand pattern checked by the assembler:
    's' scalar dst/src, 'v' vector dst/src, 'x' any src (scalar, vector
    literal or special), 'L' label.
    """

    name: str
    unit: str
    block: str
    signature: str


OPCODES: Dict[str, OpcodeInfo] = {}


def _op(name: str, unit: str, block: str, signature: str) -> None:
    if name in OPCODES:
        raise AssemblerError(f"duplicate opcode {name}")
    OPCODES[name] = OpcodeInfo(name=name, unit=unit, block=block, signature=signature)


# --- scalar ALU ------------------------------------------------------------
_op("s_mov_b32", "salu", "salu_move", "sx")
_op("s_add_i32", "salu", "salu_arith", "sxx")
_op("s_sub_i32", "salu", "salu_arith", "sxx")
_op("s_mul_i32", "salu", "salu_mul", "sxx")
_op("s_and_b32", "salu", "salu_logic", "sxx")
_op("s_or_b32", "salu", "salu_logic", "sxx")
_op("s_xor_b32", "salu", "salu_logic", "sxx")
_op("s_lshl_b32", "salu", "salu_shift", "sxx")
_op("s_lshr_b32", "salu", "salu_shift", "sxx")
_op("s_ashr_i32", "salu", "salu_shift", "sxx")
_op("s_min_i32", "salu", "salu_minmax", "sxx")
_op("s_max_i32", "salu", "salu_minmax", "sxx")
_op("s_not_b32", "salu", "salu_logic", "sx")
_op("s_bcnt1_i32_b32", "salu", "salu_bitcount", "sx")
_op("s_ff1_i32_b32", "salu", "salu_bitcount", "sx")

# scalar compares set SCC
_op("s_cmp_eq_i32", "salu", "salu_cmp", "xx")
_op("s_cmp_lg_i32", "salu", "salu_cmp", "xx")
_op("s_cmp_lt_i32", "salu", "salu_cmp", "xx")
_op("s_cmp_le_i32", "salu", "salu_cmp", "xx")
_op("s_cmp_gt_i32", "salu", "salu_cmp", "xx")
_op("s_cmp_ge_i32", "salu", "salu_cmp", "xx")

# scalar memory (SMRD)
_op("s_load_dword", "smem", "smrd", "sxx")

# control flow
_op("s_branch", "branch", "branch_unit", "L")
_op("s_cbranch_scc0", "branch", "branch_unit", "L")
_op("s_cbranch_scc1", "branch", "branch_unit", "L")
_op("s_cbranch_vccz", "branch", "branch_unit", "L")
_op("s_cbranch_vccnz", "branch", "branch_unit", "L")
_op("s_cbranch_execz", "branch", "branch_unit", "L")
_op("s_barrier", "special", "sync_unit", "")
_op("s_waitcnt", "special", "sync_unit", "")
_op("s_nop", "special", "sequencer", "")
_op("s_endpgm", "special", "sequencer", "")

# --- vector ALU ------------------------------------------------------------
_op("v_mov_b32", "valu", "valu_move", "vx")
_op("v_add_f32", "valu", "valu_fadd", "vxx")
_op("v_sub_f32", "valu", "valu_fadd", "vxx")
_op("v_mul_f32", "valu", "valu_fmul", "vxx")
_op("v_mac_f32", "valu", "valu_fmac", "vxx")
_op("v_max_f32", "valu", "valu_fminmax", "vxx")
_op("v_min_f32", "valu", "valu_fminmax", "vxx")
_op("v_add_i32", "valu", "valu_iadd", "vxx")
_op("v_sub_i32", "valu", "valu_iadd", "vxx")
_op("v_mul_lo_i32", "valu", "valu_imul", "vxx")
_op("v_mul_hi_u32", "valu", "valu_imul", "vxx")
_op("v_and_b32", "valu", "valu_logic", "vxx")
_op("v_or_b32", "valu", "valu_logic", "vxx")
_op("v_xor_b32", "valu", "valu_logic", "vxx")
_op("v_lshlrev_b32", "valu", "valu_shift", "vxx")
_op("v_lshrrev_b32", "valu", "valu_shift", "vxx")
_op("v_ashrrev_i32", "valu", "valu_shift", "vxx")
_op("v_cndmask_b32", "valu", "valu_select", "vxx")
_op("v_min_i32", "valu", "valu_iminmax", "vxx")
_op("v_max_i32", "valu", "valu_iminmax", "vxx")
# fused multiply-add: dst = src0 * src1 + dst's previous value is NOT
# implied — VOP3 fma reads three sources; we expose the 2-src + dst
# accumulate as v_mac_f32 and the explicit 3-src form here.
_op("v_fma_f32", "valu", "valu_fmac", "vxxx")
# bitfield extract/insert (VOP3 in SI)
_op("v_bfe_u32", "valu", "valu_bitfield", "vxxx")
_op("v_bfi_b32", "valu", "valu_bitfield", "vxxx")

# conversions
_op("v_cvt_f32_i32", "valu", "valu_cvt", "vx")
_op("v_cvt_i32_f32", "valu", "valu_cvt", "vx")
_op("v_cvt_f32_u32", "valu", "valu_cvt", "vx")
_op("v_cvt_u32_f32", "valu", "valu_cvt", "vx")
_op("v_trunc_f32", "valu", "valu_cvt", "vx")
_op("v_floor_f32", "valu", "valu_cvt", "vx")

# transcendental (quarter-rate on real SI)
_op("v_exp_f32", "vtrans", "valu_trans_exp", "vx")
_op("v_log_f32", "vtrans", "valu_trans_log", "vx")
_op("v_rcp_f32", "vtrans", "valu_trans_rcp", "vx")
_op("v_rsq_f32", "vtrans", "valu_trans_rsq", "vx")
_op("v_sqrt_f32", "vtrans", "valu_trans_sqrt", "vx")

# vector compares set VCC
_op("v_cmp_eq_f32", "valu", "valu_fcmp", "xx")
_op("v_cmp_lt_f32", "valu", "valu_fcmp", "xx")
_op("v_cmp_gt_f32", "valu", "valu_fcmp", "xx")
_op("v_cmp_le_f32", "valu", "valu_fcmp", "xx")
_op("v_cmp_ge_f32", "valu", "valu_fcmp", "xx")
_op("v_cmp_eq_i32", "valu", "valu_icmp", "xx")
_op("v_cmp_lt_i32", "valu", "valu_icmp", "xx")
_op("v_cmp_gt_i32", "valu", "valu_icmp", "xx")

# compare-and-mask: like v_cmp_* but additionally ANDs the result into
# EXEC — the SI mechanism for structured control-flow divergence.
_op("v_cmpx_lt_f32", "valu", "valu_cmpx", "xx")
_op("v_cmpx_gt_f32", "valu", "valu_cmpx", "xx")
_op("v_cmpx_eq_i32", "valu", "valu_cmpx", "xx")
_op("v_cmpx_lt_i32", "valu", "valu_cmpx", "xx")
_op("v_cmpx_ge_i32", "valu", "valu_cmpx", "xx")

# EXEC save/restore across a divergent region (the 64-bit mask spans
# an aligned SGPR pair: sdst holds lanes 0-31, sdst+1 lanes 32-63).
_op("s_saveexec_b64", "salu", "exec_mask_unit", "s")
_op("s_mov_exec_b64", "salu", "exec_mask_unit", "s")

# lane management
_op("v_readfirstlane_b32", "valu", "valu_lane", "sx")

# --- local data share ------------------------------------------------------
_op("ds_read_b32", "lds", "lds_unit", "vx")
_op("ds_write_b32", "lds", "lds_unit", "xx")
# butterfly swizzle for tree reductions: lane i reads lane i^imm
_op("ds_swizzle_b32", "lds", "lds_swizzle", "vxx")
# LDS atomics (per-address integer add; collisions accumulate)
_op("ds_add_u32", "lds", "lds_atomic", "xx")

# --- global memory ---------------------------------------------------------
_op("flat_load_dword", "vmem", "vmem_unit", "vx")
_op("flat_store_dword", "vmem", "vmem_unit", "xx")


def opcode_info(name: str) -> OpcodeInfo:
    try:
        return OPCODES[name]
    except KeyError:
        raise AssemblerError(f"unknown opcode {name!r}") from None


def all_blocks() -> List[str]:
    """Every RTL block referenced by the opcode table."""
    return sorted({info.block for info in OPCODES.values()})
