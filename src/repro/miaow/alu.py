"""Operation semantics for the SI-subset ISA.

Each handler mutates a :class:`Wavefront` given the owning compute
unit (for memory access).  Vector operations are numpy-vectorized
across the 64 lanes and respect the EXEC write mask; VCC-writing
compares clear inactive lanes, matching SI.

This module is the behavioural oracle for the compiled fast path:
:mod:`repro.miaow.compiler` mirrors each handler statement for
statement and must stay bit-identical.  Load-bearing details here
include that :func:`read_vector` broadcasts scalar operands to full
uint32 lane arrays *viewed* as float32 — so scalar NaN payloads enter
arithmetic exactly, with array/array propagation rules — and that
float products are computed in float32 (never through python floats).
Change semantics here and the equivalence suite
(``tests/test_miaow_compiler.py``) will hold the compiler to it.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import GpuError, IllegalInstructionError
from repro.miaow.isa import Instruction, Lit, Special, SReg, VReg, WAVE_SIZE
from repro.miaow.wavefront import Wavefront

_U32 = np.uint32
_MASK32 = np.uint32(0xFFFFFFFF)


# ---------------------------------------------------------------------------
# Operand access
# ---------------------------------------------------------------------------

def read_scalar(wf: Wavefront, operand) -> int:
    """Read an operand as one 32-bit value (raw bits)."""
    if isinstance(operand, SReg):
        return wf.s_u32(operand.index)
    if isinstance(operand, Lit):
        return operand.bits
    if isinstance(operand, Special):
        if operand.name == "scc":
            return int(wf.scc)
        if operand.name == "vcc":
            return int(np.packbits(wf.vcc[:32][::-1]).view(">u4")[0])
        if operand.name == "exec":
            return int(np.packbits(wf.exec_mask[:32][::-1]).view(">u4")[0])
        raise GpuError(f"unreadable special register {operand.name}")
    if isinstance(operand, VReg):
        raise GpuError(f"scalar operand expected, got {operand}")
    raise GpuError(f"bad operand {operand!r}")


def read_vector(wf: Wavefront, operand) -> np.ndarray:
    """Read an operand as a 64-lane uint32 array (broadcast scalars)."""
    if isinstance(operand, VReg):
        return wf.v_u32(operand.index)
    value = read_scalar(wf, operand)
    return np.full(WAVE_SIZE, _U32(value), dtype=np.uint32)


def _f32(bits: np.ndarray) -> np.ndarray:
    return bits.view(np.float32) if bits.dtype == np.uint32 else bits


def _to_bits(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)


def _write_scc_cmp(wf: Wavefront, op: str, a: int, b: int) -> None:
    a_signed = int(np.int32(np.uint32(a)))
    b_signed = int(np.int32(np.uint32(b)))
    table = {
        "eq": a_signed == b_signed,
        "lg": a_signed != b_signed,
        "lt": a_signed < b_signed,
        "le": a_signed <= b_signed,
        "gt": a_signed > b_signed,
        "ge": a_signed >= b_signed,
    }
    wf.scc = bool(table[op])


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------

Handler = Callable[[Wavefront, Instruction, "object"], None]
HANDLERS: Dict[str, Handler] = {}


def handler(name: str) -> Callable[[Handler], Handler]:
    def register(fn: Handler) -> Handler:
        HANDLERS[name] = fn
        return fn
    return register


# -- scalar -----------------------------------------------------------------

@handler("s_mov_b32")
def _s_mov(wf, inst, cu):
    wf.set_sgpr(inst.operands[0].index, read_scalar(wf, inst.operands[1]))


def _salu_binop(fn):
    def run(wf, inst, cu):
        a = read_scalar(wf, inst.operands[1])
        b = read_scalar(wf, inst.operands[2])
        wf.set_sgpr(inst.operands[0].index, fn(a, b))
    return run


HANDLERS["s_add_i32"] = _salu_binop(lambda a, b: (a + b) & 0xFFFFFFFF)
HANDLERS["s_sub_i32"] = _salu_binop(lambda a, b: (a - b) & 0xFFFFFFFF)
HANDLERS["s_mul_i32"] = _salu_binop(lambda a, b: (a * b) & 0xFFFFFFFF)
HANDLERS["s_and_b32"] = _salu_binop(lambda a, b: a & b)
HANDLERS["s_or_b32"] = _salu_binop(lambda a, b: a | b)
HANDLERS["s_xor_b32"] = _salu_binop(lambda a, b: a ^ b)
HANDLERS["s_lshl_b32"] = _salu_binop(lambda a, b: (a << (b & 31)) & 0xFFFFFFFF)
HANDLERS["s_lshr_b32"] = _salu_binop(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))
HANDLERS["s_ashr_i32"] = _salu_binop(
    lambda a, b: (int(np.int32(np.uint32(a))) >> (b & 31)) & 0xFFFFFFFF
)
HANDLERS["s_min_i32"] = _salu_binop(
    lambda a, b: min(int(np.int32(np.uint32(a))), int(np.int32(np.uint32(b)))) & 0xFFFFFFFF
)
HANDLERS["s_max_i32"] = _salu_binop(
    lambda a, b: max(int(np.int32(np.uint32(a))), int(np.int32(np.uint32(b)))) & 0xFFFFFFFF
)


def _salu_unop(fn):
    def run(wf, inst, cu):
        wf.set_sgpr(
            inst.operands[0].index,
            fn(read_scalar(wf, inst.operands[1])) & 0xFFFFFFFF,
        )
    return run


HANDLERS["s_not_b32"] = _salu_unop(lambda a: ~a)
HANDLERS["s_bcnt1_i32_b32"] = _salu_unop(lambda a: bin(a & 0xFFFFFFFF).count("1"))
# find-first-1 from the LSB; all-zero input yields 0xFFFFFFFF (SI: -1)
HANDLERS["s_ff1_i32_b32"] = _salu_unop(
    lambda a: ((a & -a).bit_length() - 1) if a else 0xFFFFFFFF
)


def _scmp(op):
    def run(wf, inst, cu):
        a = read_scalar(wf, inst.operands[0])
        b = read_scalar(wf, inst.operands[1])
        _write_scc_cmp(wf, op, a, b)
    return run


for _cmp in ("eq", "lg", "lt", "le", "gt", "ge"):
    HANDLERS[f"s_cmp_{_cmp}_i32"] = _scmp(_cmp)


@handler("s_load_dword")
def _s_load(wf, inst, cu):
    base = read_scalar(wf, inst.operands[1])
    offset = read_scalar(wf, inst.operands[2])
    wf.set_sgpr(inst.operands[0].index, cu.global_memory.load_u32(base + offset))


# -- control flow (pc updates resolved by the CU via kernel labels) ---------

@handler("s_branch")
def _s_branch(wf, inst, cu):
    wf.pc = cu.resolve_label(inst.target)


def _cond_branch(predicate):
    def run(wf, inst, cu):
        if predicate(wf):
            wf.pc = cu.resolve_label(inst.target)
    return run


HANDLERS["s_cbranch_scc0"] = _cond_branch(lambda wf: not wf.scc)
HANDLERS["s_cbranch_scc1"] = _cond_branch(lambda wf: wf.scc)
HANDLERS["s_cbranch_vccz"] = _cond_branch(lambda wf: not wf.vcc.any())
HANDLERS["s_cbranch_vccnz"] = _cond_branch(lambda wf: wf.vcc.any())
HANDLERS["s_cbranch_execz"] = _cond_branch(lambda wf: not wf.exec_mask.any())


@handler("s_endpgm")
def _s_endpgm(wf, inst, cu):
    wf.done = True


@handler("s_nop")
def _s_nop(wf, inst, cu):
    return None


@handler("s_barrier")
def _s_barrier(wf, inst, cu):
    # Workgroup == wavefront in this simulator, so a barrier is a no-op.
    return None


@handler("s_waitcnt")
def _s_waitcnt(wf, inst, cu):
    # The timing model charges memory latency at issue; nothing to wait on.
    return None


# -- vector moves / arithmetic -----------------------------------------------

@handler("v_mov_b32")
def _v_mov(wf, inst, cu):
    wf.write_vgpr_masked(inst.operands[0].index, read_vector(wf, inst.operands[1]))


def _vfp_binop(fn):
    def run(wf, inst, cu):
        a = _f32(read_vector(wf, inst.operands[1]))
        b = _f32(read_vector(wf, inst.operands[2]))
        with np.errstate(all="ignore"):
            result = fn(a, b).astype(np.float32)
        wf.write_vgpr_masked(inst.operands[0].index, _to_bits(result))
    return run


HANDLERS["v_add_f32"] = _vfp_binop(lambda a, b: a + b)
HANDLERS["v_sub_f32"] = _vfp_binop(lambda a, b: a - b)
HANDLERS["v_mul_f32"] = _vfp_binop(lambda a, b: a * b)
HANDLERS["v_max_f32"] = _vfp_binop(np.maximum)
HANDLERS["v_min_f32"] = _vfp_binop(np.minimum)


@handler("v_mac_f32")
def _v_mac(wf, inst, cu):
    dst = inst.operands[0].index
    a = _f32(read_vector(wf, inst.operands[1]))
    b = _f32(read_vector(wf, inst.operands[2]))
    acc = wf.v_f32(dst).copy()
    with np.errstate(all="ignore"):
        result = (acc + a * b).astype(np.float32)
    wf.write_vgpr_masked(dst, _to_bits(result))


def _vint_binop(fn):
    def run(wf, inst, cu):
        a = read_vector(wf, inst.operands[1]).astype(np.int64)
        b = read_vector(wf, inst.operands[2]).astype(np.int64)
        result = (fn(a, b) & 0xFFFFFFFF).astype(np.uint32)
        wf.write_vgpr_masked(inst.operands[0].index, result)
    return run


HANDLERS["v_add_i32"] = _vint_binop(lambda a, b: a + b)
HANDLERS["v_sub_i32"] = _vint_binop(lambda a, b: a - b)
HANDLERS["v_mul_lo_i32"] = _vint_binop(lambda a, b: a * b)
HANDLERS["v_mul_hi_u32"] = _vint_binop(lambda a, b: (a * b) >> 32)
HANDLERS["v_and_b32"] = _vint_binop(lambda a, b: a & b)
HANDLERS["v_or_b32"] = _vint_binop(lambda a, b: a | b)
HANDLERS["v_xor_b32"] = _vint_binop(lambda a, b: a ^ b)
# *rev shifts: src0 is the shift amount, src1 the value (SI convention)
HANDLERS["v_lshlrev_b32"] = _vint_binop(lambda a, b: b << (a & 31))
HANDLERS["v_lshrrev_b32"] = _vint_binop(lambda a, b: (b & 0xFFFFFFFF) >> (a & 31))


def _vint_signed_binop(fn):
    def run(wf, inst, cu):
        a = read_vector(wf, inst.operands[1]).view(np.int32).astype(np.int64)
        b = read_vector(wf, inst.operands[2]).view(np.int32).astype(np.int64)
        result = (fn(a, b) & 0xFFFFFFFF).astype(np.uint32)
        wf.write_vgpr_masked(inst.operands[0].index, result)
    return run


HANDLERS["v_min_i32"] = _vint_signed_binop(np.minimum)
HANDLERS["v_max_i32"] = _vint_signed_binop(np.maximum)


@handler("v_ashrrev_i32")
def _v_ashr(wf, inst, cu):
    shift = read_vector(wf, inst.operands[1]).astype(np.int64) & 31
    value = read_vector(wf, inst.operands[2]).view(np.int32).astype(np.int64)
    result = (value >> shift).astype(np.int64) & 0xFFFFFFFF
    wf.write_vgpr_masked(inst.operands[0].index, result.astype(np.uint32))


@handler("v_cndmask_b32")
def _v_cndmask(wf, inst, cu):
    a = read_vector(wf, inst.operands[1])
    b = read_vector(wf, inst.operands[2])
    result = np.where(wf.vcc, b, a).astype(np.uint32)
    wf.write_vgpr_masked(inst.operands[0].index, result)


@handler("v_fma_f32")
def _v_fma(wf, inst, cu):
    a = _f32(read_vector(wf, inst.operands[1]))
    b = _f32(read_vector(wf, inst.operands[2]))
    c = _f32(read_vector(wf, inst.operands[3]))
    with np.errstate(all="ignore"):
        result = (a * b + c).astype(np.float32)
    wf.write_vgpr_masked(inst.operands[0].index, _to_bits(result))


@handler("v_bfe_u32")
def _v_bfe(wf, inst, cu):
    value = read_vector(wf, inst.operands[1]).astype(np.int64)
    offset = read_vector(wf, inst.operands[2]).astype(np.int64) & 31
    width = read_vector(wf, inst.operands[3]).astype(np.int64) & 31
    mask = (np.int64(1) << width) - 1
    result = ((value >> offset) & mask).astype(np.uint32)
    wf.write_vgpr_masked(inst.operands[0].index, result)


@handler("v_bfi_b32")
def _v_bfi(wf, inst, cu):
    select = read_vector(wf, inst.operands[1]).astype(np.int64)
    insert = read_vector(wf, inst.operands[2]).astype(np.int64)
    base = read_vector(wf, inst.operands[3]).astype(np.int64)
    result = ((select & insert) | (~select & base)) & 0xFFFFFFFF
    wf.write_vgpr_masked(
        inst.operands[0].index, result.astype(np.uint32)
    )


@handler("v_cvt_f32_u32")
def _v_cvt_f32_u32(wf, inst, cu):
    value = read_vector(wf, inst.operands[1]).astype(np.float64)
    wf.write_vgpr_masked(
        inst.operands[0].index, _to_bits(value.astype(np.float32))
    )


@handler("v_cvt_u32_f32")
def _v_cvt_u32_f32(wf, inst, cu):
    value = _f32(read_vector(wf, inst.operands[1]))
    with np.errstate(all="ignore"):
        clipped = np.nan_to_num(value, nan=0.0)
        clipped = np.clip(clipped, 0.0, 4294967295.0)
        result = clipped.astype(np.uint64).astype(np.uint32)
    wf.write_vgpr_masked(inst.operands[0].index, result)


def _vfp_unop(fn):
    def run(wf, inst, cu):
        value = _f32(read_vector(wf, inst.operands[1]))
        with np.errstate(all="ignore"):
            result = fn(value).astype(np.float32)
        wf.write_vgpr_masked(inst.operands[0].index, _to_bits(result))
    return run


HANDLERS["v_trunc_f32"] = _vfp_unop(np.trunc)
HANDLERS["v_floor_f32"] = _vfp_unop(np.floor)


@handler("v_cvt_f32_i32")
def _v_cvt_f32_i32(wf, inst, cu):
    value = read_vector(wf, inst.operands[1]).view(np.int32)
    wf.write_vgpr_masked(
        inst.operands[0].index, _to_bits(value.astype(np.float32))
    )


@handler("v_cvt_i32_f32")
def _v_cvt_i32_f32(wf, inst, cu):
    value = _f32(read_vector(wf, inst.operands[1]))
    with np.errstate(all="ignore"):
        clipped = np.nan_to_num(value, nan=0.0)
        clipped = np.clip(clipped, -2147483648.0, 2147483647.0)
        result = clipped.astype(np.int64).astype(np.uint32)
    wf.write_vgpr_masked(inst.operands[0].index, result)


def _vtrans(fn):
    def run(wf, inst, cu):
        value = _f32(read_vector(wf, inst.operands[1]))
        with np.errstate(all="ignore"):
            result = fn(value.astype(np.float64)).astype(np.float32)
        wf.write_vgpr_masked(inst.operands[0].index, _to_bits(result))
    return run


HANDLERS["v_exp_f32"] = _vtrans(np.exp2)       # SI: base-2 exponential
HANDLERS["v_log_f32"] = _vtrans(np.log2)       # SI: base-2 logarithm
HANDLERS["v_rcp_f32"] = _vtrans(lambda x: 1.0 / x)
HANDLERS["v_rsq_f32"] = _vtrans(lambda x: 1.0 / np.sqrt(x))
HANDLERS["v_sqrt_f32"] = _vtrans(np.sqrt)


def _vcmp_f32(fn):
    def run(wf, inst, cu):
        a = _f32(read_vector(wf, inst.operands[0]))
        b = _f32(read_vector(wf, inst.operands[1]))
        with np.errstate(all="ignore"):
            result = fn(a, b)
        wf.vcc = np.where(wf.exec_mask, result, False)
    return run


HANDLERS["v_cmp_eq_f32"] = _vcmp_f32(lambda a, b: a == b)
HANDLERS["v_cmp_lt_f32"] = _vcmp_f32(lambda a, b: a < b)
HANDLERS["v_cmp_gt_f32"] = _vcmp_f32(lambda a, b: a > b)
HANDLERS["v_cmp_le_f32"] = _vcmp_f32(lambda a, b: a <= b)
HANDLERS["v_cmp_ge_f32"] = _vcmp_f32(lambda a, b: a >= b)


def _vcmp_i32(fn):
    def run(wf, inst, cu):
        a = read_vector(wf, inst.operands[0]).view(np.int32)
        b = read_vector(wf, inst.operands[1]).view(np.int32)
        result = fn(a, b)
        wf.vcc = np.where(wf.exec_mask, result, False)
    return run


HANDLERS["v_cmp_eq_i32"] = _vcmp_i32(lambda a, b: a == b)
HANDLERS["v_cmp_lt_i32"] = _vcmp_i32(lambda a, b: a < b)
HANDLERS["v_cmp_gt_i32"] = _vcmp_i32(lambda a, b: a > b)


def _vcmpx_f32(fn):
    def run(wf, inst, cu):
        a = _f32(read_vector(wf, inst.operands[0]))
        b = _f32(read_vector(wf, inst.operands[1]))
        with np.errstate(all="ignore"):
            result = fn(a, b)
        masked = np.where(wf.exec_mask, result, False)
        wf.vcc = masked
        wf.exec_mask = wf.exec_mask & masked
    return run


def _vcmpx_i32(fn):
    def run(wf, inst, cu):
        a = read_vector(wf, inst.operands[0]).view(np.int32)
        b = read_vector(wf, inst.operands[1]).view(np.int32)
        masked = np.where(wf.exec_mask, fn(a, b), False)
        wf.vcc = masked
        wf.exec_mask = wf.exec_mask & masked
    return run


HANDLERS["v_cmpx_lt_f32"] = _vcmpx_f32(lambda a, b: a < b)
HANDLERS["v_cmpx_gt_f32"] = _vcmpx_f32(lambda a, b: a > b)
HANDLERS["v_cmpx_eq_i32"] = _vcmpx_i32(lambda a, b: a == b)
HANDLERS["v_cmpx_lt_i32"] = _vcmpx_i32(lambda a, b: a < b)
HANDLERS["v_cmpx_ge_i32"] = _vcmpx_i32(lambda a, b: a >= b)


def _mask_to_words(mask: np.ndarray) -> tuple:
    low = high = 0
    for lane in range(32):
        if mask[lane]:
            low |= 1 << lane
        if mask[lane + 32]:
            high |= 1 << lane
    return low, high


def _words_to_mask(low: int, high: int) -> np.ndarray:
    mask = np.zeros(WAVE_SIZE, dtype=bool)
    for lane in range(32):
        mask[lane] = bool((low >> lane) & 1)
        mask[lane + 32] = bool((high >> lane) & 1)
    return mask


@handler("s_saveexec_b64")
def _s_saveexec(wf, inst, cu):
    index = inst.operands[0].index
    low, high = _mask_to_words(wf.exec_mask)
    wf.set_sgpr(index, low)
    wf.set_sgpr(index + 1, high)


@handler("s_mov_exec_b64")
def _s_mov_exec(wf, inst, cu):
    index = inst.operands[0].index
    wf.exec_mask = _words_to_mask(
        wf.s_u32(index), wf.s_u32(index + 1)
    )


@handler("v_readfirstlane_b32")
def _v_readfirstlane(wf, inst, cu):
    src = read_vector(wf, inst.operands[1])
    active = np.nonzero(wf.exec_mask)[0]
    lane = int(active[0]) if active.size else 0
    wf.set_sgpr(inst.operands[0].index, int(src[lane]))


# -- local data share ---------------------------------------------------------

@handler("ds_read_b32")
def _ds_read(wf, inst, cu):
    addresses = read_vector(wf, inst.operands[1])
    values = cu.local_memory.gather_u32(addresses, wf.exec_mask)
    wf.write_vgpr_masked(inst.operands[0].index, values)


@handler("ds_write_b32")
def _ds_write(wf, inst, cu):
    addresses = read_vector(wf, inst.operands[0])
    values = read_vector(wf, inst.operands[1])
    cu.local_memory.scatter_u32(addresses, values, wf.exec_mask)


@handler("ds_add_u32")
def _ds_add(wf, inst, cu):
    addresses = read_vector(wf, inst.operands[0])
    values = read_vector(wf, inst.operands[1])
    cu.local_memory.atomic_add_u32(addresses, values, wf.exec_mask)


@handler("ds_swizzle_b32")
def _ds_swizzle(wf, inst, cu):
    """Butterfly lane shuffle: lane i reads src lane (i XOR imm)."""
    src = read_vector(wf, inst.operands[1])
    xor_mask = read_scalar(wf, inst.operands[2]) & (WAVE_SIZE - 1)
    lanes = np.arange(WAVE_SIZE) ^ xor_mask
    wf.write_vgpr_masked(inst.operands[0].index, src[lanes])


# -- global memory -------------------------------------------------------------

@handler("flat_load_dword")
def _flat_load(wf, inst, cu):
    addresses = read_vector(wf, inst.operands[1])
    values = cu.global_memory.gather_u32(addresses, wf.exec_mask)
    wf.write_vgpr_masked(inst.operands[0].index, values)


@handler("flat_store_dword")
def _flat_store(wf, inst, cu):
    addresses = read_vector(wf, inst.operands[0])
    values = read_vector(wf, inst.operands[1])
    cu.global_memory.scatter_u32(addresses, values, wf.exec_mask)


def execute(wf: Wavefront, inst: Instruction, cu) -> None:
    """Run one instruction's semantics on a wavefront."""
    try:
        run = HANDLERS[inst.op]
    except KeyError:
        raise IllegalInstructionError(
            f"no semantics for opcode {inst.op!r}"
        ) from None
    run(wf, inst, cu)
    wf.instructions_executed += 1
