"""Code-coverage instrumentation for the GPU simulator.

The paper's trimming flow turns on HDL line coverage in dynamic
simulation (Cadence IES), merges runs with ICCR, and trims the lines
never hit.  Our simulator's "lines" are coverage points at two
granularities:

- ``decode.<opcode>`` — the decoder entry + datapath slice for one
  opcode (what MIAOW2.0's instruction-analysis trimmer can also find);
- ``block.<block>``  — a whole RTL block (what only full-coverage
  trimming can remove when no opcode of that block ever runs).

A point that is never hit across the merged runs represents circuits
not required for the deployed models and is eligible for trimming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.miaow.isa import OPCODES


def all_coverage_points() -> Set[str]:
    """The complete point universe for the MIAOW design."""
    points = {f"decode.{name}" for name in OPCODES}
    points.update(f"block.{info.block}" for info in OPCODES.values())
    return points


class CoverageCollector:
    """Records which coverage points a simulation run hits."""

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.hits: Dict[str, int] = {}

    def hit(self, point: str) -> None:
        self.hits[point] = self.hits.get(point, 0) + 1

    def hit_opcode(self, opcode: str) -> None:
        info = OPCODES[opcode]
        self.hit(f"decode.{opcode}")
        self.hit(f"block.{info.block}")

    @property
    def covered(self) -> Set[str]:
        return set(self.hits)

    def __len__(self) -> int:
        return len(self.hits)


@dataclass
class CoverageReport:
    """Merged coverage across runs (the ICCR step)."""

    covered: Set[str] = field(default_factory=set)
    runs: List[str] = field(default_factory=list)

    @classmethod
    def merge(cls, collectors: Iterable[CoverageCollector]) -> "CoverageReport":
        report = cls()
        for collector in collectors:
            report.covered |= collector.covered
            report.runs.append(collector.label)
        return report

    @property
    def uncovered(self) -> Set[str]:
        return all_coverage_points() - self.covered

    @property
    def covered_opcodes(self) -> Set[str]:
        return {
            point.split(".", 1)[1]
            for point in self.covered
            if point.startswith("decode.")
        }

    @property
    def covered_blocks(self) -> Set[str]:
        return {
            point.split(".", 1)[1]
            for point in self.covered
            if point.startswith("block.")
        }

    def coverage_ratio(self) -> float:
        universe = all_coverage_points()
        if not universe:
            return 0.0
        return len(self.covered & universe) / len(universe)
