"""Multi-CU GPU: dispatcher over compute units.

The original MIAOW fits one CU in the ZC706 fabric; ML-MIAOW fits five
trimmed ones.  A dispatch spreads workgroups round-robin over CUs and
completes when the slowest CU finishes — CUs share global memory but
have private LDS (each holding its own copy of the model weights, the
way the MCM loads them at application-load time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import GpuError, KernelLaunchError
from repro.miaow.assembler import Kernel
from repro.miaow.compute_unit import ComputeUnit, GpuTimings
from repro.miaow.coverage import CoverageCollector
from repro.miaow.memory import GlobalMemory
from repro.obs import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one kernel dispatch."""

    kernel: str
    cycles: int
    instructions: int
    per_cu_cycles: Dict[int, int]

    def microseconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz * 1e6


class Gpu:
    """A MIAOW-style GPU with ``num_cus`` compute units."""

    def __init__(
        self,
        num_cus: int = 1,
        timings: Optional[GpuTimings] = None,
        global_memory: Optional[GlobalMemory] = None,
        lds_bytes: int = 64 * 1024,
        max_resident: int = 1,
        coverage: Optional[CoverageCollector] = None,
        allowed_ops: Optional[Set[str]] = None,
        name: str = "MIAOW",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_cus < 1:
            raise GpuError("need at least one CU")
        self.name = name
        self.timings = timings or GpuTimings()
        self.global_memory = global_memory or GlobalMemory()
        self.coverage = coverage
        self.allowed_ops = allowed_ops
        self.compute_units = [
            ComputeUnit(
                cu_id=index,
                global_memory=self.global_memory,
                timings=self.timings,
                lds_bytes=lds_bytes,
                max_resident=max_resident,
                coverage=coverage,
                allowed_ops=allowed_ops,
            )
            for index in range(num_cus)
        ]
        self.dispatches = 0
        self.metrics = metrics or NULL_REGISTRY
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        registry = self.metrics
        self._m_dispatches = registry.counter("gpu.dispatches")
        self._m_cycles = registry.counter("gpu.wavefront_cycles")
        self._m_instructions = registry.counter("gpu.instructions")

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Late-attach a registry (dispatches so far are not counted)."""
        self.metrics = metrics
        self._bind_instruments()

    @property
    def num_cus(self) -> int:
        return len(self.compute_units)

    # ------------------------------------------------------------------
    # Model preload (LDS is per-CU, every CU gets a copy)
    # ------------------------------------------------------------------

    def write_lds_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_block(address, data)

    def write_lds_f32_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_f32(address, data)

    def clear_lds(self) -> None:
        for cu in self.compute_units:
            cu.local_memory.clear()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        kernel: Kernel,
        num_workgroups: int,
        args: Sequence[int] = (),
    ) -> DispatchResult:
        """Run ``num_workgroups`` workgroups of ``kernel``.

        Workgroup ids are distributed round-robin across CUs; the
        dispatch's latency is the slowest CU's elapsed cycles.
        """
        if num_workgroups < 1:
            raise KernelLaunchError("num_workgroups must be >= 1")
        assignment: Dict[int, List[int]] = {
            cu.cu_id: [] for cu in self.compute_units
        }
        for wg_id in range(num_workgroups):
            assignment[wg_id % self.num_cus].append(wg_id)

        per_cu_cycles: Dict[int, int] = {}
        instructions_before = sum(
            cu.total_instructions for cu in self.compute_units
        )
        for cu in self.compute_units:
            wg_ids = assignment[cu.cu_id]
            if not wg_ids:
                per_cu_cycles[cu.cu_id] = 0
                continue
            per_cu_cycles[cu.cu_id] = cu.run_workgroups(
                kernel, wg_ids, num_workgroups, args
            )
        instructions = (
            sum(cu.total_instructions for cu in self.compute_units)
            - instructions_before
        )
        self.dispatches += 1
        result = DispatchResult(
            kernel=kernel.name,
            cycles=max(per_cu_cycles.values()),
            instructions=instructions,
            per_cu_cycles=per_cu_cycles,
        )
        self._m_dispatches.inc()
        self._m_cycles.inc(result.cycles)
        self._m_instructions.inc(result.instructions)
        return result
