"""Multi-CU GPU: dispatcher over compute units.

The original MIAOW fits one CU in the ZC706 fabric; ML-MIAOW fits five
trimmed ones.  A dispatch spreads workgroups round-robin over CUs and
completes when the slowest CU finishes — CUs share global memory but
have private LDS (each holding its own copy of the model weights, the
way the MCM loads them at application-load time).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import GpuError, KernelLaunchError
from repro.miaow.assembler import Kernel
from repro.miaow.compiler import (
    BatchCompiledKernel,
    CompiledKernel,
    CompileUnsupported,
    compile_kernel,
    compile_kernel_batched,
)
from repro.miaow.isa import NUM_SGPRS
from repro.miaow.compute_unit import ComputeUnit, GpuTimings
from repro.miaow.coverage import CoverageCollector
from repro.miaow.memory import GlobalMemory
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: Compiled-kernel LRU capacity.  The whole shipped model zoo needs six
#: kernels; 32 leaves generous headroom for synthetic/test kernels
#: without letting a kernel-churning workload hold executors forever.
COMPILED_CACHE_CAPACITY = 32

#: Dispatch-plan LRU capacity (keyed by workgroup count).
PLAN_CACHE_CAPACITY = 64

#: Batched-executor LRU capacity, keyed on (digest, K).  Each batch
#: size needs its own lowering (stacked-lane constants are sized
#: K * WAVE_SIZE), so the key space is larger than the single cache's.
BATCH_CACHE_CAPACITY = 64

_FALLBACK_REASONS = ("disabled", "coverage", "occupancy", "unsupported")

#: Why a dispatch_batch call fell back to serial single dispatches:
#: ``engine`` — the engine itself is off the fast path (interpreter
#: mode, coverage, occupancy > 1); ``unsupported`` — the kernel has no
#: batched lowering; ``replayed`` — the fused run raised (member fault
#: or control divergence) and was rolled back and replayed serially.
_BATCH_FALLBACK_REASONS = ("engine", "unsupported", "replayed")


class _JournaledGlobalMemory:
    """Write-journaling view of :class:`GlobalMemory` for fused runs.

    Records the pre-image of every scatter so a faulting fused dispatch
    can be rolled back to the exact pre-batch memory state before the
    members are replayed serially — that replay then reproduces the
    single path's results, partial effects and fault bit for bit.
    Reads delegate untouched; LDS needs no journal because the batched
    compiler statically rejects LDS-writing kernels.
    """

    __slots__ = ("_memory", "_journal")

    def __init__(self, memory, journal: list) -> None:
        self._memory = memory
        self._journal = journal

    def load_u32(self, address: int) -> int:
        return self._memory.load_u32(address)

    def gather_all_u32(self, addresses):
        return self._memory.gather_all_u32(addresses)

    def gather_u32(self, addresses, mask):
        return self._memory.gather_u32(addresses, mask)

    def scatter_all_u32(self, addresses, values) -> None:
        memory = self._memory
        self._journal.append((addresses, memory.gather_all_u32(addresses)))
        memory.scatter_all_u32(addresses, values)

    def scatter_u32(self, addresses, values, mask) -> None:
        memory = self._memory
        if mask.any():
            active = addresses[mask]
            self._journal.append((active, memory.gather_all_u32(active)))
        memory.scatter_u32(addresses, values, mask)


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one kernel dispatch."""

    kernel: str
    cycles: int
    instructions: int
    per_cu_cycles: Dict[int, int]

    def microseconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz * 1e6


class Gpu:
    """A MIAOW-style GPU with ``num_cus`` compute units."""

    def __init__(
        self,
        num_cus: int = 1,
        timings: Optional[GpuTimings] = None,
        global_memory: Optional[GlobalMemory] = None,
        lds_bytes: int = 64 * 1024,
        max_resident: int = 1,
        coverage: Optional[CoverageCollector] = None,
        allowed_ops: Optional[Set[str]] = None,
        name: str = "MIAOW",
        metrics: Optional[MetricsRegistry] = None,
        fast_path: bool = True,
    ) -> None:
        if num_cus < 1:
            raise GpuError("need at least one CU")
        self.name = name
        self.timings = timings or GpuTimings()
        self.global_memory = global_memory or GlobalMemory()
        self.coverage = coverage
        self.allowed_ops = allowed_ops
        self.max_resident = max_resident
        self.fast_path = fast_path
        # digest -> CompiledKernel, or None for kernels the compiler
        # declined (negative cache: don't retry a hopeless compile on
        # every dispatch).
        self._compiled_cache: "OrderedDict[str, Optional[CompiledKernel]]" = (
            OrderedDict()
        )
        # (digest, K) -> BatchCompiledKernel, or None when the batched
        # lowering declined (negative cache, like _compiled_cache).
        self._batch_cache: "OrderedDict[tuple, Optional[BatchCompiledKernel]]" = (
            OrderedDict()
        )
        # workgroup count -> per-CU workgroup-id lists (round-robin);
        # shared by the compiled and interpreted paths.
        self._plan_cache: "OrderedDict[int, List[List[int]]]" = OrderedDict()
        self.compute_units = [
            ComputeUnit(
                cu_id=index,
                global_memory=self.global_memory,
                timings=self.timings,
                lds_bytes=lds_bytes,
                max_resident=max_resident,
                coverage=coverage,
                allowed_ops=allowed_ops,
            )
            for index in range(num_cus)
        ]
        self.dispatches = 0
        self.metrics = metrics or NULL_REGISTRY
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        registry = self.metrics
        self._m_dispatches = registry.counter("gpu.dispatches")
        self._m_cycles = registry.counter("gpu.wavefront_cycles")
        self._m_instructions = registry.counter("gpu.instructions")
        self._m_compile_hits = registry.counter("miaow.compile.hits")
        self._m_compile_misses = registry.counter("miaow.compile.misses")
        self._m_compile_evictions = registry.counter("miaow.compile.evictions")
        self._m_fast_dispatches = registry.counter("miaow.fastpath.dispatches")
        self._m_interpreted = registry.counter("miaow.fastpath.interpreted")
        self._m_fallback = {
            reason: registry.counter(f"miaow.fastpath.fallback.{reason}")
            for reason in _FALLBACK_REASONS
        }
        self._m_batch_dispatches = registry.counter("miaow.batch.dispatches")
        self._m_batch_requests = registry.counter("miaow.batch.requests")
        self._m_batch_fallback = {
            reason: registry.counter(f"miaow.batch.fallback.{reason}")
            for reason in _BATCH_FALLBACK_REASONS
        }

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Late-attach a registry (dispatches so far are not counted)."""
        self.metrics = metrics
        self._bind_instruments()

    @property
    def num_cus(self) -> int:
        return len(self.compute_units)

    # ------------------------------------------------------------------
    # Model preload (LDS is per-CU, every CU gets a copy)
    # ------------------------------------------------------------------

    def write_lds_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_block(address, data)

    def write_lds_f32_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_f32(address, data)

    def clear_lds(self) -> None:
        for cu in self.compute_units:
            cu.local_memory.clear()

    # ------------------------------------------------------------------
    # Fast-path plumbing
    # ------------------------------------------------------------------

    def _fallback_reason(self) -> Optional[str]:
        """Why this dispatch cannot take the compiled path (or None).

        Coverage collection hooks every architectural instruction
        issue, and multi-wavefront occupancy interleaves instructions
        from different wavefronts — neither is reproducible by fused
        block executors, so both route to the interpreter.
        """
        if not self.fast_path:
            return "disabled"
        if self.coverage is not None:
            return "coverage"
        if self.max_resident != 1:
            return "occupancy"
        return None

    def _compiled_for(self, kernel: Kernel) -> Optional[CompiledKernel]:
        """LRU-cached compile of ``kernel`` (None = interpreter only)."""
        digest = kernel.content_digest()
        cache = self._compiled_cache
        if digest in cache:
            cache.move_to_end(digest)
            self._m_compile_hits.inc()
            return cache[digest]
        self._m_compile_misses.inc()
        try:
            compiled: Optional[CompiledKernel] = compile_kernel(
                kernel, self.timings, self.allowed_ops
            )
        except CompileUnsupported:
            compiled = None
        cache[digest] = compiled
        if len(cache) > COMPILED_CACHE_CAPACITY:
            cache.popitem(last=False)
            self._m_compile_evictions.inc()
        return compiled

    def _dispatch_plan(self, num_workgroups: int) -> List[List[int]]:
        """Round-robin wg->CU assignment, cached per workgroup count."""
        plan = self._plan_cache.get(num_workgroups)
        if plan is None:
            plan = [[] for _ in self.compute_units]
            for wg_id in range(num_workgroups):
                plan[wg_id % self.num_cus].append(wg_id)
            self._plan_cache[num_workgroups] = plan
            if len(self._plan_cache) > PLAN_CACHE_CAPACITY:
                self._plan_cache.popitem(last=False)
        else:
            self._plan_cache.move_to_end(num_workgroups)
        return plan

    def fastpath_stats(self) -> Dict[str, int]:
        """Cache occupancy snapshot (for benchmarks and tests)."""
        compiled = sum(
            1 for value in self._compiled_cache.values() if value is not None
        )
        return {
            "compiled_cached": compiled,
            "unsupported_cached": len(self._compiled_cache) - compiled,
            "plans_cached": len(self._plan_cache),
        }

    def batch_stats(self) -> Dict[str, int]:
        """Batched-executor cache snapshot (keyed on (digest, K))."""
        compiled = sum(
            1 for value in self._batch_cache.values() if value is not None
        )
        return {
            "batch_compiled_cached": compiled,
            "batch_unsupported_cached": len(self._batch_cache) - compiled,
        }

    def _batched_for(
        self, kernel: Kernel, batch: int
    ) -> Optional[BatchCompiledKernel]:
        """LRU-cached batched compile (None = no batched lowering)."""
        key = (kernel.content_digest(), batch)
        cache = self._batch_cache
        if key in cache:
            cache.move_to_end(key)
            return cache[key]
        try:
            batched: Optional[BatchCompiledKernel] = compile_kernel_batched(
                kernel, batch, self.timings, self.allowed_ops
            )
        except CompileUnsupported:
            batched = None
        cache[key] = batched
        if len(cache) > BATCH_CACHE_CAPACITY:
            cache.popitem(last=False)
        return batched

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        kernel: Kernel,
        num_workgroups: int,
        args: Sequence[int] = (),
    ) -> DispatchResult:
        """Run ``num_workgroups`` workgroups of ``kernel``.

        Workgroup ids are distributed round-robin across CUs; the
        dispatch's latency is the slowest CU's elapsed cycles.  When
        eligible (fast path enabled, no coverage collector, occupancy
        1) the kernel runs through its cached compiled executors; the
        result is bit-identical to the interpreter either way.
        """
        if num_workgroups < 1:
            raise KernelLaunchError("num_workgroups must be >= 1")
        plan = self._dispatch_plan(num_workgroups)
        reason = self._fallback_reason()
        compiled: Optional[CompiledKernel] = None
        if reason is None:
            compiled = self._compiled_for(kernel)
            if compiled is None:
                reason = "unsupported"

        per_cu_cycles: Dict[int, int] = {}
        instructions_before = sum(
            cu.total_instructions for cu in self.compute_units
        )
        for cu in self.compute_units:
            wg_ids = plan[cu.cu_id]
            if not wg_ids:
                per_cu_cycles[cu.cu_id] = 0
                continue
            if compiled is not None:
                per_cu_cycles[cu.cu_id] = compiled.run_workgroups(
                    cu, wg_ids, num_workgroups, args
                )
            else:
                per_cu_cycles[cu.cu_id] = cu.run_workgroups(
                    kernel, wg_ids, num_workgroups, args
                )
        instructions = (
            sum(cu.total_instructions for cu in self.compute_units)
            - instructions_before
        )
        self.dispatches += 1
        if compiled is not None:
            self._m_fast_dispatches.inc()
        else:
            self._m_interpreted.inc()
            self._m_fallback[reason].inc()
        result = DispatchResult(
            kernel=kernel.name,
            cycles=max(per_cu_cycles.values()),
            instructions=instructions,
            per_cu_cycles=per_cu_cycles,
        )
        self._m_dispatches.inc()
        self._m_cycles.inc(result.cycles)
        self._m_instructions.inc(result.instructions)
        return result

    def dispatch_batch(
        self,
        kernel: Kernel,
        num_workgroups: int,
        args_lists: Sequence[Sequence[int]],
    ) -> List[DispatchResult]:
        """Run K compatible requests of ``kernel`` as one fused dispatch.

        ``args_lists`` holds one argument list per member; argument
        positions every member agrees on stay uniform scalars, the rest
        become (K,) per-member arrays inside the batched executor.

        The results — scores in memory, per-member cycle counts,
        instruction counters, fault type/message and partial effects —
        are bit-identical to dispatching the members one at a time:
        fused members run in lockstep (so each member's timing equals
        its single-dispatch timing), all global-memory writes are
        journaled, and any fused-run exception (member fault, control
        divergence, unsupported runtime shape) rolls the journal back
        and replays the members serially through :meth:`dispatch`.
        Singletons and kernels without a batched lowering take the
        serial path directly.
        """
        members = len(args_lists)
        if members == 0:
            raise KernelLaunchError("dispatch_batch needs at least one member")
        if members == 1:
            return [self.dispatch(kernel, num_workgroups, args_lists[0])]
        if num_workgroups < 1:
            raise KernelLaunchError("num_workgroups must be >= 1")

        def serial(reason: str) -> List[DispatchResult]:
            self._m_batch_fallback[reason].inc()
            return [
                self.dispatch(kernel, num_workgroups, args)
                for args in args_lists
            ]

        if self._fallback_reason() is not None:
            return serial("engine")
        batched = self._batched_for(kernel, members)
        if batched is None:
            return serial("unsupported")
        width = len(args_lists[0])
        if width > NUM_SGPRS - 2 or any(
            len(args) != width for args in args_lists
        ):
            return serial("unsupported")

        # Column-wise argument stacking: uniform positions stay plain
        # ints (and fold through the scalar domain exactly like a
        # single dispatch); varying positions become (K,) arrays.
        columns: List[object] = []
        for position in range(width):
            values = [
                int(args[position]) & 0xFFFFFFFF for args in args_lists
            ]
            first = values[0]
            if all(value == first for value in values[1:]):
                columns.append(first)
            else:
                columns.append(np.array(values, dtype=np.int64))

        plan = self._dispatch_plan(num_workgroups)
        journal: List[tuple] = []
        memory = _JournaledGlobalMemory(self.global_memory, journal)
        per_cu_cycles: Dict[int, int] = {}
        per_cu_counts: Dict[int, int] = {}
        try:
            for cu in self.compute_units:
                wg_ids = plan[cu.cu_id]
                if not wg_ids:
                    per_cu_cycles[cu.cu_id] = 0
                    continue
                elapsed, count = batched.run_workgroups(
                    memory, cu.local_memory, wg_ids, num_workgroups,
                    columns,
                )
                per_cu_cycles[cu.cu_id] = elapsed
                per_cu_counts[cu.cu_id] = count
        except Exception:
            for addresses, values in reversed(journal):
                self.global_memory.scatter_all_u32(addresses, values)
            return serial("replayed")

        # Commit: every member executed the identical instruction
        # stream in lockstep, so per-member timing and counts equal the
        # fused run's — scatter them back K-fold.
        for cu in self.compute_units:
            count = per_cu_counts.get(cu.cu_id, 0)
            if count:
                cu.total_instructions += count * members
            elapsed = per_cu_cycles[cu.cu_id]
            if elapsed:
                cu.total_cycles += elapsed * members
        instructions = sum(per_cu_counts.values())
        cycles = max(per_cu_cycles.values())
        self.dispatches += members
        self._m_dispatches.inc(members)
        self._m_fast_dispatches.inc(members)
        self._m_cycles.inc(cycles * members)
        self._m_instructions.inc(instructions * members)
        self._m_batch_dispatches.inc()
        self._m_batch_requests.inc(members)
        return [
            DispatchResult(
                kernel=kernel.name,
                cycles=cycles,
                instructions=instructions,
                per_cu_cycles=dict(per_cu_cycles),
            )
            for _ in range(members)
        ]
