"""Multi-CU GPU: dispatcher over compute units.

The original MIAOW fits one CU in the ZC706 fabric; ML-MIAOW fits five
trimmed ones.  A dispatch spreads workgroups round-robin over CUs and
completes when the slowest CU finishes — CUs share global memory but
have private LDS (each holding its own copy of the model weights, the
way the MCM loads them at application-load time).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import GpuError, KernelLaunchError
from repro.miaow.assembler import Kernel
from repro.miaow.compiler import (
    CompiledKernel,
    CompileUnsupported,
    compile_kernel,
)
from repro.miaow.compute_unit import ComputeUnit, GpuTimings
from repro.miaow.coverage import CoverageCollector
from repro.miaow.memory import GlobalMemory
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: Compiled-kernel LRU capacity.  The whole shipped model zoo needs six
#: kernels; 32 leaves generous headroom for synthetic/test kernels
#: without letting a kernel-churning workload hold executors forever.
COMPILED_CACHE_CAPACITY = 32

#: Dispatch-plan LRU capacity (keyed by workgroup count).
PLAN_CACHE_CAPACITY = 64

_FALLBACK_REASONS = ("disabled", "coverage", "occupancy", "unsupported")


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one kernel dispatch."""

    kernel: str
    cycles: int
    instructions: int
    per_cu_cycles: Dict[int, int]

    def microseconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz * 1e6


class Gpu:
    """A MIAOW-style GPU with ``num_cus`` compute units."""

    def __init__(
        self,
        num_cus: int = 1,
        timings: Optional[GpuTimings] = None,
        global_memory: Optional[GlobalMemory] = None,
        lds_bytes: int = 64 * 1024,
        max_resident: int = 1,
        coverage: Optional[CoverageCollector] = None,
        allowed_ops: Optional[Set[str]] = None,
        name: str = "MIAOW",
        metrics: Optional[MetricsRegistry] = None,
        fast_path: bool = True,
    ) -> None:
        if num_cus < 1:
            raise GpuError("need at least one CU")
        self.name = name
        self.timings = timings or GpuTimings()
        self.global_memory = global_memory or GlobalMemory()
        self.coverage = coverage
        self.allowed_ops = allowed_ops
        self.max_resident = max_resident
        self.fast_path = fast_path
        # digest -> CompiledKernel, or None for kernels the compiler
        # declined (negative cache: don't retry a hopeless compile on
        # every dispatch).
        self._compiled_cache: "OrderedDict[str, Optional[CompiledKernel]]" = (
            OrderedDict()
        )
        # workgroup count -> per-CU workgroup-id lists (round-robin);
        # shared by the compiled and interpreted paths.
        self._plan_cache: "OrderedDict[int, List[List[int]]]" = OrderedDict()
        self.compute_units = [
            ComputeUnit(
                cu_id=index,
                global_memory=self.global_memory,
                timings=self.timings,
                lds_bytes=lds_bytes,
                max_resident=max_resident,
                coverage=coverage,
                allowed_ops=allowed_ops,
            )
            for index in range(num_cus)
        ]
        self.dispatches = 0
        self.metrics = metrics or NULL_REGISTRY
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        registry = self.metrics
        self._m_dispatches = registry.counter("gpu.dispatches")
        self._m_cycles = registry.counter("gpu.wavefront_cycles")
        self._m_instructions = registry.counter("gpu.instructions")
        self._m_compile_hits = registry.counter("miaow.compile.hits")
        self._m_compile_misses = registry.counter("miaow.compile.misses")
        self._m_compile_evictions = registry.counter("miaow.compile.evictions")
        self._m_fast_dispatches = registry.counter("miaow.fastpath.dispatches")
        self._m_interpreted = registry.counter("miaow.fastpath.interpreted")
        self._m_fallback = {
            reason: registry.counter(f"miaow.fastpath.fallback.{reason}")
            for reason in _FALLBACK_REASONS
        }

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Late-attach a registry (dispatches so far are not counted)."""
        self.metrics = metrics
        self._bind_instruments()

    @property
    def num_cus(self) -> int:
        return len(self.compute_units)

    # ------------------------------------------------------------------
    # Model preload (LDS is per-CU, every CU gets a copy)
    # ------------------------------------------------------------------

    def write_lds_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_block(address, data)

    def write_lds_f32_all(self, address: int, data: np.ndarray) -> None:
        for cu in self.compute_units:
            cu.local_memory.write_f32(address, data)

    def clear_lds(self) -> None:
        for cu in self.compute_units:
            cu.local_memory.clear()

    # ------------------------------------------------------------------
    # Fast-path plumbing
    # ------------------------------------------------------------------

    def _fallback_reason(self) -> Optional[str]:
        """Why this dispatch cannot take the compiled path (or None).

        Coverage collection hooks every architectural instruction
        issue, and multi-wavefront occupancy interleaves instructions
        from different wavefronts — neither is reproducible by fused
        block executors, so both route to the interpreter.
        """
        if not self.fast_path:
            return "disabled"
        if self.coverage is not None:
            return "coverage"
        if self.max_resident != 1:
            return "occupancy"
        return None

    def _compiled_for(self, kernel: Kernel) -> Optional[CompiledKernel]:
        """LRU-cached compile of ``kernel`` (None = interpreter only)."""
        digest = kernel.content_digest()
        cache = self._compiled_cache
        if digest in cache:
            cache.move_to_end(digest)
            self._m_compile_hits.inc()
            return cache[digest]
        self._m_compile_misses.inc()
        try:
            compiled: Optional[CompiledKernel] = compile_kernel(
                kernel, self.timings, self.allowed_ops
            )
        except CompileUnsupported:
            compiled = None
        cache[digest] = compiled
        if len(cache) > COMPILED_CACHE_CAPACITY:
            cache.popitem(last=False)
            self._m_compile_evictions.inc()
        return compiled

    def _dispatch_plan(self, num_workgroups: int) -> List[List[int]]:
        """Round-robin wg->CU assignment, cached per workgroup count."""
        plan = self._plan_cache.get(num_workgroups)
        if plan is None:
            plan = [[] for _ in self.compute_units]
            for wg_id in range(num_workgroups):
                plan[wg_id % self.num_cus].append(wg_id)
            self._plan_cache[num_workgroups] = plan
            if len(self._plan_cache) > PLAN_CACHE_CAPACITY:
                self._plan_cache.popitem(last=False)
        else:
            self._plan_cache.move_to_end(num_workgroups)
        return plan

    def fastpath_stats(self) -> Dict[str, int]:
        """Cache occupancy snapshot (for benchmarks and tests)."""
        compiled = sum(
            1 for value in self._compiled_cache.values() if value is not None
        )
        return {
            "compiled_cached": compiled,
            "unsupported_cached": len(self._compiled_cache) - compiled,
            "plans_cached": len(self._plan_cache),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        kernel: Kernel,
        num_workgroups: int,
        args: Sequence[int] = (),
    ) -> DispatchResult:
        """Run ``num_workgroups`` workgroups of ``kernel``.

        Workgroup ids are distributed round-robin across CUs; the
        dispatch's latency is the slowest CU's elapsed cycles.  When
        eligible (fast path enabled, no coverage collector, occupancy
        1) the kernel runs through its cached compiled executors; the
        result is bit-identical to the interpreter either way.
        """
        if num_workgroups < 1:
            raise KernelLaunchError("num_workgroups must be >= 1")
        plan = self._dispatch_plan(num_workgroups)
        reason = self._fallback_reason()
        compiled: Optional[CompiledKernel] = None
        if reason is None:
            compiled = self._compiled_for(kernel)
            if compiled is None:
                reason = "unsupported"

        per_cu_cycles: Dict[int, int] = {}
        instructions_before = sum(
            cu.total_instructions for cu in self.compute_units
        )
        for cu in self.compute_units:
            wg_ids = plan[cu.cu_id]
            if not wg_ids:
                per_cu_cycles[cu.cu_id] = 0
                continue
            if compiled is not None:
                per_cu_cycles[cu.cu_id] = compiled.run_workgroups(
                    cu, wg_ids, num_workgroups, args
                )
            else:
                per_cu_cycles[cu.cu_id] = cu.run_workgroups(
                    kernel, wg_ids, num_workgroups, args
                )
        instructions = (
            sum(cu.total_instructions for cu in self.compute_units)
            - instructions_before
        )
        self.dispatches += 1
        if compiled is not None:
            self._m_fast_dispatches.inc()
        else:
            self._m_interpreted.inc()
            self._m_fallback[reason].inc()
        result = DispatchResult(
            kernel=kernel.name,
            cycles=max(per_cu_cycles.values()),
            instructions=instructions,
            per_cu_cycles=per_cu_cycles,
        )
        self._m_dispatches.inc()
        self._m_cycles.inc(result.cycles)
        self._m_instructions.inc(result.instructions)
        return result
