"""The four-step trimming flow of Section III (Fig. 4).

1. Run dynamic simulations of the target ML models with coverage on.
2. Merge the per-run coverage results (the ICCR step).
3. Identify uncovered points — circuits not required by the models —
   and trim them (here: build an engine whose decoder rejects trimmed
   opcodes, and account the removed area).
4. Verify the trimmed engine computes identical results to the
   original.

A *run* is ``(label, fn)`` where ``fn(gpu) -> np.ndarray`` exercises a
model end-to-end on the given GPU and returns its numeric output; the
same function is replayed on the trimmed engine during verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import IllegalInstructionError, TrimmingError
from repro.miaow.compute_unit import GpuTimings
from repro.miaow.coverage import CoverageCollector, CoverageReport
from repro.miaow.gpu import Gpu
from repro.synthesis.area_model import CuAreaModel
from repro.synthesis.library import AreaVector

Run = Tuple[str, Callable[[Gpu], np.ndarray]]


@dataclass
class TrimResult:
    """Outcome of the trimming flow (the Table II quantities)."""

    report: CoverageReport
    allowed_ops: Set[str]
    full_area: AreaVector
    trimmed_area: AreaVector
    instruction_trimmed_area: AreaVector
    verified: bool = False

    @staticmethod
    def _reduction(full: float, trimmed: float) -> float:
        return (1.0 - trimmed / full) * 100.0

    @property
    def reduction_pct(self) -> float:
        """Area reduction of ML-MIAOW vs MIAOW (LUT+FF, as Table II)."""
        return self._reduction(
            self.full_area.lut_ff_sum, self.trimmed_area.lut_ff_sum
        )

    @property
    def instruction_reduction_pct(self) -> float:
        """Area reduction of the MIAOW2.0-style trim."""
        return self._reduction(
            self.full_area.lut_ff_sum,
            self.instruction_trimmed_area.lut_ff_sum,
        )

    @property
    def perf_per_area_vs_full(self) -> float:
        """Same-performance area ratio vs the original MIAOW."""
        return self.full_area.lut_ff_sum / self.trimmed_area.lut_ff_sum

    @property
    def perf_per_area_vs_instruction(self) -> float:
        """Same-performance area ratio vs the MIAOW2.0 trim."""
        return (
            self.instruction_trimmed_area.lut_ff_sum
            / self.trimmed_area.lut_ff_sum
        )


class TrimmingFlow:
    """Coverage-merge trimming of MIAOW into ML-MIAOW."""

    def __init__(
        self,
        timings: Optional[GpuTimings] = None,
        lds_bytes: int = 64 * 1024,
    ) -> None:
        self.timings = timings or GpuTimings()
        self.lds_bytes = lds_bytes

    # -- step 1 ----------------------------------------------------------

    def simulate(self, runs: Sequence[Run]) -> List[CoverageCollector]:
        """Dynamic simulation of each model with coverage enabled."""
        collectors: List[CoverageCollector] = []
        for label, fn in runs:
            collector = CoverageCollector(label=label)
            gpu = Gpu(
                num_cus=1,
                timings=self.timings,
                lds_bytes=self.lds_bytes,
                coverage=collector,
            )
            fn(gpu)
            collectors.append(collector)
        return collectors

    # -- step 2 ----------------------------------------------------------

    @staticmethod
    def merge(collectors: Sequence[CoverageCollector]) -> CoverageReport:
        return CoverageReport.merge(collectors)

    # -- step 3 ----------------------------------------------------------

    def trim(
        self,
        report: CoverageReport,
        single_model_report: Optional[CoverageReport] = None,
    ) -> TrimResult:
        """Remove uncovered logic; account areas.

        The area model is calibrated against the *reference* coverage
        (the published ML-MIAOW's deployed models); the flow's actual
        coverage is then priced under those fixed scales, so trimming
        a different kernel mix yields an honestly different area
        rather than re-deriving the published total.

        ``single_model_report`` is the coverage of the one model used
        for the MIAOW2.0 comparison (the paper deploys the LSTM there);
        it defaults to the merged report.
        """
        single = single_model_report or report
        model = CuAreaModel()  # calibrated on REFERENCE_COVERAGE
        return TrimResult(
            report=report,
            allowed_ops=set(report.covered_opcodes),
            full_area=model.full_area(),
            trimmed_area=model.coverage_trimmed_area(report.covered),
            instruction_trimmed_area=model.instruction_trimmed_area(
                set(single.covered)
            ),
        )

    # -- step 4 ----------------------------------------------------------

    def build_trimmed_gpu(
        self,
        result: TrimResult,
        num_cus: int = 5,
        max_resident: int = 1,
        name: str = "ML-MIAOW",
    ) -> Gpu:
        """Instantiate the trimmed engine (decoder rejects trimmed ops)."""
        return Gpu(
            num_cus=num_cus,
            timings=self.timings,
            lds_bytes=self.lds_bytes,
            max_resident=max_resident,
            allowed_ops=result.allowed_ops,
            name=name,
        )

    def verify(self, result: TrimResult, runs: Sequence[Run]) -> TrimResult:
        """Replay every run on original and trimmed engines; compare."""
        for label, fn in runs:
            original = Gpu(
                num_cus=1, timings=self.timings, lds_bytes=self.lds_bytes
            )
            reference = fn(original)
            trimmed = self.build_trimmed_gpu(result, num_cus=1)
            try:
                candidate = fn(trimmed)
            except IllegalInstructionError as error:
                raise TrimmingError(
                    f"run {label!r} hit trimmed logic: {error}"
                ) from error
            if not np.allclose(
                np.asarray(reference), np.asarray(candidate),
                rtol=1e-6, atol=1e-6, equal_nan=True,
            ):
                raise TrimmingError(
                    f"run {label!r}: trimmed engine diverged from MIAOW"
                )
        result.verified = True
        return result

    # -- all steps --------------------------------------------------------

    def run(
        self,
        runs: Sequence[Run],
        single_model_runs: Optional[Sequence[Run]] = None,
    ) -> TrimResult:
        """Execute the full simulate -> merge -> trim -> verify flow."""
        collectors = self.simulate(runs)
        report = self.merge(collectors)
        single_report = None
        if single_model_runs is not None:
            single_report = self.merge(self.simulate(single_model_runs))
        result = self.trim(report, single_report)
        return self.verify(result, runs)
