"""MIAOW GPU substrate: a Southern-Islands-subset GPGPU simulator.

MIAOW is an open-source RTL GPGPU implementing a subset of AMD's
Southern Islands ISA; the paper trims it into ML-MIAOW via merged HDL
code coverage.  This subpackage is the Python stand-in: an
instruction-level functional + timing simulator whose "RTL blocks" are
instrumented coverage points, so the same four-step trimming flow
(simulate with coverage -> merge -> trim -> verify) runs against it.

Layers:

- :mod:`repro.miaow.isa` / :mod:`repro.miaow.assembler` — instruction
  set and a two-pass text assembler.
- :mod:`repro.miaow.wavefront` / :mod:`repro.miaow.alu` — 64-lane
  execution state and operation semantics.
- :mod:`repro.miaow.memory` — global memory and per-CU local memory.
- :mod:`repro.miaow.compute_unit` / :mod:`repro.miaow.gpu` — timing
  model: 1 instruction issued per CU cycle, round-robin wavefronts.
- :mod:`repro.miaow.runtime` — OpenCL-like host API.
- :mod:`repro.miaow.coverage` / :mod:`repro.miaow.trimming` — the
  trimming flow of Section III.
"""

from repro.miaow.isa import OPCODES, Instruction, OpcodeInfo, SReg, VReg, Lit, Special
from repro.miaow.assembler import assemble, Kernel
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.wavefront import Wavefront, WAVE_SIZE
from repro.miaow.compute_unit import ComputeUnit, GpuTimings
from repro.miaow.gpu import Gpu, DispatchResult
from repro.miaow.runtime import GpuRuntime, Buffer
from repro.miaow.binary import decode_kernel, encode_kernel
from repro.miaow.coverage import CoverageCollector, CoverageReport
from repro.miaow.trimming import TrimmingFlow, TrimResult

__all__ = [
    "OPCODES",
    "Instruction",
    "OpcodeInfo",
    "SReg",
    "VReg",
    "Lit",
    "Special",
    "assemble",
    "Kernel",
    "GlobalMemory",
    "LocalMemory",
    "Wavefront",
    "WAVE_SIZE",
    "ComputeUnit",
    "GpuTimings",
    "Gpu",
    "DispatchResult",
    "GpuRuntime",
    "Buffer",
    "CoverageCollector",
    "CoverageReport",
    "TrimmingFlow",
    "TrimResult",
    "encode_kernel",
    "decode_kernel",
]
