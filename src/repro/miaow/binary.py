"""Binary machine-code format for SI-subset kernels.

Kernels travel to the engine as data: the host runtime writes the
program image into device memory before dispatch.  This module defines
that image — a fixed 64-bit base instruction with 32-bit extension
words, mirroring Southern Islands' 32/64-bit encodings plus literal
constants:

``word0``
    ======== =====================================================
    bits     field
    ======== =====================================================
    [7:0]    opcode index (position in the sorted opcode table)
    [10:8]   operand-0 type  (see ``_OperandType``)
    [13:11]  operand-1 type
    [16:14]  operand-2 type
    [19:17]  operand-3 type
    [20]     has branch target
    [31:24]  magic (0xA6) — catches endianness/alignment mistakes
    ======== =====================================================

``word1``
    one register-payload byte per operand slot (unused for
    literal/special operands).

Extension words follow in operand order: one 32-bit word per literal
operand, then one word holding the branch-target pc when bit 20 is
set.  Labels are structural (absolute pcs); decoding synthesizes
``L<pc>`` label names, so encode -> decode -> encode is a fixed point.
"""

from __future__ import annotations

import enum
from typing import Dict, List

import numpy as np

from repro.errors import AssemblerError
from repro.miaow.assembler import Kernel
from repro.miaow.isa import (
    Instruction,
    Lit,
    OPCODES,
    Special,
    SReg,
    VReg,
)

MAGIC = 0xA6
_OPCODE_LIST = sorted(OPCODES)
_OPCODE_INDEX = {name: i for i, name in enumerate(_OPCODE_LIST)}


class _OperandType(enum.IntEnum):
    ABSENT = 0
    SREG = 1
    VREG = 2
    LITERAL = 3
    VCC = 4
    EXEC = 5
    SCC = 6


_SPECIAL_BY_NAME = {
    "vcc": _OperandType.VCC,
    "exec": _OperandType.EXEC,
    "scc": _OperandType.SCC,
}
_NAME_BY_SPECIAL = {v: k for k, v in _SPECIAL_BY_NAME.items()}


def encode_instruction(
    inst: Instruction, labels: Dict[str, int]
) -> List[int]:
    """Encode one instruction to its word sequence."""
    try:
        opcode_index = _OPCODE_INDEX[inst.op]
    except KeyError:
        raise AssemblerError(f"cannot encode unknown opcode {inst.op!r}")
    if len(inst.operands) > 4:
        raise AssemblerError(f"{inst.op}: more than 4 operands")

    types = [_OperandType.ABSENT] * 4
    payloads = [0] * 4
    literals: List[int] = []
    for index, operand in enumerate(inst.operands):
        if isinstance(operand, SReg):
            types[index] = _OperandType.SREG
            payloads[index] = operand.index
        elif isinstance(operand, VReg):
            types[index] = _OperandType.VREG
            payloads[index] = operand.index
        elif isinstance(operand, Lit):
            types[index] = _OperandType.LITERAL
            literals.append(operand.bits)
        elif isinstance(operand, Special):
            types[index] = _SPECIAL_BY_NAME[operand.name]
        else:
            raise AssemblerError(f"cannot encode operand {operand!r}")

    word0 = (
        opcode_index
        | (int(types[0]) << 8)
        | (int(types[1]) << 11)
        | (int(types[2]) << 14)
        | (int(types[3]) << 17)
        | ((1 if inst.target is not None else 0) << 20)
        | (MAGIC << 24)
    )
    word1 = (
        payloads[0]
        | (payloads[1] << 8)
        | (payloads[2] << 16)
        | (payloads[3] << 24)
    )
    words = [word0, word1, *literals]
    if inst.target is not None:
        try:
            words.append(labels[inst.target])
        except KeyError:
            raise AssemblerError(
                f"unresolved branch target {inst.target!r}"
            ) from None
    return words


def encode_kernel(kernel: Kernel) -> np.ndarray:
    """Lower an assembled kernel to its binary image (uint32 array).

    Layout: [instruction_count, vgprs_used, <instruction words>...].
    """
    words: List[int] = [len(kernel.instructions), kernel.vgprs_used]
    for inst in kernel.instructions:
        words.extend(encode_instruction(inst, kernel.labels))
    return np.array(words, dtype=np.uint32)


def decode_kernel(image: np.ndarray, name: str = "binary") -> Kernel:
    """Recover a Kernel from its binary image."""
    words = [int(w) for w in np.asarray(image, dtype=np.uint32)]
    if len(words) < 2:
        raise AssemblerError("binary image too short")
    count, vgprs_used = words[0], words[1]
    cursor = 2
    instructions: List[Instruction] = []
    branch_targets: Dict[int, int] = {}  # instruction index -> pc

    for pc in range(count):
        if cursor + 2 > len(words):
            raise AssemblerError(f"truncated image at instruction {pc}")
        word0, word1 = words[cursor], words[cursor + 1]
        cursor += 2
        if (word0 >> 24) & 0xFF != MAGIC:
            raise AssemblerError(
                f"bad instruction magic at pc {pc}: {word0:#010x}"
            )
        opcode_index = word0 & 0xFF
        if opcode_index >= len(_OPCODE_LIST):
            raise AssemblerError(f"unknown opcode index {opcode_index}")
        op = _OPCODE_LIST[opcode_index]
        types = [
            _OperandType((word0 >> shift) & 0x7)
            for shift in (8, 11, 14, 17)
        ]
        payloads = [
            word1 & 0xFF, (word1 >> 8) & 0xFF,
            (word1 >> 16) & 0xFF, (word1 >> 24) & 0xFF,
        ]
        operands = []
        for index, op_type in enumerate(types):
            if op_type is _OperandType.ABSENT:
                continue
            if op_type is _OperandType.SREG:
                operands.append(SReg(payloads[index]))
            elif op_type is _OperandType.VREG:
                operands.append(VReg(payloads[index]))
            elif op_type is _OperandType.LITERAL:
                if cursor >= len(words):
                    raise AssemblerError(
                        f"missing literal word at pc {pc}"
                    )
                operands.append(Lit(words[cursor]))
                cursor += 1
            else:
                operands.append(Special(_NAME_BY_SPECIAL[op_type]))
        target = None
        if (word0 >> 20) & 1:
            if cursor >= len(words):
                raise AssemblerError(f"missing branch word at pc {pc}")
            branch_targets[pc] = words[cursor]
            target = f"L{words[cursor]}"
            cursor += 1
        instructions.append(
            Instruction(op=op, operands=tuple(operands), target=target)
        )
    if cursor != len(words):
        raise AssemblerError(
            f"{len(words) - cursor} trailing words after the image"
        )

    labels = {
        f"L{pc}": pc for pc in sorted(set(branch_targets.values()))
    }
    for pc in labels.values():
        if pc > len(instructions):
            raise AssemblerError(f"branch target {pc} out of range")
    return Kernel(
        name=name,
        instructions=instructions,
        labels=labels,
        vgprs_used=vgprs_used,
    )


def image_bytes(kernel: Kernel) -> int:
    """Size of the kernel's binary image in bytes."""
    return int(encode_kernel(kernel).size * 4)
