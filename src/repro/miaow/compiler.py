"""Trace compiler: whole-kernel fusion for the SI-subset interpreter.

The interpreter in :mod:`repro.miaow.compute_unit` issues one
instruction per call through :func:`repro.miaow.alu.execute` — operand
decode, handler lookup and timing bookkeeping all happen per op.  For
the MCM hot path (thousands of inferences over the same few kernels)
that per-instruction Python overhead dominates end-to-end throughput.

This module lowers a :class:`Kernel` once into a *single generated
Python function* over the whole-wavefront lane arrays.  Basic blocks
become arms of a label-dispatch loop, with every operand pre-resolved
at compile time (register indices baked into the code, literals folded
into constants).  Architectural registers live in Python locals:

- VGPRs are locals ``V<i>`` holding uint32 lane arrays; registers read
  in the float domain keep a paired ``V<i>F`` float32 view.  Writes
  *rebind* the local instead of copying into a register file — legal
  because on the fast path no register state is observable once the
  dispatch returns (only memory, counters, cycles and exceptions are).
- SGPRs are plain-int locals ``S<i>``; SCC is a bool local, EXEC and
  VCC are lane-mask locals.  Nothing is ever mutated in place, so
  aliased bindings (``v_mov``) are value-safe.

Data-dependent control flow — divergence via EXEC masks,
``ds_swizzle`` butterflies, conditional branches — still executes
block by block inside the dispatch loop, so any kernel the compiler
accepts behaves exactly like the interpreter.

Exactness contract (enforced by ``tests/test_miaow_compiler.py``):

- every architectural effect observable after a dispatch (LDS and
  global-memory contents, counters) is bit-identical to the
  interpreter, statement for statement mirroring
  :mod:`repro.miaow.alu`;
- per-block cycle costs are precomputed from :class:`GpuTimings` using
  the same ``max(issue, cost)`` recurrence the scheduler loop follows
  at occupancy 1, so ``DispatchResult.cycles`` / ``per_cu_cycles`` /
  instruction counts match exactly;
- runtime faults (illegal trimmed opcodes, memory faults, scalar
  operand misuse) raise the same exception types with the same
  messages, with instruction counters advanced only past the
  instructions that fully executed (the completed-block count is
  recovered from the generated frame's locals, the partial block from
  the faulting line number).

Anything the compiler cannot prove it can mirror raises
:class:`CompileUnsupported` and the :class:`~repro.miaow.gpu.Gpu`
falls back to the interpreter for that kernel.  Multi-wavefront
occupancy (``max_resident > 1``) interleaves instructions from
different wavefronts, which fusion cannot reproduce — the Gpu only
routes dispatches here at occupancy 1 (the FPGA/MCM regime).

One known granularity difference: the ``MAX_INSTRUCTIONS_PER_WAVE``
runaway guard is checked per *block* rather than per instruction, so a
runaway kernel still raises the same :class:`GpuError` but may execute
up to one block (bounded by the loop body length) more than the
interpreter before doing so.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GpuError, IllegalInstructionError, KernelLaunchError
from repro.miaow.alu import _mask_to_words, _words_to_mask
from repro.miaow.assembler import Kernel
from repro.miaow.compute_unit import MAX_INSTRUCTIONS_PER_WAVE, GpuTimings
from repro.miaow.isa import (
    Instruction,
    Lit,
    NUM_SGPRS,
    Special,
    SReg,
    VReg,
    WAVE_SIZE,
    opcode_info,
)

__all__ = [
    "BatchCompiledKernel",
    "BatchDivergence",
    "CompileUnsupported",
    "CompiledKernel",
    "compile_kernel",
    "compile_kernel_batched",
]


class CompileUnsupported(Exception):
    """The kernel contains a shape this compiler cannot mirror exactly.

    Deliberately *not* a :class:`GpuError`: this is a private signal to
    the dispatcher to use the interpreter, never a user-visible fault.
    """


class BatchDivergence(Exception):
    """Runtime signal from a *batched* executor: the fused members
    disagree on a control-flow decision (per-tenant VCC/EXEC branch).

    Never user-visible: the dispatcher catches it (like any other
    batched-run exception), rolls the memory journal back and replays
    the members serially through the exact single-dispatch path.
    """


class _RuntimeRaise(Exception):
    """Codegen signal: the instruction always faults at runtime.

    ``expr`` is the raise expression that reproduces the interpreter's
    exception exactly (type and message).
    """

    def __init__(self, expr: str) -> None:
        super().__init__(expr)
        self.expr = expr


# Block terminator kinds.
_FALL, _JUMP, _COND, _END = 0, 1, 2, 3

_COND_EXPR = {
    "s_cbranch_scc0": "not SCC",
    "s_cbranch_scc1": "SCC",
    "s_cbranch_vccz": "not VC.any()",
    "s_cbranch_vccnz": "bool(VC.any())",
    "s_cbranch_execz": "not EX.any()",
}

#: Batched variants: mask branches must agree across every fused member
#: (``_uany`` raises :class:`BatchDivergence` otherwise).  SCC branches
#: need no helper — a varying SCC is a (K,) bool array, and ``not`` /
#: ``if`` on it raises, which the dispatcher turns into a serial replay.
_BATCH_COND_EXPR = {
    "s_cbranch_scc0": "not SCC",
    "s_cbranch_scc1": "SCC",
    "s_cbranch_vccz": "not _uany(VC)",
    "s_cbranch_vccnz": "_uany(VC)",
    "s_cbranch_execz": "not _uany(EX)",
}

_NO_EFFECT_OPS = {"s_nop", "s_barrier", "s_waitcnt", "s_endpgm", "s_branch"}


# ---------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# ---------------------------------------------------------------------------

def _full(value: int) -> np.ndarray:
    """Broadcast one 32-bit value to a lane array (read_vector twin)."""
    return np.full(WAVE_SIZE, np.uint32(value), dtype=np.uint32)


_PACK_I = struct.Struct("<I").pack
_UNPACK_F = struct.Struct("<f").unpack


def _f32a(bits: int) -> np.ndarray:
    """Raw bits broadcast to a float32 lane array (read_vector twin).

    NaN operands must enter numpy arithmetic exactly as the interpreter
    presents them — a full 64-lane array — because numpy's NaN payload
    propagation differs between scalar and array operands (e.g. with a
    qNaN *scalar* second operand the scalar's payload wins, while the
    array/array form keeps the first operand's payload).
    """
    return np.full(WAVE_SIZE, np.uint32(bits), dtype=np.uint32).view(
        np.float32
    )


def _f32b(bits: int):
    """Raw bits as a python float carrying an exact float32 value.

    Fast scalar form for *array-mixed* arithmetic only: NEP 50 casts a
    weak python-float operand to the array's float32 exactly (the value
    is exactly representable by construction), so ``arr + _f32b(s)``
    matches ``arr + _f32s(s)`` bit for bit while skipping the numpy
    scalar-wrapper cost.  NaN encodings are the exception — a python
    float cannot carry the 32-bit payload, and no scalar operand
    (python *or* numpy) reproduces the interpreter's array/array NaN
    payload rules — so NaNs fall back to the broadcast lane array.
    Never use this where a python-float/python-float operation could
    happen (double rounding); those sites take :func:`_f32s`.
    """
    value = _UNPACK_F(_PACK_I(bits))[0]
    if value != value:
        return _f32a(bits)
    return value


def _f32s(bits: int):
    """Raw bits as a numpy float32 scalar (strict ``_f32`` twin).

    Bit-exact: non-NaN bits become an exact ``np.float32``
    (``np.float32(pyfloat)`` would quieten a signaling NaN through the
    double round trip); NaN bits take the broadcast array form because
    scalar operands break the interpreter's NaN payload propagation
    (see :func:`_f32a`).
    """
    if bits & 0x7FFFFFFF > 0x7F800000:  # any-sign NaN encoding
        return _f32a(bits)
    return np.frombuffer(_PACK_I(bits), dtype=np.float32)[0]


def _fbits(value) -> int:
    """Float32 bit pattern of a scalar result (``_to_bits`` twin)."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def _i32(value: int) -> int:
    """Signed interpretation of 32 raw bits (``int(np.int32(...))``)."""
    return value - 0x100000000 if value & 0x80000000 else value


def _pack32(mask: np.ndarray) -> int:
    """Low 32 mask lanes as one word (read_scalar vcc/exec quirk)."""
    return int(np.packbits(mask[:32][::-1]).view(">u4")[0])


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


#: Shared immutable entry-state arrays.  Generated code only ever
#: *rebinds* register locals (never writes in place), so every fresh
#: wavefront can alias these without copying.
_TRUE64 = _readonly(np.ones(WAVE_SIZE, dtype=bool))
_FALSE64 = _readonly(np.zeros(WAVE_SIZE, dtype=bool))
_Z64 = _readonly(np.zeros(WAVE_SIZE, dtype=np.uint32))
_Z64F = _Z64.view(np.float32)
_LANE_IDS = _readonly(np.arange(WAVE_SIZE, dtype=np.uint32))

#: Globals shared by every generated module.
_BASE_GLOBALS = {
    "_np": np,
    "_U32": np.uint32,
    "_U64": np.uint64,
    "_I32": np.int32,
    "_I64": np.int64,
    "_F32": np.float32,
    "_F64": np.float64,
    "_full": _full,
    "_f32a": _f32a,
    "_f32b": _f32b,
    "_f32s": _f32s,
    "_fbits": _fbits,
    "_i32": _i32,
    "_pack32": _pack32,
    "_mw": _mask_to_words,
    "_wm": _words_to_mask,
    "_LANES": np.arange(WAVE_SIZE),
    "_TRUE64": _TRUE64,
    "_FALSE64": _FALSE64,
    "_Z64": _Z64,
    "_Z64F": _Z64F,
    "_LANE_IDS": _LANE_IDS,
    "GpuError": GpuError,
    "IllegalInstructionError": IllegalInstructionError,
}


# ---------------------------------------------------------------------------
# Batched runtime helpers
# ---------------------------------------------------------------------------
#
# A batched executor runs K fused members over one stacked lane array of
# K * WAVE_SIZE lanes (member m owns the contiguous block
# [m * WAVE_SIZE, (m + 1) * WAVE_SIZE)).  The vector domain is therefore
# the same code the single path emits, just over longer arrays; the
# scalar domain is *mixed*: kernel arguments every member agrees on stay
# plain python ints (and fold through the scalar templates unchanged),
# while per-member arguments are (K,) int64 arrays.  Any scalar
# expression a varying value flows into simply becomes a (K,) array —
# and the moment such a value reaches a vector operand it is expanded to
# the stacked lane array by the ``_vx*`` helpers below, mirroring the
# interpreter's scalar broadcast member by member.

_BATCH_GLOBALS_CACHE: Dict[int, dict] = {}


def _batched_globals(batch: int) -> dict:
    cached = _BATCH_GLOBALS_CACHE.get(batch)
    if cached is not None:
        return cached
    lanes = WAVE_SIZE * batch

    def full(value) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return np.repeat(value.astype(np.uint32), WAVE_SIZE)
        return np.full(lanes, np.uint32(value), dtype=np.uint32)

    def vxf(value) -> np.ndarray:
        return full(value).view(np.float32)

    def vxi(value) -> np.ndarray:
        return full(value).view(np.int32)

    def f32a(bits) -> np.ndarray:
        return full(bits).view(np.float32)

    def f32b(bits):
        if isinstance(bits, np.ndarray):
            return vxf(bits)
        value = _UNPACK_F(_PACK_I(bits))[0]
        if value != value:
            return f32a(bits)
        return value

    def f32s(bits):
        if isinstance(bits, np.ndarray):
            return vxf(bits)
        if bits & 0x7FFFFFFF > 0x7F800000:
            return f32a(bits)
        return np.frombuffer(_PACK_I(bits), dtype=np.float32)[0]

    def i32(value):
        if isinstance(value, np.ndarray):
            signed = value.astype(np.int64)
            return signed - ((signed & 0x80000000) << 1)
        return value - 0x100000000 if value & 0x80000000 else value

    def pack32(mask: np.ndarray) -> np.ndarray:
        rows = mask.reshape(batch, WAVE_SIZE)[:, :32][:, ::-1]
        return (
            np.packbits(rows, axis=1).view(">u4").astype(np.int64).reshape(batch)
        )

    def uany(mask: np.ndarray) -> bool:
        per_member = mask.reshape(batch, WAVE_SIZE).any(axis=1)
        first = bool(per_member[0])
        agree = per_member.all() if first else not per_member.any()
        if not agree:
            raise BatchDivergence("fused members diverge on a mask branch")
        return first

    def sld(gm, address):
        if isinstance(address, np.ndarray):
            return gm.gather_all_u32(address).astype(np.int64)
        return gm.load_u32(address)

    namespace = dict(_BASE_GLOBALS)
    namespace.update({
        "_full": full,
        "_f32a": f32a,
        "_f32b": f32b,
        "_f32s": f32s,
        "_i32": i32,
        "_pack32": pack32,
        "_vxu": full,
        "_vxf": vxf,
        "_vxi": vxi,
        "_uany": uany,
        "_sld": sld,
        "_LANES": np.arange(lanes),
        "_TRUE64": _readonly(np.ones(lanes, dtype=bool)),
        "_FALSE64": _readonly(np.zeros(lanes, dtype=bool)),
        "_Z64": _readonly(np.zeros(lanes, dtype=np.uint32)),
        "_LANE_IDS": _readonly(
            np.tile(np.arange(WAVE_SIZE, dtype=np.uint32), batch)
        ),
    })
    namespace["_Z64F"] = namespace["_Z64"].view(np.float32)
    _BATCH_GLOBALS_CACHE[batch] = namespace
    return namespace


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

class _Gen:
    """Accumulates the generated module plus register-usage facts.

    Emission runs twice: a discovery pass collects which VGPRs are ever
    read in the float domain (``f32_seen``) and which register indices
    appear at all; the real pass reuses those sets (``f32_regs``) so
    float-paired locals are maintained consistently at every write.
    """

    def __init__(
        self, f32_regs: frozenset = frozenset(), batch: int = 0
    ) -> None:
        self.lines: List[str] = []
        self.consts: Dict[str, object] = {}
        self.indent = "    "
        self.f32_regs = f32_regs
        self.f32_seen: set = set()
        self.vregs: set = set()
        self.sregs: set = set()
        self.batch = batch
        self.total_lanes = WAVE_SIZE * batch if batch else WAVE_SIZE

    def const(self, value) -> str:
        name = f"_K{len(self.consts)}"
        self.consts[name] = value
        return name

    def f32_const(self, bits: int) -> str:
        """Constant for raw bits broadcast over every stacked lane."""
        return self.const(_readonly(
            np.full(self.total_lanes, np.uint32(bits), dtype=np.uint32)
            .view(np.float32)
        ))

    def w(self, stmt: str) -> None:
        self.lines.append(self.indent + stmt)

    def vreg(self, index: int) -> str:
        self.vregs.add(index)
        return f"V{index}"

    def sreg(self, index: int) -> str:
        self.sregs.add(index)
        return f"S{index}"

    def is_f32(self, index: int) -> bool:
        return index in self.f32_regs or index in self.f32_seen

    @property
    def next_line(self) -> int:
        return len(self.lines) + 1


# -- operand expression builders (all pure; safe to build before emit) ------

def _sexpr(g: _Gen, operand) -> str:
    """Expression for read_scalar(): raw bits as a python int."""
    if isinstance(operand, SReg):
        return g.sreg(operand.index)
    if isinstance(operand, Lit):
        return repr(operand.bits)
    if isinstance(operand, Special):
        if operand.name == "scc":
            return "int(SCC)"
        if operand.name == "vcc":
            return "_pack32(VC)"
        if operand.name == "exec":
            return "_pack32(EX)"
        raise CompileUnsupported(f"special register {operand.name}")
    if isinstance(operand, VReg):
        raise _RuntimeRaise(
            f"GpuError({f'scalar operand expected, got v{operand.index}'!r})"
        )
    raise CompileUnsupported(f"operand {operand!r}")


def _sdst(g: _Gen, operand) -> int:
    if isinstance(operand, SReg):
        g.sregs.add(operand.index)
        return operand.index
    raise CompileUnsupported(f"scalar destination {operand!r}")


def _vdst(g: _Gen, operand) -> int:
    if isinstance(operand, VReg):
        g.vregs.add(operand.index)
        return operand.index
    raise CompileUnsupported(f"vector destination {operand!r}")


def _batch_scalar(g: _Gen, operand) -> bool:
    """True when a scalar operand may vary per fused member at runtime.

    In batched mode any SGPR (or vcc/exec read-back) can carry a (K,)
    per-member array, so scalar operands in vector contexts must expand
    through the always-array ``_vx*`` helpers.  Literals stay scalar.
    """
    return bool(g.batch) and isinstance(operand, (SReg, Special))


def _v_u32(g: _Gen, operand) -> Tuple[str, bool]:
    """(expr, is_array) in the raw-uint32 domain (read_vector twin)."""
    if isinstance(operand, VReg):
        return g.vreg(operand.index), True
    if _batch_scalar(g, operand):
        return f"_vxu({_sexpr(g, operand)})", True
    return _sexpr(g, operand), False


def _v_f32(g: _Gen, operand, strict: bool = False) -> Tuple[str, bool]:
    """(expr, is_array) in the float32 domain.

    ``strict`` forces numpy-float32 scalars (see :func:`_f32b` for
    where the fast python-float form is exact).  NaN literals compile
    to broadcast lane-array constants; runtime NaN scalar values take
    the same array form inside ``_f32b``/``_f32s``.
    """
    if isinstance(operand, VReg):
        g.vreg(operand.index)
        g.f32_seen.add(operand.index)
        return f"V{operand.index}F", True
    if isinstance(operand, Lit):
        if operand.bits & 0x7FFFFFFF > 0x7F800000:
            return g.f32_const(operand.bits), True
        return g.const(_f32s(operand.bits)), False
    if _batch_scalar(g, operand):
        return f"_vxf({_sexpr(g, operand)})", True
    helper = "_f32s" if strict else "_f32b"
    return f"{helper}({_sexpr(g, operand)})", False


def _v_f32a(g: _Gen, operand) -> str:
    """Always-array expression in the float32 domain.

    Used to lift all-scalar float ops into the lane-array domain the
    interpreter computes in, so runtime NaN payload propagation (and
    array-typed results) match bit for bit.
    """
    if isinstance(operand, VReg):
        g.vreg(operand.index)
        g.f32_seen.add(operand.index)
        return f"V{operand.index}F"
    if isinstance(operand, Lit):
        return g.f32_const(operand.bits)
    if _batch_scalar(g, operand):
        return f"_vxf({_sexpr(g, operand)})"
    return f"_f32a({_sexpr(g, operand)})"


def _v_i32(g: _Gen, operand) -> Tuple[str, bool]:
    """(expr, is_array) in the signed-int32 domain (.view(_I32))."""
    if isinstance(operand, VReg):
        return f"{g.vreg(operand.index)}.view(_I32)", True
    if isinstance(operand, Lit):
        return repr(_i32(operand.bits)), False
    if _batch_scalar(g, operand):
        return f"_vxi({_sexpr(g, operand)})", True
    return f"_i32({_sexpr(g, operand)})", False


def _v_i64u(g: _Gen, operand) -> Tuple[str, bool]:
    """(expr, is_array): unsigned values widened to int64 (vint ops)."""
    if isinstance(operand, VReg):
        return f"{g.vreg(operand.index)}.astype(_I64)", True
    if _batch_scalar(g, operand):
        return f"_vxu({_sexpr(g, operand)}).astype(_I64)", True
    return _sexpr(g, operand), False


def _v_u32w(g: _Gen, operand) -> Tuple[str, bool]:
    """(expr, is_array) in the wrap-native uint32 domain.

    For +, -, *, &, |, ^ and bounded shifts, uint32 arithmetic wraps
    modulo 2**32 — bit-identical to the interpreter's widen-to-int64
    then ``& 0xFFFFFFFF`` dance, with a quarter of the array traffic.
    """
    if isinstance(operand, VReg):
        return g.vreg(operand.index), True
    if isinstance(operand, Lit):
        return g.const(np.uint32(operand.bits)), False
    if _batch_scalar(g, operand):
        return f"_vxu({_sexpr(g, operand)})", True
    return f"_U32({_sexpr(g, operand)})", False


def _v_i64s(g: _Gen, operand) -> Tuple[str, bool]:
    """(expr, is_array): signed int32 values widened to int64."""
    if isinstance(operand, VReg):
        return f"{g.vreg(operand.index)}.view(_I32).astype(_I64)", True
    if isinstance(operand, Lit):
        return repr(_i32(operand.bits)), False
    if _batch_scalar(g, operand):
        return f"_vxi({_sexpr(g, operand)}).astype(_I64)", True
    return f"_i32({_sexpr(g, operand)})", False


def _v_addr(g: _Gen, operand) -> str:
    """Lane-address array for memory ops (scalars broadcast, as the
    interpreter's read_vector does before gather/scatter)."""
    expr, is_array = _v_u32(g, operand)
    return expr if is_array else f"_full({expr})"


# -- write helpers ----------------------------------------------------------

def _pair(g: _Gen, dst: int) -> None:
    """Refresh the float32 twin after a uint32 rebind (if paired)."""
    if g.is_f32(dst):
        g.w(f"V{dst}F = V{dst}.view(_F32)")


def _write_u32(g: _Gen, dst: int, expr: str, is_array: bool) -> None:
    """EXEC-masked VGPR write of a uint32 result (rebind, no copy)."""
    g.w("if _ef:")
    if is_array:
        g.w(f"    V{dst} = {expr}")
    else:
        g.w(f"    V{dst} = _full({expr})")
    g.w("else:")
    g.w(f"    V{dst} = _np.where(EX, {expr}, V{dst})")
    _pair(g, dst)


def _write_f32(g: _Gen, dst: int, expr: str, is_array: bool) -> None:
    """EXEC-masked VGPR write of a float32 result (stored as bits)."""
    if is_array:
        g.f32_seen.add(dst)
        g.w("if _ef:")
        g.w(f"    V{dst}F = {expr}")
        g.w(f"    V{dst} = V{dst}F.view(_U32)")
        g.w("else:")
        g.w(f"    V{dst} = _np.where(EX, ({expr}).view(_U32), V{dst})")
        g.w(f"    V{dst}F = V{dst}.view(_F32)")
    else:
        _write_u32(g, dst, f"_fbits({expr})", False)


# -- per-opcode emitters ----------------------------------------------------

_Emitter = Callable[[_Gen, Instruction], None]
_EMIT: Dict[str, _Emitter] = {}


def _emit(name: str) -> Callable[[_Emitter], _Emitter]:
    def register(fn: _Emitter) -> _Emitter:
        _EMIT[name] = fn
        return fn
    return register


@_emit("s_mov_b32")
def _e_s_mov(g, inst):
    dst = _sdst(g, inst.operands[0])
    g.w(f"S{dst} = {_sexpr(g, inst.operands[1])}")


def _salu_binop(template: str) -> _Emitter:
    def run(g, inst):
        dst = _sdst(g, inst.operands[0])
        a = _sexpr(g, inst.operands[1])
        b = _sexpr(g, inst.operands[2])
        g.w(f"S{dst} = " + template.format(a=a, b=b))
    return run


# Results are already in [0, 2**32) so the set_sgpr re-mask is a no-op.
_EMIT["s_add_i32"] = _salu_binop("(({a}) + ({b})) & 0xFFFFFFFF")
_EMIT["s_sub_i32"] = _salu_binop("(({a}) - ({b})) & 0xFFFFFFFF")
_EMIT["s_mul_i32"] = _salu_binop("(({a}) * ({b})) & 0xFFFFFFFF")
_EMIT["s_and_b32"] = _salu_binop("({a}) & ({b})")
_EMIT["s_or_b32"] = _salu_binop("({a}) | ({b})")
_EMIT["s_xor_b32"] = _salu_binop("({a}) ^ ({b})")
_EMIT["s_lshl_b32"] = _salu_binop("(({a}) << (({b}) & 31)) & 0xFFFFFFFF")
_EMIT["s_lshr_b32"] = _salu_binop("(({a}) & 0xFFFFFFFF) >> (({b}) & 31)")
_EMIT["s_ashr_i32"] = _salu_binop(
    "(_i32({a}) >> (({b}) & 31)) & 0xFFFFFFFF"
)
_EMIT["s_min_i32"] = _salu_binop("min(_i32({a}), _i32({b})) & 0xFFFFFFFF")
_EMIT["s_max_i32"] = _salu_binop("max(_i32({a}), _i32({b})) & 0xFFFFFFFF")


@_emit("s_not_b32")
def _e_s_not(g, inst):
    dst = _sdst(g, inst.operands[0])
    g.w(f"S{dst} = (~({_sexpr(g, inst.operands[1])})) & 0xFFFFFFFF")


@_emit("s_bcnt1_i32_b32")
def _e_s_bcnt1(g, inst):
    dst = _sdst(g, inst.operands[0])
    a = _sexpr(g, inst.operands[1])
    g.w(f"S{dst} = bin(({a}) & 0xFFFFFFFF).count(\"1\")")


@_emit("s_ff1_i32_b32")
def _e_s_ff1(g, inst):
    dst = _sdst(g, inst.operands[0])
    g.w(f"_a = {_sexpr(g, inst.operands[1])}")
    g.w(
        f"S{dst} = ((_a & -_a).bit_length() - 1) if _a else 0xFFFFFFFF"
    )


def _scmp(py_op: str) -> _Emitter:
    def run(g, inst):
        a = _sexpr(g, inst.operands[0])
        b = _sexpr(g, inst.operands[1])
        g.w(f"SCC = _i32({a}) {py_op} _i32({b})")
    return run


for _name, _py in (
    ("eq", "=="), ("lg", "!="), ("lt", "<"),
    ("le", "<="), ("gt", ">"), ("ge", ">="),
):
    _EMIT[f"s_cmp_{_name}_i32"] = _scmp(_py)


@_emit("s_load_dword")
def _e_s_load(g, inst):
    dst = _sdst(g, inst.operands[0])
    base = _sexpr(g, inst.operands[1])
    offset = _sexpr(g, inst.operands[2])
    if g.batch:
        # the address may be a (K,) per-member array: _sld gathers one
        # word per member (and keeps the plain-int path for uniforms)
        g.w(f"S{dst} = _sld(GM, ({base}) + ({offset}))")
    else:
        g.w(f"S{dst} = GM.load_u32(({base}) + ({offset}))")


@_emit("v_mov_b32")
def _e_v_mov(g, inst):
    dst = _vdst(g, inst.operands[0])
    expr, is_array = _v_u32(g, inst.operands[1])
    _write_u32(g, dst, expr, is_array)


def _vfp_binop(template: str, strict: bool = False) -> _Emitter:
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        a, a_arr = _v_f32(g, inst.operands[1], strict=strict)
        b, b_arr = _v_f32(g, inst.operands[2], strict=strict)
        if not (a_arr or b_arr):
            # all-scalar: lift into the lane-array domain the
            # interpreter computes in (broadcast, like read_vector), so
            # runtime NaN payloads and result typing match exactly
            a = _v_f32a(g, inst.operands[1])
            b, _ = _v_f32(g, inst.operands[2], strict=True)
        _write_f32(g, dst, template.format(a=a, b=b), True)
    return run


_EMIT["v_add_f32"] = _vfp_binop("({a}) + ({b})")
_EMIT["v_sub_f32"] = _vfp_binop("({a}) - ({b})")
_EMIT["v_mul_f32"] = _vfp_binop("({a}) * ({b})")
# maximum/minimum *copy* a NaN operand rather than produce one, so a
# python-float scalar (quietened at the C float->double conversion)
# could leak a different NaN payload: keep numpy scalars here.
_EMIT["v_max_f32"] = _vfp_binop("_np.maximum({a}, {b})", strict=True)
_EMIT["v_min_f32"] = _vfp_binop("_np.minimum({a}, {b})", strict=True)


@_emit("v_mac_f32")
def _e_v_mac(g, inst):
    dst = _vdst(g, inst.operands[0])
    a, a_arr = _v_f32(g, inst.operands[1])
    b, b_arr = _v_f32(g, inst.operands[2])
    if not (a_arr or b_arr):
        a, _ = _v_f32(g, inst.operands[1], strict=True)
        b, _ = _v_f32(g, inst.operands[2], strict=True)
    g.f32_seen.add(dst)
    # acc + a*b: the accumulator read makes the result always an array.
    _write_f32(g, dst, f"V{dst}F + ({a}) * ({b})", True)


@_emit("v_fma_f32")
def _e_v_fma(g, inst):
    dst = _vdst(g, inst.operands[0])
    a, a_arr = _v_f32(g, inst.operands[1])
    b, b_arr = _v_f32(g, inst.operands[2])
    c, c_arr = _v_f32(g, inst.operands[3])
    if not (a_arr or b_arr):
        # a*b would combine two python floats before numpy sees them
        a, _ = _v_f32(g, inst.operands[1], strict=True)
        b, _ = _v_f32(g, inst.operands[2], strict=True)
        if not c_arr:
            # all-scalar: lift into the array domain (see _vfp_binop)
            a = _v_f32a(g, inst.operands[1])
            c, _ = _v_f32(g, inst.operands[3], strict=True)
    _write_f32(g, dst, f"({a}) * ({b}) + ({c})", True)


def _vint_binop(template: str) -> _Emitter:
    """uint32 -> int64 binop, result masked back to uint32."""
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        a, a_arr = _v_i64u(g, inst.operands[1])
        b, b_arr = _v_i64u(g, inst.operands[2])
        expr = template.format(a=a, b=b)
        if a_arr or b_arr:
            _write_u32(
                g, dst, f"(({expr}) & 0xFFFFFFFF).astype(_U32)", True
            )
        else:
            _write_u32(g, dst, f"({expr}) & 0xFFFFFFFF", False)
    return run


def _vint_wrap_binop(template: str) -> _Emitter:
    """Wrap-exact binop computed natively in uint32 (no widening)."""
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        a, a_arr = _v_u32w(g, inst.operands[1])
        b, b_arr = _v_u32w(g, inst.operands[2])
        _write_u32(g, dst, template.format(a=a, b=b), a_arr or b_arr)
    return run


_EMIT["v_add_i32"] = _vint_wrap_binop("({a}) + ({b})")
_EMIT["v_sub_i32"] = _vint_wrap_binop("({a}) - ({b})")
_EMIT["v_mul_lo_i32"] = _vint_wrap_binop("({a}) * ({b})")
_EMIT["v_mul_hi_u32"] = _vint_binop("(({a}) * ({b})) >> 32")
_EMIT["v_and_b32"] = _vint_wrap_binop("({a}) & ({b})")
_EMIT["v_or_b32"] = _vint_wrap_binop("({a}) | ({b})")
_EMIT["v_xor_b32"] = _vint_wrap_binop("({a}) ^ ({b})")
# *rev shifts: src0 is the shift amount, src1 the value (SI convention);
# shift counts are masked to [0, 31] so uint32 shifts are well-defined
# and wrap exactly like the widened forms.
_EMIT["v_lshlrev_b32"] = _vint_wrap_binop("({b}) << (({a}) & 31)")
_EMIT["v_lshrrev_b32"] = _vint_wrap_binop("({b}) >> (({a}) & 31)")


def _vint_signed_minmax(np_fn: str, py_fn: str) -> _Emitter:
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        a, a_arr = _v_i64s(g, inst.operands[1])
        b, b_arr = _v_i64s(g, inst.operands[2])
        if a_arr or b_arr:
            _write_u32(
                g, dst,
                f"((_np.{np_fn}({a}, {b})) & 0xFFFFFFFF).astype(_U32)",
                True,
            )
        else:
            _write_u32(g, dst, f"{py_fn}({a}, {b}) & 0xFFFFFFFF", False)
    return run


_EMIT["v_min_i32"] = _vint_signed_minmax("minimum", "min")
_EMIT["v_max_i32"] = _vint_signed_minmax("maximum", "max")


@_emit("v_ashrrev_i32")
def _e_v_ashr(g, inst):
    dst = _vdst(g, inst.operands[0])
    shift, s_arr = _v_i64u(g, inst.operands[1])
    value, v_arr = _v_i64s(g, inst.operands[2])
    expr = f"(({value}) >> (({shift}) & 31)) & 0xFFFFFFFF"
    if s_arr or v_arr:
        _write_u32(g, dst, f"({expr}).astype(_U32)", True)
    else:
        _write_u32(g, dst, expr, False)


@_emit("v_cndmask_b32")
def _e_v_cndmask(g, inst):
    dst = _vdst(g, inst.operands[0])
    a, _ = _v_u32(g, inst.operands[1])
    b, _ = _v_u32(g, inst.operands[2])
    # src1 where VCC is set, src0 elsewhere; result is always an array.
    _write_u32(
        g, dst, f"_np.where(VC, {b}, {a}).astype(_U32)", True
    )


@_emit("v_bfe_u32")
def _e_v_bfe(g, inst):
    dst = _vdst(g, inst.operands[0])
    value, v_arr = _v_i64u(g, inst.operands[1])
    offset, o_arr = _v_i64u(g, inst.operands[2])
    width, w_arr = _v_i64u(g, inst.operands[3])
    g.w(f"_w = ({width}) & 31")
    one = "_np.int64(1)" if w_arr else "1"
    g.w(f"_m = ({one} << _w) - 1")
    expr = f"((({value}) >> (({offset}) & 31)) & _m)"
    if v_arr or o_arr or w_arr:
        _write_u32(g, dst, f"({expr}).astype(_U32)", True)
    else:
        _write_u32(g, dst, expr, False)


@_emit("v_bfi_b32")
def _e_v_bfi(g, inst):
    dst = _vdst(g, inst.operands[0])
    select, s_arr = _v_i64u(g, inst.operands[1])
    insert, i_arr = _v_i64u(g, inst.operands[2])
    base, b_arr = _v_i64u(g, inst.operands[3])
    g.w(f"_s = {select}")
    expr = f"((_s & ({insert})) | (~_s & ({base}))) & 0xFFFFFFFF"
    if s_arr or i_arr or b_arr:
        _write_u32(g, dst, f"({expr}).astype(_U32)", True)
    else:
        _write_u32(g, dst, expr, False)


@_emit("v_cvt_f32_u32")
def _e_v_cvt_f32_u32(g, inst):
    dst = _vdst(g, inst.operands[0])
    expr, is_array = _v_u32(g, inst.operands[1])
    if is_array:
        _write_f32(g, dst, f"({expr}).astype(_F64).astype(_F32)", True)
    else:
        _write_f32(g, dst, f"_np.float64({expr}).astype(_F32)", False)


@_emit("v_cvt_f32_i32")
def _e_v_cvt_f32_i32(g, inst):
    dst = _vdst(g, inst.operands[0])
    expr, is_array = _v_i32(g, inst.operands[1])
    if is_array:
        _write_f32(g, dst, f"({expr}).astype(_F32)", True)
    else:
        _write_f32(g, dst, f"_np.float32({expr})", False)


def _cvt_from_f32(lo: str, hi: str, chain: str) -> _Emitter:
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        # array domain always: nan_to_num/clip on a python float would
        # run in float64, and runtime NaN scalars arrive as arrays
        value = _v_f32a(g, inst.operands[1])
        g.w(f"_c = _np.nan_to_num({value}, nan=0.0)")
        g.w(f"_c = _np.clip(_c, {lo}, {hi})")
        _write_u32(g, dst, f"_c{chain}", True)
    return run


_EMIT["v_cvt_u32_f32"] = _cvt_from_f32(
    "0.0", "4294967295.0", ".astype(_U64).astype(_U32)"
)
_EMIT["v_cvt_i32_f32"] = _cvt_from_f32(
    "-2147483648.0", "2147483647.0", ".astype(_I64).astype(_U32)"
)


def _vfp_unop(template: str) -> _Emitter:
    def run(g, inst):
        dst = _vdst(g, inst.operands[0])
        # array domain always (needs .astype, and runtime NaN scalars
        # arrive as arrays — see _f32a)
        value = _v_f32a(g, inst.operands[1])
        _write_f32(
            g, dst, template.format(v=value) + ".astype(_F32)", True
        )
    return run


_EMIT["v_trunc_f32"] = _vfp_unop("_np.trunc({v})")
_EMIT["v_floor_f32"] = _vfp_unop("_np.floor({v})")
# transcendentals compute through float64, exactly like _vtrans
_EMIT["v_exp_f32"] = _vfp_unop("_np.exp2(({v}).astype(_F64))")
_EMIT["v_log_f32"] = _vfp_unop("_np.log2(({v}).astype(_F64))")
_EMIT["v_rcp_f32"] = _vfp_unop("(1.0 / ({v}).astype(_F64))")
_EMIT["v_rsq_f32"] = _vfp_unop("(1.0 / _np.sqrt(({v}).astype(_F64)))")
_EMIT["v_sqrt_f32"] = _vfp_unop("_np.sqrt(({v}).astype(_F64))")


def _vcmp(py_op: str, domain, cmpx: bool) -> _Emitter:
    def run(g, inst):
        a, _ = domain(g, inst.operands[0])
        b, _ = domain(g, inst.operands[1])
        if not cmpx:
            g.w(f"VC = _np.where(EX, ({a}) {py_op} ({b}), False)")
            return
        g.w(f"_m = _np.where(EX, ({a}) {py_op} ({b}), False)")
        g.w("VC = _m")
        g.w("EX = EX & _m")
        g.w("_ef = bool(EX.all())")
    return run


for _name, _py in (
    ("eq", "=="), ("lt", "<"), ("gt", ">"), ("le", "<="), ("ge", ">="),
):
    _EMIT[f"v_cmp_{_name}_f32"] = _vcmp(_py, _v_f32, cmpx=False)
for _name, _py in (("eq", "=="), ("lt", "<"), ("gt", ">")):
    _EMIT[f"v_cmp_{_name}_i32"] = _vcmp(_py, _v_i32, cmpx=False)
for _name, _py in (("lt", "<"), ("gt", ">")):
    _EMIT[f"v_cmpx_{_name}_f32"] = _vcmp(_py, _v_f32, cmpx=True)
for _name, _py in (("eq", "=="), ("lt", "<"), ("ge", ">=")):
    _EMIT[f"v_cmpx_{_name}_i32"] = _vcmp(_py, _v_i32, cmpx=True)


@_emit("s_saveexec_b64")
def _e_s_saveexec(g, inst):
    if g.batch:
        raise CompileUnsupported("batch: exec-mask save/restore")
    dst = _sdst(g, inst.operands[0])
    g.sregs.add(dst + 1)
    g.w("_lo, _hi = _mw(EX)")
    g.w(f"S{dst} = _lo")
    g.w(f"S{dst + 1} = _hi")


@_emit("s_mov_exec_b64")
def _e_s_mov_exec(g, inst):
    if g.batch:
        raise CompileUnsupported("batch: exec-mask save/restore")
    src = _sdst(g, inst.operands[0])
    g.sregs.add(src + 1)
    g.w(f"EX = _wm(S{src}, S{src + 1})")
    g.w("_ef = bool(EX.all())")


@_emit("v_readfirstlane_b32")
def _e_v_readfirstlane(g, inst):
    if g.batch:
        # the first active lane of the *stacked* mask belongs to one
        # member only — a cross-member scalar leak, so decline
        raise CompileUnsupported("batch: v_readfirstlane_b32")
    dst = _sdst(g, inst.operands[0])
    src, is_array = _v_u32(g, inst.operands[1])
    if is_array:
        g.w("_a = _np.nonzero(EX)[0]")
        g.w(
            f"S{dst} = int(({src})[int(_a[0]) if _a.size else 0])"
        )
    else:
        g.w(f"S{dst} = {src}")


@_emit("ds_read_b32")
def _e_ds_read(g, inst):
    dst = _vdst(g, inst.operands[0])
    addr = _v_addr(g, inst.operands[1])
    # gather_all_u32 skips the mask reduction when every lane is
    # active (the steady state of the shipped kernels).
    _write_u32(
        g, dst,
        f"LM.gather_all_u32({addr}) if _ef else LM.gather_u32({addr}, EX)",
        True,
    )


@_emit("ds_write_b32")
def _e_ds_write(g, inst):
    if g.batch:
        # LDS is shared model state across fused members; a per-member
        # store would clobber the other members' view of it
        raise CompileUnsupported("batch: LDS store")
    addr = _v_addr(g, inst.operands[0])
    value = _v_addr(g, inst.operands[1])
    g.w("if _ef:")
    g.w(f"    LM.scatter_all_u32({addr}, {value})")
    g.w("else:")
    g.w(f"    LM.scatter_u32({addr}, {value}, EX)")


@_emit("ds_add_u32")
def _e_ds_add(g, inst):
    if g.batch:
        raise CompileUnsupported("batch: LDS atomic")
    addr = _v_addr(g, inst.operands[0])
    value = _v_addr(g, inst.operands[1])
    g.w(f"LM.atomic_add_u32({addr}, {value}, EX)")


@_emit("ds_swizzle_b32")
def _e_ds_swizzle(g, inst):
    dst = _vdst(g, inst.operands[0])
    src, is_array = _v_u32(g, inst.operands[1])
    if not is_array:
        # a broadcast source swizzles to itself
        _write_u32(g, dst, f"_full({src})", True)
        return
    xor_op = inst.operands[2]
    if isinstance(xor_op, Lit):
        # stacked-safe: the XOR pattern only touches the low 6 bits of
        # the lane index, so each 64-lane member block permutes within
        # itself — one index table covers every fused member
        lanes = g.const(
            np.arange(g.total_lanes) ^ (xor_op.bits & (WAVE_SIZE - 1))
        )
        _write_u32(g, dst, f"({src})[{lanes}]", True)
    else:
        if g.batch:
            # a varying pattern would need per-member index tables
            raise CompileUnsupported("batch: data-dependent swizzle")
        xor = _sexpr(g, xor_op)
        _write_u32(
            g, dst, f"({src})[_LANES ^ (({xor}) & {WAVE_SIZE - 1})]", True
        )


@_emit("flat_load_dword")
def _e_flat_load(g, inst):
    dst = _vdst(g, inst.operands[0])
    addr = _v_addr(g, inst.operands[1])
    _write_u32(
        g, dst,
        f"GM.gather_all_u32({addr}) if _ef else GM.gather_u32({addr}, EX)",
        True,
    )


@_emit("flat_store_dword")
def _e_flat_store(g, inst):
    addr = _v_addr(g, inst.operands[0])
    value = _v_addr(g, inst.operands[1])
    g.w("if _ef:")
    g.w(f"    GM.scatter_all_u32({addr}, {value})")
    g.w("else:")
    g.w(f"    GM.scatter_u32({addr}, {value}, EX)")


# ---------------------------------------------------------------------------
# Compiled representation
# ---------------------------------------------------------------------------

class CompiledKernel:
    """A kernel lowered to one fused executor (occupancy-1 only).

    ``run_workgroups`` mirrors the interpreter scheduler for a single
    resident wavefront: per-wavefront issue times accumulate as
    ``sum(max(issue, cost))`` per executed instruction, precomputed per
    block and folded into the generated function, which returns
    ``(instructions, ready_offset, next_now_offset)`` per wavefront.
    The dispatch's elapsed cycles and instruction counters come out
    bit-identical to :meth:`ComputeUnit.run_workgroups`.
    """

    __slots__ = (
        "kernel", "fn", "filename", "source", "num_blocks",
        "_first_lines", "_block_starts",
    )

    def __init__(
        self,
        kernel: Kernel,
        fn,
        filename: str,
        source: str,
        num_blocks: int,
        fault_blocks: List[Tuple[int, List[int]]],
    ) -> None:
        self.kernel = kernel
        self.fn = fn
        self.filename = filename
        self.source = source
        self.num_blocks = num_blocks
        self._first_lines = [line for line, _ in fault_blocks]
        self._block_starts = [starts for _, starts in fault_blocks]

    def _fault_count(self, tb) -> int:
        """Total instructions that completed before a fault.

        The generated frame's ``n`` local counts every finished block;
        the faulting line number locates the partial block and, within
        it, how many of its instructions finished.
        """
        frame = None
        lineno = 0
        while tb is not None:
            if tb.tb_frame.f_code.co_filename == self.filename:
                frame = tb.tb_frame
                lineno = tb.tb_lineno
            tb = tb.tb_next
        if frame is None:
            return 0
        count = int(frame.f_locals.get("n", 0))
        index = bisect_right(self._first_lines, lineno) - 1
        if index < 0:
            return count
        starts = self._block_starts[index]
        return count + max(0, bisect_right(starts, lineno) - 1)

    def run_workgroups(
        self,
        cu,
        workgroup_ids: Sequence[int],
        num_workgroups_total: int,
        args: Sequence[int],
    ) -> int:
        """Execute the given workgroups; returns elapsed CU cycles."""
        if len(args) > NUM_SGPRS - 2:
            raise KernelLaunchError("too many kernel arguments")
        arg_words = tuple(int(value) & 0xFFFFFFFF for value in args)
        num_args = len(arg_words)
        nwg = num_workgroups_total & 0xFFFFFFFF
        fn = self.fn
        global_memory = cu.global_memory
        local_memory = cu.local_memory
        now = 0
        cycles_end = 0
        with np.errstate(all="ignore"):
            for wg_id in workgroup_ids:
                try:
                    count, ready_off, next_off = fn(
                        global_memory, local_memory,
                        wg_id, nwg, arg_words, num_args,
                    )
                except Exception as exc:
                    cu.total_instructions += self._fault_count(
                        exc.__traceback__
                    )
                    raise
                cu.total_instructions += count
                end_ready = now + ready_off
                if end_ready > cycles_end:
                    cycles_end = end_ready
                now += next_off
        elapsed = now if now > cycles_end else cycles_end
        cu.total_cycles += elapsed
        return elapsed


# ---------------------------------------------------------------------------
# Compilation driver
# ---------------------------------------------------------------------------

def _leaders(kernel: Kernel) -> List[int]:
    instructions = kernel.instructions
    leaders = {0}
    for pc, inst in enumerate(instructions):
        if inst.op == "s_branch" or inst.op in _COND_EXPR:
            leaders.add(pc + 1)
            leaders.add(kernel.resolve(inst.target))
        elif inst.op == "s_endpgm":
            leaders.add(pc + 1)
    return sorted(pc for pc in leaders if 0 <= pc < len(instructions))


def _emit_instruction(
    g: _Gen, inst: Instruction, kernel: Kernel, allowed_ops
) -> None:
    """Emit one instruction's statements (or its static fault)."""
    if allowed_ops is not None and inst.op not in allowed_ops:
        message = (
            f"opcode {inst.op!r} was trimmed out of this engine "
            f"(kernel {kernel.name}, line {inst.line})"
        )
        g.w(f"raise IllegalInstructionError({message!r})")
        return
    if inst.op in _NO_EFFECT_OPS or inst.op in _COND_EXPR:
        return
    emitter = _EMIT.get(inst.op)
    if emitter is None:
        raise CompileUnsupported(f"opcode {inst.op!r}")
    try:
        emitter(g, inst)
    except _RuntimeRaise as fault:
        g.w(f"raise {fault.expr}")


def compile_kernel(
    kernel: Kernel,
    timings: Optional[GpuTimings] = None,
    allowed_ops=None,
    batch: int = 0,
) -> CompiledKernel:
    """Lower ``kernel`` into one fused executor function.

    ``batch=K`` (K >= 2) lowers the *batched* variant instead: the
    executor runs K members' lanes stacked into K * WAVE_SIZE element
    arrays (use :func:`compile_kernel_batched` for the wrapped form).

    Raises :class:`CompileUnsupported` for any shape this compiler
    cannot mirror exactly — the caller falls back to the interpreter.
    """
    timings = timings or GpuTimings()
    instructions = kernel.instructions
    n = len(instructions)
    if n == 0:
        raise CompileUnsupported("empty kernel")
    issue = timings.issue

    # Discovery pass: run every emitter once against a throwaway
    # generator to learn which registers are used and which VGPRs need
    # a float32-paired local (and to surface CompileUnsupported before
    # any real emission).
    scan = _Gen(batch=batch)
    for inst in instructions:
        _emit_instruction(scan, inst, kernel, allowed_ops)
    if scan.vregs and max(scan.vregs) >= kernel.vgprs_used:
        # the interpreter faults on reads past the allocation; keep
        # that (odd) behavior by declining to compile
        raise CompileUnsupported("vgpr index beyond .vgprs allocation")
    if scan.sregs and max(scan.sregs) >= NUM_SGPRS:
        raise CompileUnsupported("sgpr index beyond the register file")

    starts = _leaders(kernel)
    block_of = {pc: index for index, pc in enumerate(starts)}
    spans = [
        (start, starts[index + 1] if index + 1 < len(starts) else n)
        for index, start in enumerate(starts)
    ]

    gen = _Gen(f32_regs=frozenset(scan.f32_seen), batch=batch)
    cond_exprs = _BATCH_COND_EXPR if batch else _COND_EXPR
    raise_arms: Dict[int, int] = {}
    next_arm = len(spans)

    def edge(pc: int) -> int:
        """Arm index for a control-flow edge target."""
        index = block_of.get(pc)
        if index is not None:
            return index
        # Branch to one-past-the-end (or any unmapped pc): a pseudo
        # arm that reproduces the interpreter's bounds fault.
        nonlocal next_arm
        index = raise_arms.get(pc)
        if index is None:
            index = next_arm
            next_arm += 1
            raise_arms[pc] = index
        return index

    guard_prefix = f"kernel {kernel.name}: wavefront "
    guard_suffix = (
        f" exceeded {MAX_INSTRUCTIONS_PER_WAVE} instructions "
        "(runaway loop?)"
    )

    # -- prologue ----------------------------------------------------------
    gen.lines.append("def _run(GM, LM, wg_id, nwg, A, _na):")
    gen.indent = "    "
    for index in sorted(scan.sregs):
        if index == 0:
            gen.w("S0 = wg_id")
        elif index == 1:
            gen.w("S1 = nwg")
        else:
            arg = index - 2
            gen.w(f"S{index} = A[{arg}] if _na > {arg} else 0")
    for index in sorted(scan.vregs):
        gen.w(f"V{index} = _LANE_IDS" if index == 0 else f"V{index} = _Z64")
    for index in sorted(scan.f32_seen):
        gen.w(f"V{index}F = _LANE_IDS.view(_F32)" if index == 0
              else f"V{index}F = _Z64F")
    gen.w("EX = _TRUE64")
    gen.w("_ef = True")
    gen.w("VC = _FALSE64")
    gen.w("SCC = False")
    gen.w("n = 0")
    gen.w("t = 0")
    gen.w("_L = 0")
    gen.w("while True:")

    fault_blocks: List[Tuple[int, List[int]]] = []

    for block_index, (start, end) in enumerate(spans):
        span = instructions[start:end]
        costs = [
            timings.cost(opcode_info(inst.op).unit) for inst in span
        ]
        advances = [max(issue, cost) for cost in costs]
        count = len(span)
        adv = sum(advances)

        keyword = "if" if block_index == 0 else "elif"
        first_line = gen.next_line
        gen.indent = "        "
        gen.w(f"{keyword} _L == {block_index}:")
        gen.indent = "            "
        gen.w(f"if n > {MAX_INSTRUCTIONS_PER_WAVE}:")
        gen.w(f"    raise GpuError({guard_prefix!r} + str(wg_id)"
              f" + {guard_suffix!r})")
        inst_starts: List[int] = []
        for inst in span:
            inst_starts.append(gen.next_line)
            _emit_instruction(gen, inst, kernel, allowed_ops)
        fault_blocks.append((first_line, inst_starts))

        last = span[-1]
        gen.w(f"n += {count}")
        if last.op == "s_endpgm":
            last_issue_off = adv - advances[-1]
            ready_off = last_issue_off + costs[-1]
            next_now_off = last_issue_off + issue
            gen.w(f"return n, t + {ready_off}, t + {next_now_off}")
        elif last.op == "s_branch":
            gen.w(f"t += {adv}")
            gen.w(f"_L = {edge(kernel.resolve(last.target))}")
        elif last.op in _COND_EXPR:
            target = edge(kernel.resolve(last.target))
            fall = edge(end)
            gen.w(f"t += {adv}")
            gen.w(
                f"_L = {target} if ({cond_exprs[last.op]}) else {fall}"
            )
        else:
            gen.w(f"t += {adv}")
            gen.w(f"_L = {edge(end)}")

    for pc, arm_index in sorted(raise_arms.items(), key=lambda kv: kv[1]):
        message = f"kernel {kernel.name}: pc {pc} out of range"
        first_line = gen.next_line
        gen.indent = "        "
        gen.w(f"elif _L == {arm_index}:")
        gen.indent = "            "
        gen.w(f"raise GpuError({message!r})")
        fault_blocks.append((first_line, []))

    source = "\n".join(gen.lines)
    if batch:
        filename = (
            f"<miaow-batchpath-k{batch}:{kernel.name}:"
            f"{kernel.content_digest()[:8]}>"
        )
        namespace = dict(_batched_globals(batch))
    else:
        filename = (
            f"<miaow-fastpath:{kernel.name}:{kernel.content_digest()[:8]}>"
        )
        namespace = dict(_BASE_GLOBALS)
    namespace.update(gen.consts)
    try:
        code = compile(source, filename, "exec")
        exec(code, namespace)
    except SyntaxError as error:  # pragma: no cover - emitter bug guard
        raise CompileUnsupported(f"codegen error: {error}") from error
    return CompiledKernel(
        kernel=kernel,
        fn=namespace["_run"],
        filename=filename,
        source=source,
        num_blocks=len(spans),
        fault_blocks=fault_blocks,
    )


# ---------------------------------------------------------------------------
# Batched compilation
# ---------------------------------------------------------------------------

class BatchCompiledKernel:
    """A kernel lowered to one fused executor over K stacked members.

    The generated function is the same label-dispatch loop the single
    path emits, run over K * WAVE_SIZE element lane arrays (member m
    owns lanes [m * 64, (m + 1) * 64)).  Kernel arguments may be plain
    ints (uniform across members) or (K,) int64 arrays (per-member).

    ``run_workgroups`` deliberately commits *nothing*: it returns the
    per-member elapsed cycles and instruction count and lets the
    dispatcher decide — on any exception the dispatcher rolls back its
    memory journal and replays the members serially, so faults surface
    with exactly the single-path semantics.  Because every fused member
    executes the identical instruction stream in lockstep (divergence
    raises :class:`BatchDivergence`), one (elapsed, count) pair is
    bit-identical to what each member's single dispatch would report.
    """

    __slots__ = ("kernel", "fn", "filename", "source", "batch")

    def __init__(
        self, kernel: Kernel, fn, filename: str, source: str, batch: int
    ) -> None:
        self.kernel = kernel
        self.fn = fn
        self.filename = filename
        self.source = source
        self.batch = batch

    def run_workgroups(
        self,
        global_memory,
        local_memory,
        workgroup_ids: Sequence[int],
        num_workgroups_total: int,
        args: Sequence[object],
    ) -> Tuple[int, int]:
        """Execute workgroups fused; returns per-member (cycles, instructions)."""
        fn = self.fn
        nwg = num_workgroups_total & 0xFFFFFFFF
        num_args = len(args)
        now = 0
        cycles_end = 0
        total = 0
        with np.errstate(all="ignore"):
            for wg_id in workgroup_ids:
                count, ready_off, next_off = fn(
                    global_memory, local_memory, wg_id, nwg, args, num_args,
                )
                total += count
                end_ready = now + ready_off
                if end_ready > cycles_end:
                    cycles_end = end_ready
                now += next_off
        elapsed = now if now > cycles_end else cycles_end
        return elapsed, total


def compile_kernel_batched(
    kernel: Kernel,
    batch: int,
    timings: Optional[GpuTimings] = None,
    allowed_ops=None,
) -> BatchCompiledKernel:
    """Lower ``kernel`` into a fused K-member batched executor.

    Raises :class:`CompileUnsupported` when the kernel uses a shape the
    batched lowering cannot keep bit-exact per member (LDS stores,
    exec-mask save/restore, readfirstlane, data-dependent swizzles) —
    the dispatcher then serves the members through the single path.
    """
    if batch < 2:
        raise ValueError("batch size must be >= 2")
    compiled = compile_kernel(
        kernel, timings=timings, allowed_ops=allowed_ops, batch=batch
    )
    return BatchCompiledKernel(
        kernel=kernel,
        fn=compiled.fn,
        filename=compiled.filename,
        source=compiled.source,
        batch=batch,
    )
