"""GPU memories: global device memory and per-CU local memory (LDS).

Global memory models the peripheral DDR the MCM's TX engine writes
into; LDS models the local data share that holds the loaded ML model
("ML-MIAOW has in its local memory the model of the target program").
LDS contents persist across kernel dispatches, exactly so that a model
loaded once at application-load time can be reused per inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import GpuMemoryError

DEFAULT_GLOBAL_BYTES = 4 * 1024 * 1024
DEFAULT_LDS_BYTES = 64 * 1024

#: Check-folding sentinel for the all-lanes-active fast paths.  A lane
#: address is legal iff it is 4-aligned and its word index is in range.
#: ``(addr >> 2) | ((addr & 3) * _MISALIGN)`` maps any misaligned
#: address to an index >= 2**30, so for memories of at most 2**30 words
#: (4 GiB) a single numpy fancy-index — which validates every index
#: before reading or writing — performs both checks for free, and the
#: hot path needs no reductions at all.  On the rare IndexError the
#: precise checks re-run in the interpreter's order to pick the exact
#: error message.
_MISALIGN = np.uint32(1 << 30)
_FOLD_LIMIT = 1 << 30


class GlobalMemory:
    """Flat byte-addressed device memory with a bump allocator."""

    def __init__(self, size_bytes: int = DEFAULT_GLOBAL_BYTES) -> None:
        if size_bytes % 4:
            raise GpuMemoryError("global memory size must be word aligned")
        self.size_bytes = size_bytes
        self._words = np.zeros(size_bytes // 4, dtype=np.uint32)
        self._fold_checks = len(self._words) <= _FOLD_LIMIT
        self._next_free = 0

    # -- allocation ----------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve a region; returns its base address."""
        if nbytes <= 0:
            raise GpuMemoryError("allocation must be positive")
        base = (self._next_free + align - 1) // align * align
        if base + nbytes > self.size_bytes:
            raise GpuMemoryError(
                f"out of device memory ({base + nbytes} > {self.size_bytes})"
            )
        self._next_free = base + nbytes
        return base

    def reset_allocator(self) -> None:
        self._next_free = 0

    # -- scalar access ---------------------------------------------------

    def _word_index(self, address: int) -> int:
        if address % 4:
            raise GpuMemoryError(f"unaligned word access at {address:#x}")
        index = address // 4
        if not 0 <= index < len(self._words):
            raise GpuMemoryError(f"global access out of range: {address:#x}")
        return index

    def load_u32(self, address: int) -> int:
        # Hot on the s_load_dword path: same checks as _word_index,
        # inlined (plain-int arithmetic, no helper call).
        if address & 3:
            raise GpuMemoryError(f"unaligned word access at {address:#x}")
        index = address >> 2
        if not 0 <= index < len(self._words):
            raise GpuMemoryError(f"global access out of range: {address:#x}")
        return int(self._words[index])

    def store_u32(self, address: int, value: int) -> None:
        self._words[self._word_index(address)] = np.uint32(value & 0xFFFFFFFF)

    # -- vectorized lane access (used by the VMEM unit) -------------------

    def _raise_lane_fault(self, addresses: np.ndarray, kind: str) -> None:
        """Diagnose a folded-check miss: alignment first, like the
        explicit path, so the error message is identical."""
        if (addresses & 3).any():
            raise GpuMemoryError(f"unaligned lane {kind}")
        raise GpuMemoryError(f"lane {kind} out of range")

    def gather_all_u32(self, addresses: np.ndarray) -> np.ndarray:
        """Per-lane loads with every lane active (compiled fast path)."""
        if self._fold_checks:
            try:
                return self._words[
                    (addresses >> 2) | ((addresses & 3) * _MISALIGN)
                ]
            except IndexError:
                self._raise_lane_fault(addresses, "load")
        if (addresses & 3).any():
            raise GpuMemoryError("unaligned lane load")
        index = addresses >> 2
        if (index >= len(self._words)).any():
            raise GpuMemoryError("lane load out of range")
        return self._words[index]

    def scatter_all_u32(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Per-lane stores with every lane active (compiled fast path)."""
        if self._fold_checks:
            try:
                self._words[
                    (addresses >> 2) | ((addresses & 3) * _MISALIGN)
                ] = values
                return
            except IndexError:
                self._raise_lane_fault(addresses, "store")
        if (addresses & 3).any():
            raise GpuMemoryError("unaligned lane store")
        index = addresses >> 2
        if (index >= len(self._words)).any():
            raise GpuMemoryError("lane store out of range")
        self._words[index] = values

    def gather_u32(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-lane loads; inactive lanes return 0."""
        if mask.all():
            return self.gather_all_u32(addresses)
        out = np.zeros(len(addresses), dtype=np.uint32)
        active = np.nonzero(mask)[0]
        if active.size:
            addr = addresses[active]
            if (addr & 3).any():
                raise GpuMemoryError("unaligned lane load")
            index = addr >> 2
            if (index >= len(self._words)).any():
                raise GpuMemoryError("lane load out of range")
            out[active] = self._words[index]
        return out

    def scatter_u32(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Per-lane stores (later lanes win on address collisions)."""
        if mask.all():
            self.scatter_all_u32(addresses, values)
            return
        active = np.nonzero(mask)[0]
        if active.size:
            addr = addresses[active]
            if (addr & 3).any():
                raise GpuMemoryError("unaligned lane store")
            index = addr >> 2
            if (index >= len(self._words)).any():
                raise GpuMemoryError("lane store out of range")
            self._words[index] = values[active]

    # -- bulk host access (DMA / TX engine) ------------------------------

    def write_block(self, address: int, data: np.ndarray) -> None:
        """Host DMA write of a uint32 array."""
        data = np.ascontiguousarray(data, dtype=np.uint32)
        index = self._word_index(address)
        if index + data.size > len(self._words):
            raise GpuMemoryError("block write out of range")
        self._words[index:index + data.size] = data

    def read_block(self, address: int, nwords: int) -> np.ndarray:
        index = self._word_index(address)
        if index + nwords > len(self._words):
            raise GpuMemoryError("block read out of range")
        return self._words[index:index + nwords].copy()

    def write_f32(self, address: int, data: np.ndarray) -> None:
        self.write_block(
            address, np.ascontiguousarray(data, dtype=np.float32).view(np.uint32)
        )

    def read_f32(self, address: int, count: int) -> np.ndarray:
        return self.read_block(address, count).view(np.float32).copy()


class LocalMemory:
    """Per-CU local data share (word addressed internally)."""

    def __init__(self, size_bytes: int = DEFAULT_LDS_BYTES) -> None:
        if size_bytes % 4:
            raise GpuMemoryError("LDS size must be word aligned")
        self.size_bytes = size_bytes
        self._words = np.zeros(size_bytes // 4, dtype=np.uint32)
        self._fold_checks = len(self._words) <= _FOLD_LIMIT

    def _check(self, index: np.ndarray) -> None:
        # index comes from uint32 addresses, so it can never be
        # negative; the upper-bound test is the whole check.
        if (index >= len(self._words)).any():
            raise GpuMemoryError("LDS access out of range")

    def _raise_lds_fault(self, addresses: np.ndarray, kind: str) -> None:
        if (addresses & 3).any():
            raise GpuMemoryError(f"unaligned LDS {kind}")
        raise GpuMemoryError("LDS access out of range")

    def gather_all_u32(self, addresses: np.ndarray) -> np.ndarray:
        """Per-lane LDS loads with every lane active (compiled path)."""
        if self._fold_checks:
            try:
                return self._words[
                    (addresses >> 2) | ((addresses & 3) * _MISALIGN)
                ]
            except IndexError:
                self._raise_lds_fault(addresses, "load")
        if (addresses & 3).any():
            raise GpuMemoryError("unaligned LDS load")
        index = addresses >> 2
        self._check(index)
        return self._words[index]

    def scatter_all_u32(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Per-lane LDS stores with every lane active (compiled path)."""
        if self._fold_checks:
            try:
                self._words[
                    (addresses >> 2) | ((addresses & 3) * _MISALIGN)
                ] = values
                return
            except IndexError:
                self._raise_lds_fault(addresses, "store")
        if (addresses & 3).any():
            raise GpuMemoryError("unaligned LDS store")
        index = addresses >> 2
        self._check(index)
        self._words[index] = values

    def gather_u32(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if mask.all():
            return self.gather_all_u32(addresses)
        out = np.zeros(len(addresses), dtype=np.uint32)
        active = np.nonzero(mask)[0]
        if active.size:
            addr = addresses[active]
            if (addr & 3).any():
                raise GpuMemoryError("unaligned LDS load")
            index = addr >> 2
            self._check(index)
            out[active] = self._words[index]
        return out

    def scatter_u32(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        if mask.all():
            self.scatter_all_u32(addresses, values)
            return
        active = np.nonzero(mask)[0]
        if active.size:
            addr = addresses[active]
            if (addr & 3).any():
                raise GpuMemoryError("unaligned LDS store")
            index = addr >> 2
            self._check(index)
            self._words[index] = values[active]

    def atomic_add_u32(
        self, addresses: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Per-lane atomic adds; colliding lanes all accumulate."""
        active = np.nonzero(mask)[0]
        if active.size:
            addr = addresses[active]
            if (addr & 3).any():
                raise GpuMemoryError("unaligned LDS atomic")
            index = addr >> 2
            self._check(index)
            np.add.at(self._words, index, values[active].astype(np.uint32))

    # -- host preload (model weights) ------------------------------------

    def write_block(self, address: int, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data, dtype=np.uint32)
        if address % 4:
            raise GpuMemoryError("unaligned LDS block write")
        index = address // 4
        if index + data.size > len(self._words):
            raise GpuMemoryError("LDS block write out of range")
        self._words[index:index + data.size] = data

    def write_f32(self, address: int, data: np.ndarray) -> None:
        self.write_block(
            address, np.ascontiguousarray(data, dtype=np.float32).view(np.uint32)
        )

    def read_block(self, address: int, nwords: int) -> np.ndarray:
        if address % 4:
            raise GpuMemoryError("unaligned LDS block read")
        index = address // 4
        if index + nwords > len(self._words):
            raise GpuMemoryError("LDS block read out of range")
        return self._words[index:index + nwords].copy()

    def read_f32(self, address: int, count: int) -> np.ndarray:
        return self.read_block(address, count).view(np.float32).copy()

    def clear(self) -> None:
        self._words[:] = 0
