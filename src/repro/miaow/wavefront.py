"""Wavefront execution state: 64 lanes, EXEC/VCC masks, SGPR/VGPR files."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import GpuError
from repro.miaow.isa import NUM_SGPRS, NUM_VGPRS, WAVE_SIZE


class Wavefront:
    """Architectural state of one 64-lane wavefront.

    VGPRs hold raw 32-bit patterns (``uint32``); float operations view
    them as IEEE-754 singles.  EXEC and VCC are boolean lane masks.
    Dispatch convention (set by the CU):

    - ``s0`` = workgroup id
    - ``s1`` = workgroup count for the dispatch
    - ``s2..`` = user kernel arguments
    - ``v0``  = lane id (0..63)
    """

    def __init__(self, wave_id: int = 0, vgprs: int = NUM_VGPRS) -> None:
        if not 1 <= vgprs <= NUM_VGPRS:
            raise GpuError(f"vgpr allocation {vgprs} out of range")
        self.wave_id = wave_id
        self.pc = 0
        self.sgpr = np.zeros(NUM_SGPRS, dtype=np.uint32)
        self.vgpr = np.zeros((vgprs, WAVE_SIZE), dtype=np.uint32)
        self.exec_mask = np.ones(WAVE_SIZE, dtype=bool)
        self.vcc = np.zeros(WAVE_SIZE, dtype=bool)
        self.scc = False
        self.done = False
        # timing handle used by the CU scheduler
        self.ready_cycle = 0
        self.instructions_executed = 0
        # lane id register
        self.vgpr[0] = np.arange(WAVE_SIZE, dtype=np.uint32)

    # ------------------------------------------------------------------
    # Typed register views
    # ------------------------------------------------------------------

    def v_u32(self, index: int) -> np.ndarray:
        return self.vgpr[index]

    def v_f32(self, index: int) -> np.ndarray:
        return self.vgpr[index].view(np.float32)

    def v_i32(self, index: int) -> np.ndarray:
        return self.vgpr[index].view(np.int32)

    def s_u32(self, index: int) -> int:
        return int(self.sgpr[index])

    def s_i32(self, index: int) -> int:
        return int(np.int32(self.sgpr[index]))

    def set_sgpr(self, index: int, value: int) -> None:
        self.sgpr[index] = np.uint32(value & 0xFFFFFFFF)

    def write_vgpr_masked(self, index: int, values: np.ndarray) -> None:
        """Write lanes under the EXEC mask (the hardware write-enable)."""
        target = self.vgpr[index]
        target[self.exec_mask] = values[self.exec_mask]

    @property
    def active_lanes(self) -> int:
        return int(self.exec_mask.sum())
