"""Compute unit: wavefront scheduling and the cycle model.

The CU issues one instruction per cycle, round-robin over resident
wavefronts by readiness; an instruction occupies its wavefront for the
functional-unit latency, so with a single resident wavefront latency is
fully exposed (the FPGA MIAOW regime) while multiple wavefronts
overlap.  ``max_resident`` is the occupancy knob — the ablation
benchmarks sweep it.

At occupancy 1 this scheduling loop is also mirrored by the compiled
fast path: :mod:`repro.miaow.compiler` precomputes per-block cycle
costs from the same ``max(issue, cost)`` recurrence this loop applies
per instruction, so ``DispatchResult`` cycle/instruction counts match
the interpreter exactly.  Timing changes here must be reflected there
(the equivalence suite runs both paths under non-default timings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Set

from collections import deque

from repro.errors import GpuError, IllegalInstructionError, KernelLaunchError
from repro.miaow.alu import execute
from repro.miaow.assembler import Kernel
from repro.miaow.coverage import CoverageCollector
from repro.miaow.isa import NUM_SGPRS, opcode_info
from repro.miaow.memory import GlobalMemory, LocalMemory
from repro.miaow.wavefront import Wavefront


@dataclass(frozen=True)
class GpuTimings:
    """Per-unit instruction occupancy in GPU cycles.

    Values model MIAOW on FPGA: full-rate VALU takes 4 cycles
    (64 lanes over 16 SIMD lanes), transcendentals are quarter rate,
    LDS is a 4-cycle banked access, global memory hits the AXI DDR
    path.
    """

    issue: int = 1
    salu: int = 1
    valu: int = 4
    vtrans: int = 8
    lds: int = 2
    vmem: int = 8
    smem: int = 2
    branch: int = 1
    special: int = 1

    def cost(self, unit: str) -> int:
        try:
            return getattr(self, unit)
        except AttributeError:
            raise GpuError(f"no timing class {unit!r}") from None


#: Safety valve against infinite kernel loops.
MAX_INSTRUCTIONS_PER_WAVE = 5_000_000


class ComputeUnit:
    """One MIAOW compute unit."""

    def __init__(
        self,
        cu_id: int,
        global_memory: GlobalMemory,
        timings: Optional[GpuTimings] = None,
        lds_bytes: int = 64 * 1024,
        max_resident: int = 1,
        coverage: Optional[CoverageCollector] = None,
        allowed_ops: Optional[Set[str]] = None,
    ) -> None:
        if max_resident < 1:
            raise GpuError("max_resident must be >= 1")
        self.cu_id = cu_id
        self.global_memory = global_memory
        self.local_memory = LocalMemory(lds_bytes)
        self.timings = timings or GpuTimings()
        self.max_resident = max_resident
        self.coverage = coverage
        self.allowed_ops = allowed_ops
        self._kernel: Optional[Kernel] = None
        self.total_cycles = 0
        self.total_instructions = 0

    # ------------------------------------------------------------------
    # Label resolution used by branch handlers
    # ------------------------------------------------------------------

    def resolve_label(self, label: str) -> int:
        if self._kernel is None:
            raise GpuError("branch outside of a running kernel")
        return self._kernel.resolve(label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_workgroups(
        self,
        kernel: Kernel,
        workgroup_ids: Sequence[int],
        num_workgroups_total: int,
        args: Sequence[int],
    ) -> int:
        """Execute the given workgroups; returns elapsed CU cycles."""
        if len(args) > NUM_SGPRS - 2:
            raise KernelLaunchError("too many kernel arguments")
        self._kernel = kernel
        pending: Deque[int] = deque(workgroup_ids)
        resident: List[Wavefront] = []
        now = 0
        cycles_end = 0
        try:
            while pending or resident:
                while pending and len(resident) < self.max_resident:
                    wg_id = pending.popleft()
                    wf = Wavefront(wave_id=wg_id, vgprs=kernel.vgprs_used)
                    wf.set_sgpr(0, wg_id)
                    wf.set_sgpr(1, num_workgroups_total)
                    for index, value in enumerate(args):
                        wf.set_sgpr(2 + index, int(value) & 0xFFFFFFFF)
                    wf.ready_cycle = now
                    resident.append(wf)

                wf = min(resident, key=lambda w: w.ready_cycle)
                if wf.ready_cycle > now:
                    now = wf.ready_cycle
                self._step(wf, now)
                now += self.timings.issue
                if wf.done:
                    cycles_end = max(cycles_end, wf.ready_cycle)
                    resident.remove(wf)
        finally:
            self._kernel = None
        elapsed = max(now, cycles_end)
        self.total_cycles += elapsed
        return elapsed

    def _step(self, wf: Wavefront, now: int) -> None:
        kernel = self._kernel
        assert kernel is not None
        if wf.instructions_executed > MAX_INSTRUCTIONS_PER_WAVE:
            raise GpuError(
                f"kernel {kernel.name}: wavefront {wf.wave_id} exceeded "
                f"{MAX_INSTRUCTIONS_PER_WAVE} instructions (runaway loop?)"
            )
        if not 0 <= wf.pc < len(kernel.instructions):
            raise GpuError(
                f"kernel {kernel.name}: pc {wf.pc} out of range"
            )
        inst = kernel.instructions[wf.pc]
        wf.pc += 1
        if self.allowed_ops is not None and inst.op not in self.allowed_ops:
            raise IllegalInstructionError(
                f"opcode {inst.op!r} was trimmed out of this engine "
                f"(kernel {kernel.name}, line {inst.line})"
            )
        if self.coverage is not None:
            self.coverage.hit_opcode(inst.op)
        info = opcode_info(inst.op)
        execute(wf, inst, self)
        wf.ready_cycle = now + self.timings.cost(info.unit)
        self.total_instructions += 1
