"""Two-pass text assembler for the SI-subset ISA.

Syntax::

    ; comment
    .kernel matvec          ; kernel name (optional, default "kernel")
    .vgprs 8                ; VGPRs used (allocation hint)
    loop:                   ; label
        v_mac_f32 v2, v0, v1
        s_sub_i32 s4, s4, 1
        s_cmp_gt_i32 s4, 0
        s_cbranch_scc1 loop
        s_endpgm

Literals accept decimal, hex (``0x..``) and float (``1.0``, ``-2.5e3``)
forms; floats are stored as IEEE-754 single bits, matching how SI
encodes inline constants.
"""

from __future__ import annotations

import hashlib
import re
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.miaow.isa import (
    Instruction,
    Lit,
    NUM_SGPRS,
    NUM_VGPRS,
    Operand,
    opcode_info,
    Special,
    SReg,
    VReg,
)

_SREG_RE = re.compile(r"^s(\d+)$")
_VREG_RE = re.compile(r"^v(\d+)$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*):$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+[eE][+-]?\d+|\d+\.\d*[eE][+-]?\d+)$")


@dataclass
class Kernel:
    """An assembled kernel: instructions plus labels and metadata."""

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int]
    vgprs_used: int = 16

    def __len__(self) -> int:
        return len(self.instructions)

    def content_digest(self) -> str:
        """Stable hash of the program text (name, labels, code, vgprs).

        Memoized on the instance: kernels are treated as immutable once
        assembled (nothing in the engine mutates them), so the digest
        is computed at most once.  Used as the compiled-kernel cache
        key by :mod:`repro.miaow.compiler`.
        """
        digest = getattr(self, "_content_digest", None)
        if digest is None:
            digest = hashlib.sha1(
                self.disassemble().encode("utf-8")
            ).hexdigest()
            self._content_digest = digest
        return digest

    def resolve(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblerError(
                f"kernel {self.name}: unknown label {label!r}"
            ) from None

    def disassemble(self) -> str:
        """Text form (labels re-inserted) — round-trips via assemble()."""
        by_pc: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = [f".kernel {self.name}", f".vgprs {self.vgprs_used}"]
        for pc, inst in enumerate(self.instructions):
            for label in sorted(by_pc.get(pc, [])):
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        for label in sorted(by_pc.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"


def float_bits(value: float) -> int:
    """IEEE-754 single-precision bit pattern of a float."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip()
    match = _SREG_RE.match(token)
    if match:
        index = int(match.group(1))
        if index >= NUM_SGPRS:
            raise AssemblerError(f"line {line_no}: sgpr s{index} out of range")
        return SReg(index)
    match = _VREG_RE.match(token)
    if match:
        index = int(match.group(1))
        if index >= NUM_VGPRS:
            raise AssemblerError(f"line {line_no}: vgpr v{index} out of range")
        return VReg(index)
    if token in ("vcc", "exec", "scc"):
        return Special(token)
    if _FLOAT_RE.match(token):
        return Lit(float_bits(float(token)))
    try:
        value = int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: cannot parse operand {token!r}"
        ) from None
    if value < 0:
        value &= 0xFFFFFFFF
    if not 0 <= value <= 0xFFFFFFFF:
        raise AssemblerError(f"line {line_no}: literal {token} out of range")
    return Lit(value)


def _check_signature(
    op: str, signature: str, operands: Tuple[Operand, ...],
    target: Optional[str], line_no: int,
) -> None:
    wants_label = signature.endswith("L")
    reg_signature = signature[:-1] if wants_label else signature
    if wants_label and target is None:
        raise AssemblerError(f"line {line_no}: {op} needs a branch target")
    if not wants_label and target is not None:
        raise AssemblerError(f"line {line_no}: {op} takes no branch target")
    if len(operands) != len(reg_signature):
        raise AssemblerError(
            f"line {line_no}: {op} wants {len(reg_signature)} operands, "
            f"got {len(operands)}"
        )
    for operand, code in zip(operands, reg_signature):
        if code == "s" and not isinstance(operand, (SReg, Special)):
            raise AssemblerError(
                f"line {line_no}: {op} needs a scalar register, got {operand}"
            )
        if code == "v" and not isinstance(operand, VReg):
            raise AssemblerError(
                f"line {line_no}: {op} needs a vector register, got {operand}"
            )
        # 'x' accepts anything


def assemble(source: str, default_name: str = "kernel") -> Kernel:
    """Assemble text into a :class:`Kernel`."""
    name = default_name
    vgprs_used = 16
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("//")[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblerError(f"line {line_no}: bad .kernel directive")
            name = parts[1]
            continue
        if line.startswith(".vgprs"):
            parts = line.split()
            try:
                vgprs_used = int(parts[1])
            except (IndexError, ValueError):
                raise AssemblerError(
                    f"line {line_no}: bad .vgprs directive"
                ) from None
            if not 1 <= vgprs_used <= NUM_VGPRS:
                raise AssemblerError(f"line {line_no}: .vgprs out of range")
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(instructions)
            continue

        parts = line.split(None, 1)
        op = parts[0].lower()
        info = opcode_info(op)
        rest = parts[1] if len(parts) > 1 else ""
        tokens = [t.strip() for t in rest.split(",")] if rest else []
        tokens = [t for t in tokens if t]

        target: Optional[str] = None
        if info.signature.endswith("L"):
            if not tokens:
                raise AssemblerError(f"line {line_no}: {op} needs a target")
            target = tokens.pop()
        operands = tuple(_parse_operand(t, line_no) for t in tokens)
        _check_signature(op, info.signature, operands, target, line_no)
        instructions.append(
            Instruction(op=op, operands=operands, target=target, line=line_no)
        )

    # Verify all branch targets exist.
    for inst in instructions:
        if inst.target is not None and inst.target not in labels:
            raise AssemblerError(
                f"line {inst.line}: undefined label {inst.target!r}"
            )
    if not instructions or instructions[-1].op != "s_endpgm":
        raise AssemblerError(f"kernel {name}: must end with s_endpgm")
    return Kernel(
        name=name,
        instructions=instructions,
        labels=labels,
        vgprs_used=vgprs_used,
    )
