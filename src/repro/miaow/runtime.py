"""OpenCL-like host runtime for the MIAOW GPU.

MIAOW "supports the OpenCL programming model"; this module is the
host-side half: build programs from assembly source, allocate device
buffers, set arguments, enqueue kernels.  ML-MIAOW inherits the same
runtime — the point the paper makes about trimming preserving the
software environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import KernelLaunchError
from repro.miaow.assembler import Kernel, assemble
from repro.miaow.gpu import DispatchResult, Gpu


@dataclass(frozen=True)
class Buffer:
    """A device-memory allocation."""

    address: int
    nbytes: int

    @property
    def nwords(self) -> int:
        return self.nbytes // 4


class GpuRuntime:
    """Host-side driver: buffers, programs, kernel launches."""

    def __init__(self, gpu: Gpu) -> None:
        self.gpu = gpu
        self._programs: Dict[str, Kernel] = {}

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------

    def build_program(self, source: str, name: Optional[str] = None) -> Kernel:
        """Assemble source and register the kernel by name."""
        kernel = assemble(source, default_name=name or "kernel")
        if name is not None:
            kernel = Kernel(
                name=name,
                instructions=kernel.instructions,
                labels=kernel.labels,
                vgprs_used=kernel.vgprs_used,
            )
        self._programs[kernel.name] = kernel
        return kernel

    def get_kernel(self, name: str) -> Kernel:
        try:
            return self._programs[name]
        except KeyError:
            raise KernelLaunchError(f"no program named {name!r}") from None

    # -- binary program images ------------------------------------------

    def upload_binary(self, kernel: Kernel) -> Buffer:
        """Encode a kernel and place its image in device memory —
        how a real host driver ships programs to the engine."""
        from repro.miaow.binary import encode_kernel

        image = encode_kernel(kernel)
        buffer = self.alloc(int(image.size) * 4)
        self.gpu.global_memory.write_block(buffer.address, image)
        return buffer

    def load_binary(
        self, buffer: Buffer, name: Optional[str] = None
    ) -> Kernel:
        """Decode a program image out of device memory and register it."""
        from repro.miaow.binary import decode_kernel

        image = self.gpu.global_memory.read_block(
            buffer.address, buffer.nwords
        )
        kernel = decode_kernel(image, name=name or "binary")
        self._programs[kernel.name] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Buffers
    # ------------------------------------------------------------------

    def alloc(self, nbytes: int) -> Buffer:
        address = self.gpu.global_memory.alloc(nbytes)
        return Buffer(address=address, nbytes=nbytes)

    def alloc_f32(self, count: int) -> Buffer:
        return self.alloc(count * 4)

    def write(self, buffer: Buffer, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data)
        if data.dtype == np.float32 or data.dtype == np.float64:
            payload = data.astype(np.float32).view(np.uint32)
        else:
            payload = data.astype(np.uint32)
        if payload.size * 4 > buffer.nbytes:
            raise KernelLaunchError("write exceeds buffer size")
        self.gpu.global_memory.write_block(buffer.address, payload.ravel())

    def read_f32(self, buffer: Buffer, count: Optional[int] = None) -> np.ndarray:
        count = buffer.nwords if count is None else count
        return self.gpu.global_memory.read_f32(buffer.address, count)

    def read_u32(self, buffer: Buffer, count: Optional[int] = None) -> np.ndarray:
        count = buffer.nwords if count is None else count
        return self.gpu.global_memory.read_block(buffer.address, count)

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    @staticmethod
    def _flatten_args(args: Sequence[Union[int, Buffer]]) -> List[int]:
        flat: List[int] = []
        for arg in args:
            if isinstance(arg, Buffer):
                flat.append(arg.address)
            else:
                flat.append(int(arg) & 0xFFFFFFFF)
        return flat

    def launch(
        self,
        kernel: Union[str, Kernel],
        num_workgroups: int,
        args: Sequence[Union[int, Buffer]] = (),
    ) -> DispatchResult:
        """Enqueue a kernel (blocking; returns timing/result info)."""
        if isinstance(kernel, str):
            kernel = self.get_kernel(kernel)
        return self.gpu.dispatch(
            kernel, num_workgroups, self._flatten_args(args)
        )

    def launch_batch(
        self,
        kernel: Union[str, Kernel],
        num_workgroups: int,
        args_lists: Sequence[Sequence[Union[int, Buffer]]],
    ) -> List[DispatchResult]:
        """Enqueue one fused dispatch serving K compatible requests.

        Returns one :class:`DispatchResult` per member, bit-identical
        to launching the members one at a time (see
        :meth:`repro.miaow.gpu.Gpu.dispatch_batch`).
        """
        if isinstance(kernel, str):
            kernel = self.get_kernel(kernel)
        return self.gpu.dispatch_batch(
            kernel,
            num_workgroups,
            [self._flatten_args(args) for args in args_lists],
        )
