"""RTAD MPSoC: the paper's system, assembled.

Wires the host CPU (synthetic workload + CoreSight), the MLPU (IGM +
MCM + ML-MIAOW) and the clock/bus cost models into an event-driven
simulation that produces the paper's evaluation quantities: host
overhead (Fig. 6), data-transfer latency (Fig. 7) and detection
latency (Fig. 8).
"""

from repro.soc.clocks import ClockDomain, CPU_CLOCK, RTAD_CLOCK, GPU_CLOCK
from repro.soc.bus import AxiBus
from repro.soc.cpu import PtmFifoModel, HostCpu
from repro.soc.software_baseline import (
    SoftwareInstrumentationModel,
    SoftwareTransferModel,
    RtadOverheadModel,
)
from repro.soc.loop import LoopDataplane
from repro.soc.rtad import RtadSoc, RtadConfig, AttackTrialResult
from repro.soc.manager import (
    Deployment,
    HealthPolicy,
    SocManager,
    TenantHealth,
    TenantRuntime,
)
from repro.soc.collection import TrainingCollector, CollectionResult
from repro.soc.metrics import TransferBreakdown, rtad_transfer_breakdown, sw_transfer_breakdown

__all__ = [
    "ClockDomain",
    "CPU_CLOCK",
    "RTAD_CLOCK",
    "GPU_CLOCK",
    "AxiBus",
    "PtmFifoModel",
    "HostCpu",
    "SoftwareInstrumentationModel",
    "SoftwareTransferModel",
    "RtadOverheadModel",
    "LoopDataplane",
    "RtadSoc",
    "RtadConfig",
    "AttackTrialResult",
    "Deployment",
    "HealthPolicy",
    "SocManager",
    "TenantHealth",
    "TenantRuntime",
    "TrainingCollector",
    "CollectionResult",
    "TransferBreakdown",
    "rtad_transfer_breakdown",
    "sw_transfer_breakdown",
]
