"""Latency decompositions used by the Fig. 7 reproduction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mcm.engines import TxEngine
from repro.soc.clocks import RTAD_CLOCK
from repro.soc.cpu import PtmFifoModel
from repro.soc.software_baseline import SoftwareTransferModel
from repro.workloads.profiles import BenchmarkProfile

#: Average PTM trace bytes per branch event (measured on the encoder:
#: compressed branch-address packets plus atoms and periodic syncs).
TRACE_BYTES_PER_EVENT = 1.05

#: IGM pipeline: decode at the TA (amortized ~1 cycle) plus the
#: 2-cycle map+encode stage of the IVG.
IGM_DECODE_CYCLES = 1
IGM_VECTORIZE_CYCLES = 2


@dataclass(frozen=True)
class TransferBreakdown:
    """Fig. 7's three steps, in microseconds."""

    read_us: float        # (1) obtain the branch data
    vectorize_us: float   # (2) refine into the input vector
    copy_us: float        # (3) move it into engine memory

    @property
    def total_us(self) -> float:
        return self.read_us + self.vectorize_us + self.copy_us


def sw_transfer_breakdown(
    window: int = 16,
    model: Optional[SoftwareTransferModel] = None,
) -> TransferBreakdown:
    """The pure-software path (SW bars of Fig. 7)."""
    model = model or SoftwareTransferModel()
    return TransferBreakdown(
        read_us=model.read_ns(window) / 1e3,
        vectorize_us=model.vectorize_ns(window) / 1e3,
        copy_us=model.copy_ns(window) / 1e3,
    )


def rtad_transfer_breakdown(
    profile: BenchmarkProfile,
    window: int = 16,
    ptm_fifo: Optional[PtmFifoModel] = None,
    tx_engine: Optional[TxEngine] = None,
) -> TransferBreakdown:
    """The RTAD hardware path (RTAD bars of Fig. 7).

    Step (1) is dominated by the CPU-internal PTM FIFO batching, which
    depends on the benchmark's trace byte rate; step (2) is the fixed
    2-cycle IGM vectorization (16 ns at 125 MHz); step (3) is the TX
    engine's burst write into ML-MIAOW memory.
    """
    ptm_fifo = ptm_fifo or PtmFifoModel()
    tx_engine = tx_engine or TxEngine()
    byte_rate_per_ns = (
        profile.branch_rate_hz * TRACE_BYTES_PER_EVENT / 1e9
    )
    read_ns = (
        ptm_fifo.mean_buffer_delay_ns(byte_rate_per_ns)
        + RTAD_CLOCK.to_ns(IGM_DECODE_CYCLES)
    )
    vectorize_ns = RTAD_CLOCK.to_ns(IGM_VECTORIZE_CYCLES)
    copy_ns = RTAD_CLOCK.to_ns(tx_engine.cycles(window))
    return TransferBreakdown(
        read_us=read_ns / 1e3,
        vectorize_us=vectorize_ns / 1e3,
        copy_us=copy_ns / 1e3,
    )
