"""The RTAD MPSoC: end-to-end anomaly-detection simulation.

Two run modes:

- :meth:`RtadSoc.run_events` — the *full path*: branch events go
  through PTM packet encoding, the CPU-internal PTM FIFO batching,
  TPIU framing, the (functionally exact) address mapper + vector
  encoder, then the MCM queue and the GPU engine.  Used by the
  integration tests and examples on short traces.
- :meth:`RtadSoc.run_monitored_stream` — the *queueing path* for the
  long Fig. 8 experiments: already-filtered monitored IDs with
  explicit arrival times, the trace-path latency folded in as the
  profile's analytic transfer delay.  The MCM/GPU portion is
  identical; only the per-raw-branch byte simulation is summarized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SocConfigError
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import InferenceRecord, Mcm, McmConfig
from repro.ml.detector import ThresholdDetector
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.clocks import CPU_CLOCK
from repro.soc.cpu import HostCpu
from repro.soc.metrics import rtad_transfer_breakdown
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.cfg import BranchEvent
from repro.workloads.program import SyntheticProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.faults.stages import VectorOverflowModel


@dataclass(frozen=True)
class RtadConfig:
    """SoC-level configuration."""

    model_kind: str = "lstm"            # "elm" | "lstm"
    window: int = 1                     # VE window (1 for lstm, 16 for elm)
    fifo_depth: int = 16
    igm_pipe_ns: float = 24.0           # decode + 2-cycle vectorize
    score_smoothing: int = 1            # interrupt-manager accumulator
    # Clock-scaling knobs (ablations; paper defaults).
    rtad_clock_hz: float = 125_000_000.0
    gpu_clock_hz: float = 50_000_000.0
    # Trace dataplane: "batched" runs the staged numpy pipeline
    # (repro.pipeline), "loop" the per-event reference implementation.
    # Both are behaviour-identical; batched is much faster.
    dataplane: str = "batched"
    chunk_events: int = 32768           # batched dataplane chunk size
    #: Run every inference twice from the same model state and flag
    #: divergent scores on the record (repro.durability voting mode).
    dual_run: bool = False
    #: Optional seeded fault-injection plan (repro.faults).  Event and
    #: FIFO-overflow channels apply identically to both dataplanes; a
    #: None (or all-zero-rate) plan leaves the SoC byte-identical.
    fault_plan: Optional["FaultPlan"] = None
    #: Trace grammar: any name in ``repro.frontends.frontend_names()``
    #: ("coresight" | "etrace").  Both grammars produce identical
    #: verdicts and IGM vectors; only byte counts (and therefore FIFO
    #: flush timestamps) differ.
    frontend: str = "coresight"

    def __post_init__(self) -> None:
        if self.model_kind not in ("elm", "lstm"):
            raise SocConfigError(f"unknown model kind {self.model_kind!r}")
        if self.model_kind == "lstm" and self.window != 1:
            raise SocConfigError("LSTM deployment uses window=1 vectors")
        if self.dataplane not in ("batched", "loop"):
            raise SocConfigError(f"unknown dataplane {self.dataplane!r}")
        if self.chunk_events < 1:
            raise SocConfigError("chunk_events must be >= 1")
        # Deferred import: repro.frontends late-binds its builtins.
        from repro.frontends import frontend_names

        if self.frontend not in frontend_names():
            raise SocConfigError(
                f"unknown trace frontend {self.frontend!r} "
                f"(have: {', '.join(frontend_names())})"
            )


@dataclass
class AttackTrialResult:
    """Outcome of one injected-attack timing trial."""

    onset_ns: float
    detected: bool
    detection_latency_us: Optional[float]
    interrupts: int
    inferences: int
    dropped_vectors: int
    overflowed: bool
    false_interrupts_before_onset: int


class RtadSoc:
    """Host CPU + MLPU, assembled around one deployed model."""

    def __init__(
        self,
        program: SyntheticProgram,
        driver: MlMiaowDriver,
        converter: ProtocolConverter,
        monitored_addresses: Sequence[int],
        detector: Optional[ThresholdDetector] = None,
        config: Optional[RtadConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.program = program
        self.config = config or RtadConfig()
        self.metrics = metrics or NULL_REGISTRY
        self.mapper = AddressMapper(metrics=self.metrics)
        self.mapper.load(monitored_addresses)
        self.encoder = VectorEncoder(
            mode=EncoderMode.SEQUENCE,
            window=self.config.window,
            vocabulary_size=self.mapper.size + 1,
            metrics=self.metrics,
        )
        if self.metrics.enabled:
            # The driver (and its GPU) are built by the caller; adopt
            # them into this SoC's registry so kernel launches and
            # wavefront cycles land in the same snapshot.
            driver.bind_metrics(self.metrics)
        self.mcm = Mcm(
            driver=driver,
            converter=converter,
            detector=detector,
            config=McmConfig(
                fifo_depth=self.config.fifo_depth,
                score_smoothing=self.config.score_smoothing,
                rtad_clock_hz=self.config.rtad_clock_hz,
                gpu_clock_hz=self.config.gpu_clock_hz,
                dual_run=self.config.dual_run,
            ),
            metrics=self.metrics,
        )
        # Imported here: repro.frontends late-binds its builtins, and
        # repro.pipeline depends on repro.soc.clocks, so module-level
        # imports would be circular through the repro.soc package
        # __init__.
        from repro.frontends import make_frontend
        from repro.pipeline import build_trace_pipeline

        self.frontend = make_frontend(self.config.frontend)
        self.host = HostCpu(
            program, metrics=self.metrics, frontend=self.frontend
        )
        self.pipeline = build_trace_pipeline(
            self.mapper,
            self.encoder,
            self.mcm.push,
            frontend=self.frontend,
            fifo_threshold_bytes=self.host.ptm_fifo.threshold_bytes,
            port_clock=self.host.ptm_fifo.port_clock,
            igm_pipe_ns=self.config.igm_pipe_ns,
            metrics=self.metrics,
            chunk_events=self.config.chunk_events,
            fault_plan=self.config.fault_plan,
        )
        # Loop-dataplane fault state (the batched pipeline carries its
        # own stages); counter names match the stage counters so either
        # dataplane reports injected losses identically.
        self._overflow: Optional["VectorOverflowModel"] = None
        plan = self.config.fault_plan
        if plan is not None and not plan.is_noop:
            from repro.faults.plan import FaultKind
            from repro.faults.stages import VectorOverflowModel

            if plan.spec(FaultKind.FIFO_OVERFLOW) is not None:
                self._overflow = VectorOverflowModel(plan)
        self._m_fault_ev_dropped = self.metrics.counter(
            "faults.events.dropped"
        )
        self._m_fault_ev_duplicated = self.metrics.counter(
            "faults.events.duplicated"
        )
        self._m_fault_ev_corrupted = self.metrics.counter(
            "faults.events.corrupted"
        )
        self._m_fault_vec_dropped = self.metrics.counter(
            "faults.vectors.dropped"
        )
        self._m_events = self.metrics.counter("soc.events")
        self._m_monitored_ids = self.metrics.counter("soc.monitored_ids")
        # Fig. 7 mirror, in simulated nanoseconds per delivered vector:
        # (1) read = PTM FIFO batching + trace-port drain, (2) the
        # fixed IGM vectorize stage; (3) copy is mcm.copy_ns.
        self._m_read = self.metrics.histogram("pipeline.read_ns")
        self._m_vectorize = self.metrics.histogram("pipeline.vectorize_ns")
        self._m_e2e = self.metrics.histogram("pipeline.e2e_ns")
        self._observed_records = 0

    # ------------------------------------------------------------------
    # Full-path run (byte-accurate trace path)
    # ------------------------------------------------------------------

    def run_events(
        self,
        events: Sequence[BranchEvent],
        dataplane: Optional[str] = None,
    ) -> List[InferenceRecord]:
        """Run raw branch events through the complete pipeline.

        Every call is an independent trace session: per-session state
        (PTM compression context, pending atoms, TPIU partial frame,
        PTM FIFO bytes, encoder window, LSTM recurrent state, MCM busy
        window) is reset first, so back-to-back calls behave like
        fresh SoCs.  ``mcm.records`` and the observability counters
        keep accumulating — they are the lifetime log.

        ``dataplane`` overrides the configured implementation:
        ``"batched"`` (the staged numpy pipeline) or ``"loop"`` (the
        per-event reference).  Both produce identical records.
        """
        mode = dataplane or self.config.dataplane
        if mode not in ("batched", "loop"):
            raise SocConfigError(f"unknown dataplane {mode!r}")
        with self.metrics.trace("soc.run_events", events=len(events)):
            self._m_events.inc(len(events))
            self.reset_session()
            if len(events):
                if mode == "batched":
                    self.pipeline.run(events)
                else:
                    self._run_events_loop(events)
            with self.metrics.trace("mcm.finalize"):
                records = self.mcm.finalize()
            self._observe_records(records)
            return records

    def reset_session(self) -> None:
        """Restore all per-session dataplane and model state.

        Fixes the state leakage between repeated ``run_events`` calls:
        residual PTM FIFO bytes, the CoreSight encoder's compression
        base / pending atoms / sync countdown, the TPIU partial frame,
        the vector-encoder window, LSTM recurrent state, and the MCM
        busy window all belong to one trace session.  On a freshly
        built SoC every step below is a no-op, so first runs are
        unaffected.
        """
        self.host.begin_session()
        self.host.ptm_fifo.reset()
        self.pipeline.reset()
        self.encoder.reset(reset_sequence=True)
        self.mcm.driver.reset()
        self.mcm.reset_session()
        if self._overflow is not None:
            self._overflow.reset()

    def _run_events_loop(self, events: Sequence[BranchEvent]) -> None:
        """Per-event reference dataplane.

        Kept verbatim as the behavioural oracle for the staged
        pipeline (differential tests) and as the baseline the
        throughput benchmark compares against.  Fault channels reuse
        the batched stages' pure helpers, so both dataplanes inject
        the identical pattern for one plan.
        """
        plan = self.config.fault_plan
        if plan is not None and not plan.is_noop:
            from repro.faults.stages import apply_event_faults

            events, counts = apply_event_faults(events, plan)
            if counts:
                self._m_fault_ev_dropped.inc(counts.dropped)
                self._m_fault_ev_duplicated.inc(counts.duplicated)
                self._m_fault_ev_corrupted.inc(counts.corrupted)
            if not len(events):
                return
        pending: List[InputVector] = []
        for event in events:
            time_ns = self.host.event_time_ns(event)
            chunk = self.host.driver.trace(event)
            index = self.mapper.lookup(event.target)
            if index is not None:
                vector = self.encoder.push(
                    index=index, address=event.target, cycle=event.cycle
                )
                if vector is not None:
                    pending.append(vector)
            flushed = self.host.ptm_fifo.push(time_ns, len(chunk))
            if flushed is not None:
                self._deliver(pending, flushed)
                pending = []
        tail = self.host.driver.flush()
        last_ns = self.host.event_time_ns(events[-1])
        # The tail push may itself cross the threshold and drain the
        # FIFO; keep that handle, or the explicit session-end flush
        # sees an empty FIFO and the pending vectors are lost.
        flushed = self.host.ptm_fifo.push(last_ns, len(tail))
        if flushed is None:
            flushed = self.host.ptm_fifo.flush(last_ns)
        if flushed is not None:
            self._deliver(pending, flushed)

    def _deliver(self, vectors: List[InputVector], flush_ns: float) -> None:
        for vector in vectors:
            if self._overflow is not None and not self._overflow.admit():
                self._m_fault_vec_dropped.inc()
                continue
            trigger_ns = CPU_CLOCK.to_ns(vector.trigger_cycle)
            self._m_read.observe(max(0.0, flush_ns - trigger_ns))
            self._m_vectorize.observe(self.config.igm_pipe_ns)
            self.mcm.push(vector, flush_ns + self.config.igm_pipe_ns)

    def _observe_records(self, records: List[InferenceRecord]) -> None:
        """End-to-end latency per inference not yet observed.

        ``Mcm.records`` accumulates across runs, so only the tail that
        appeared since the last observation is recorded.
        """
        for record in records[self._observed_records:]:
            trigger_ns = CPU_CLOCK.to_ns(record.trigger_cycle)
            self._m_e2e.observe(max(0.0, record.done_ns - trigger_ns))
        self._observed_records = len(records)

    # ------------------------------------------------------------------
    # Queueing-path run (pre-filtered monitored stream)
    # ------------------------------------------------------------------

    def path_latency_ns(self) -> float:
        """Analytic trace-path latency for this benchmark (Fig. 7)."""
        breakdown = rtad_transfer_breakdown(
            self.program.profile, window=self.config.window
        )
        # Transfer step (3) and queueing are already modeled inside the
        # MCM; the path latency covers steps (1) and (2).
        return (breakdown.read_us + breakdown.vectorize_us) * 1e3

    def run_monitored_stream(
        self,
        ids: Sequence[int],
        times_ns: Sequence[float],
        path_latency_ns: Optional[float] = None,
    ) -> List[InferenceRecord]:
        """Feed already-filtered monitored branch IDs with timestamps."""
        if len(ids) != len(times_ns):
            raise SocConfigError("ids/times length mismatch")
        latency = (
            self.path_latency_ns()
            if path_latency_ns is None
            else path_latency_ns
        )
        with self.metrics.trace(
            "soc.run_monitored_stream", ids=len(ids)
        ):
            self._m_monitored_ids.inc(len(ids))
            for branch_id, time_ns in zip(ids, times_ns):
                vector = self.encoder.push(
                    index=int(branch_id),
                    address=0,
                    cycle=int(CPU_CLOCK.cycles(time_ns)),
                )
                if vector is not None:
                    self._m_read.observe(latency)
                    self.mcm.push(vector, time_ns + latency)
            records = self.mcm.finalize()
            self._observe_records(records)
            return records

    # ------------------------------------------------------------------
    # Attack trials (Fig. 8)
    # ------------------------------------------------------------------

    def run_attack_trial(
        self,
        normal_ids: Sequence[int],
        mean_interval_us: float,
        gadget_ids: Sequence[int],
        onset_index: int,
        gadget_interval_us: float = 2.0,
        seed: int = 0,
        timeout_us: float = 10_000.0,
    ) -> AttackTrialResult:
        """Inject a gadget into a monitored stream; time the detection.

        Normal arrivals are exponential with the benchmark's monitored
        interval; the gadget executes densely (an attacker sprinting
        through reused code).

        Following the paper's metric — "the total time taken for our
        inference engine ... to make a judgment on the normality of
        the behavior of a program immediately after the program
        executes a branch instruction" — the detection latency is the
        time from the first anomalous branch's retirement until the
        inference containing it completes (trace path + queueing +
        engine service).  Whether the model actually *flags* the
        anomaly is reported separately via ``detected``.
        """
        if not 0 < onset_index <= len(normal_ids):
            raise SocConfigError("onset index outside the normal stream")
        rng = make_rng(derive_seed(seed, "attack-trial", onset_index))
        gaps = rng.exponential(mean_interval_us * 1e3, len(normal_ids))
        normal_times = np.cumsum(gaps)

        onset_ns = float(normal_times[onset_index - 1]) + 1.0
        gadget_times = onset_ns + np.arange(len(gadget_ids)) * (
            gadget_interval_us * 1e3
        )
        shift = (
            float(gadget_times[-1]) - onset_ns + gadget_interval_us * 1e3
        )
        ids = list(normal_ids[:onset_index]) + list(gadget_ids) + list(
            normal_ids[onset_index:]
        )
        times = np.concatenate(
            [
                normal_times[:onset_index],
                gadget_times,
                normal_times[onset_index:] + shift,
            ]
        )
        records = self.run_monitored_stream(ids, times)

        interrupts = self.mcm.interrupts.fired
        false_before = sum(1 for i in interrupts if i.time_ns < onset_ns)
        # One deadline for the whole trial: the window filter below and
        # the judgment check further down must use the same instant, so
        # the us -> ns conversion happens exactly once.
        deadline_ns = onset_ns + timeout_us * 1e3
        detection = [
            i for i in interrupts
            if onset_ns <= i.time_ns <= deadline_ns
        ]
        # Judgment latency: the inference whose window first contains
        # the injected branch.  Event index onset_index completes the
        # vector with sequence number onset_index - (window - 1); if
        # the FIFO dropped it (overflow), the next surviving inference
        # carries the evidence.
        target_sequence = onset_index - (self.config.window - 1)
        judgment = next(
            (
                r for r in records
                if r.sequence_number >= target_sequence
                and r.done_ns >= onset_ns
            ),
            None,
        )
        # A judgment that lands after the timeout window counts as "no
        # judgment in time" — the trial reports None, matching how
        # ``detected`` is bounded above.
        latency_us: Optional[float] = None
        if judgment is not None and judgment.done_ns <= deadline_ns:
            latency_us = (judgment.done_ns - onset_ns) / 1e3
        return AttackTrialResult(
            onset_ns=onset_ns,
            detected=bool(detection),
            detection_latency_us=latency_us,
            interrupts=len(interrupts),
            inferences=len(records),
            dropped_vectors=self.mcm.dropped_vectors,
            overflowed=self.mcm.overflowed,
            false_interrupts_before_onset=false_before,
        )
