"""AXI interconnect cost model (ARM NIC-301).

Only the costs matter to the evaluation: how long a CPU-driven copy
into peripheral memory takes (the dominant term of the software
baseline's Fig. 7 step (3)) versus a hardware master's burst write.
CPU stores to a device region are non-posted single beats each paying
the full interconnect round trip; the hardware TX engine bursts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AxiBus:
    """Transfer-cost parameters, in nanoseconds."""

    #: Software path: driver entry, pointer setup, cache maintenance.
    cpu_copy_setup_ns: float = 7980.0
    #: Per 32-bit beat for uncached CPU stores through the NIC-301.
    cpu_beat_ns: float = 220.0
    #: Hardware master burst setup (address phase + arbitration).
    hw_burst_setup_ns: float = 180.0
    #: Per-beat cost within a hardware burst.
    hw_beat_ns: float = 16.0

    def cpu_copy_ns(self, words: int) -> float:
        """CPU memcpy of ``words`` 32-bit words into peripheral memory."""
        if words < 0:
            raise ValueError("negative transfer size")
        return self.cpu_copy_setup_ns + words * self.cpu_beat_ns

    def hw_burst_ns(self, words: int) -> float:
        """DMA-style burst by a hardware bus master."""
        if words < 0:
            raise ValueError("negative transfer size")
        return self.hw_burst_setup_ns + words * self.hw_beat_ns
