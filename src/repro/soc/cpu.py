"""Host-CPU side of the trace path: the PTM output FIFO and a
convenience wrapper that runs a workload through CoreSight.

Fig. 7's analysis attributes most of RTAD's residual latency to step
(1): "PTM does not send the packets until enough packets are buffered
in the FIFO inside the ARM CPU".  :class:`PtmFifoModel` reproduces
that batching: trace bytes accumulate and are drained to the TPIU
port only once the occupancy threshold is reached (or on an explicit
flush), so a branch's bytes leave the CPU some time *after* it
retired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.errors import SocConfigError
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.clocks import CPU_CLOCK, RTAD_CLOCK, ClockDomain
from repro.workloads.cfg import BranchEvent
from repro.workloads.program import SyntheticProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.frontends.base import TraceDriver, TraceFrontend


@dataclass
class PtmFifoModel:
    """Byte-batching model of the CPU-internal PTM FIFO.

    ``push(time_ns, nbytes)`` returns the *drain completion time* of
    those bytes if this push triggered a flush, else None; queued
    bytes flush together once occupancy reaches ``threshold_bytes``.
    The drain itself moves 4 bytes per trace-port cycle (125 MHz).
    """

    threshold_bytes: int = 176
    port_clock: ClockDomain = RTAD_CLOCK
    metrics: Optional[MetricsRegistry] = None
    _pending: List[Tuple[float, int]] = field(default_factory=list)
    _occupancy: int = 0

    def __post_init__(self) -> None:
        registry = self.metrics or NULL_REGISTRY
        self._m_occupancy = registry.gauge("ptm_fifo.occupancy")
        self._m_flushes = registry.counter("ptm_fifo.flushes")
        self._m_flushed_bytes = registry.counter("ptm_fifo.flushed_bytes")

    def push(self, time_ns: float, nbytes: int) -> Optional[float]:
        if nbytes < 0:
            raise SocConfigError("negative byte count")
        if nbytes == 0:
            return None
        self._pending.append((time_ns, nbytes))
        self._occupancy += nbytes
        self._m_occupancy.set(self._occupancy)
        if self._occupancy >= self.threshold_bytes:
            return self._flush(time_ns)
        return None

    def flush(self, time_ns: float) -> Optional[float]:
        """Explicit drain (trace-session end)."""
        if self._occupancy == 0:
            return None
        return self._flush(time_ns)

    def reset(self) -> None:
        """Discard buffered bytes (new trace session, nothing drains)."""
        self._pending.clear()
        self._occupancy = 0
        self._m_occupancy.set(0)

    def _flush(self, time_ns: float) -> float:
        drain_cycles = (self._occupancy + 3) // 4
        done = time_ns + self.port_clock.to_ns(drain_cycles)
        self._m_flushes.inc()
        self._m_flushed_bytes.inc(self._occupancy)
        self._pending.clear()
        self._occupancy = 0
        self._m_occupancy.set(0)
        return done

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "pending": [[time_ns, nbytes] for time_ns, nbytes in self._pending],
            "occupancy": self._occupancy,
        }

    def restore_state(self, state: dict) -> None:
        self._pending = [
            (time_ns, nbytes) for time_ns, nbytes in state["pending"]
        ]
        self._occupancy = state["occupancy"]
        self._m_occupancy.set(self._occupancy)

    def mean_buffer_delay_ns(self, byte_rate_per_ns: float) -> float:
        """Analytic expected delay of a byte through the FIFO.

        A byte waits on average for half the threshold to accumulate;
        used by the Fig. 7 step-(1) decomposition.
        """
        if byte_rate_per_ns <= 0:
            raise SocConfigError("byte rate must be positive")
        fill_ns = self.threshold_bytes / byte_rate_per_ns
        drain_ns = self.port_clock.to_ns((self.threshold_bytes + 3) // 4)
        return fill_ns / 2.0 + drain_ns


@dataclass(frozen=True)
class TimedTraceByte:
    """Bytes leaving the CPU trace port with their departure time."""

    depart_ns: float
    data: bytes


class HostCpu:
    """The host CPU: workload + trace emission through a frontend.

    The trace grammar is pluggable: ``frontend`` selects which
    :class:`~repro.frontends.base.TraceFrontend` builds the encoder
    driver (ARM CoreSight PTM/TPIU by default).  The driver follows an
    explicit session lifecycle — it is created *disabled* and powered
    up by :meth:`begin_session`, so no trace bytes exist before a
    session starts (the old constructor-time ``enable()`` leaked the
    encoder's lazy sync burst into the pre-session stream).
    """

    def __init__(
        self,
        program: SyntheticProgram,
        ptm_fifo: Optional[PtmFifoModel] = None,
        clock: ClockDomain = CPU_CLOCK,
        metrics: Optional[MetricsRegistry] = None,
        frontend: Optional["TraceFrontend"] = None,
    ) -> None:
        self.program = program
        self.clock = clock
        self.metrics = metrics or NULL_REGISTRY
        self.ptm_fifo = ptm_fifo or PtmFifoModel(metrics=self.metrics)
        if frontend is None:
            # Deferred import: repro.frontends late-binds its builtins.
            from repro.frontends.coresight import CoreSightFrontend

            frontend = CoreSightFrontend()
        self.frontend = frontend
        self.driver: "TraceDriver" = frontend.create_driver(
            metrics=self.metrics
        )

    @property
    def coresight(self) -> "TraceDriver":
        """Back-compat alias for the frontend driver."""
        return self.driver

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def begin_session(self) -> None:
        """Power the trace path up with a fresh encoder context."""
        if self.driver.enabled:
            self.driver.disable()
        self.driver.enable()

    def end_session(self) -> None:
        """Tear the trace path down (e.g. to reconfigure context IDs)."""
        self.driver.disable()

    def event_time_ns(self, event: BranchEvent) -> float:
        return self.clock.to_ns(event.cycle)

    def trace_events(
        self, events: Iterable[BranchEvent]
    ) -> List[TimedTraceByte]:
        """Run events through the trace path with FIFO-batched departures."""
        if not self.driver.enabled:
            self.begin_session()
        out: List[TimedTraceByte] = []
        buffered = bytearray()
        last_ns = 0.0
        for event in events:
            time_ns = self.event_time_ns(event)
            last_ns = max(last_ns, time_ns)
            chunk = self.driver.trace(event)
            if not chunk:
                continue
            buffered += chunk
            done = self.ptm_fifo.push(time_ns, len(chunk))
            if done is not None:
                out.append(TimedTraceByte(depart_ns=done, data=bytes(buffered)))
                buffered.clear()
        tail = self.driver.flush()
        if tail:
            buffered += tail
            self.ptm_fifo.push(last_ns, len(tail))
        done = self.ptm_fifo.flush(last_ns)
        if done is not None and buffered:
            out.append(TimedTraceByte(depart_ns=done, data=bytes(buffered)))
        return out
