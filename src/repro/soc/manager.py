"""Multi-tenant deployments: N monitored programs, one ML-MIAOW.

The paper deploys one model per SoC; production monitoring wants one
RTAD engine watching *several* programs at once.  :class:`SocManager`
runs N :class:`Deployment` tenants, each with its own trace dataplane
(address mapper, vector encoder, staged pipeline) and its own MCM lane
(FIFO, smoothing, detector, interrupt manager, records), while a
single GPU engine serves all lanes through round-robin arbitration
(:class:`repro.mcm.arbiter.ArbitratedMcm`).

Isolation contract: tenant A's trace volume can *delay* tenant B
(shared engine = longer queueing) but can never corrupt B's stream —
vectors, sequence numbers, scores, and records stay per-lane.

**Health state machine.**  Each tenant carries a health state::

    HEALTHY --(sustained loss rate)--> DEGRADED --(clean rounds)--> HEALTHY
       |                                  |
       +---(watchdog trips / crash)-------+--> QUARANTINED
                                               |  skipped for
                                               |  probation_rounds
                                               v
                                           DEGRADED (probation)

DEGRADED is advisory — the tenant keeps running, the state is visible
via :meth:`SocManager.health` and the ``socmgr.health.*`` counters.
QUARANTINED is enforced: the tenant's traces are skipped (its lane
receives no vectors), so one faulty tenant cannot starve the shared
engine; after ``probation_rounds`` skipped rounds it is re-admitted as
DEGRADED and must stay clean to recover.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.coresight.ptm import PtmConfig
from repro.durability.journal import (
    MIN_RECORD_BYTES,
    Journal,
    RecordKind,
    decode_json_payload,
    decode_trace_chunk,
    encode_json_payload,
    encode_trace_chunk,
)
from repro.errors import (
    JournalCorruptionError,
    ProcessCrashError,
    SocConfigError,
    TenantCrashError,
)
from repro.faults.crashpoints import CrashPointInjector
from repro.faults.service import ServiceFaultInjector, crash_fraction
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.mcm.arbiter import ArbitratedMcm
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import InferenceRecord, Mcm, McmConfig
from repro.ml.detector import ThresholdDetector
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.rtad import RtadConfig
from repro.workloads.cfg import BranchEvent


class TenantHealth(enum.Enum):
    """Health of one tenant, as judged by the manager."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the tenant health state machine."""

    #: Per-round injected-loss + FIFO-drop rate (losses / trace events)
    #: above which a round counts as *bad*.
    degrade_loss_rate: float = 0.05
    #: Consecutive bad rounds before HEALTHY -> DEGRADED.
    sustain_rounds: int = 2
    #: Watchdog trips within one round that force QUARANTINED.
    quarantine_trips: int = 1
    #: Rounds a quarantined tenant sits out before re-admission.
    probation_rounds: int = 2
    #: Consecutive clean rounds before DEGRADED -> HEALTHY.
    recover_rounds: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.degrade_loss_rate <= 1.0:
            raise SocConfigError("degrade_loss_rate must be in [0, 1]")
        for name in (
            "sustain_rounds",
            "quarantine_trips",
            "probation_rounds",
            "recover_rounds",
        ):
            if getattr(self, name) < 1:
                raise SocConfigError(f"{name} must be >= 1")


@dataclass
class Deployment:
    """One tenant: a monitored program's model bound to the shared SoC.

    The ``driver`` must wrap the *shared* GPU engine — SocManager
    refuses mixed engines; arbitration is the whole point.
    """

    name: str
    driver: MlMiaowDriver
    converter: ProtocolConverter
    monitored_addresses: Sequence[int]
    detector: Optional[ThresholdDetector] = None
    config: RtadConfig = field(default_factory=RtadConfig)
    ptm_config: Optional[PtmConfig] = None


class TenantRuntime:
    """Per-tenant dataplane + MCM lane (internal to SocManager)."""

    def __init__(
        self,
        index: int,
        deployment: Deployment,
        metrics: MetricsRegistry,
    ) -> None:
        self.index = index
        self.name = deployment.name
        self.deployment = deployment
        self.metrics = metrics
        config = deployment.config
        self.fault_plan = config.fault_plan
        self.mapper = AddressMapper(metrics=metrics)
        self.mapper.load(deployment.monitored_addresses)
        self.encoder = VectorEncoder(
            mode=EncoderMode.SEQUENCE,
            window=config.window,
            vocabulary_size=self.mapper.size + 1,
            metrics=metrics,
        )
        self.mcm = Mcm(
            driver=deployment.driver,
            converter=deployment.converter,
            detector=deployment.detector,
            config=McmConfig(
                fifo_depth=config.fifo_depth,
                score_smoothing=config.score_smoothing,
                rtad_clock_hz=config.rtad_clock_hz,
                gpu_clock_hz=config.gpu_clock_hz,
                dual_run=config.dual_run,
            ),
            metrics=metrics,
        )
        self.schedule: List[Tuple[InputVector, float]] = []
        # Deferred imports: repro.pipeline depends on repro.soc.clocks
        # and repro.frontends late-binds its builtins; module-level
        # imports here would be circular (see rtad.py).
        from repro.frontends import make_frontend
        from repro.pipeline import build_trace_pipeline
        from repro.soc.loop import LoopDataplane

        self.frontend = make_frontend(
            config.frontend, ptm_config=deployment.ptm_config
        )
        if config.dataplane == "loop":
            self.pipeline = LoopDataplane(
                self.mapper,
                self.encoder,
                self._capture,
                frontend=self.frontend,
                igm_pipe_ns=config.igm_pipe_ns,
                metrics=metrics,
                fault_plan=self.fault_plan,
            )
        else:
            self.pipeline = build_trace_pipeline(
                self.mapper,
                self.encoder,
                self._capture,
                frontend=self.frontend,
                igm_pipe_ns=config.igm_pipe_ns,
                metrics=metrics,
                chunk_events=config.chunk_events,
                fault_plan=self.fault_plan,
            )
        candidates = getattr(self.pipeline, "stages", [self.pipeline])
        self._fault_stages = [
            stage for stage in candidates if hasattr(stage, "fault_drops")
        ]
        self._observed_records = 0
        # --- health bookkeeping (plain attributes: decisions must not
        # depend on whether an obs registry is attached) ---
        self.health = TenantHealth.HEALTHY
        self.crashes = 0
        self._bad_rounds = 0
        self._clean_rounds = 0
        self._quarantined_rounds = 0
        self._seen_loss = 0
        self._seen_trips = 0

    def _capture(self, vector: InputVector, deliver_ns: float) -> None:
        """Pipeline sink: record the delivery for the global merge."""
        self.schedule.append((vector, deliver_ns))

    def reset(self) -> None:
        self.schedule = []
        self.pipeline.reset()
        self.encoder.reset(reset_sequence=True)
        self.mcm.driver.reset()

    def run_trace(
        self, events: Sequence[BranchEvent], round_index: int
    ) -> None:
        """Run this round's trace, honouring a planned tenant crash."""
        fraction = crash_fraction(self.fault_plan, round_index)
        if fraction is None:
            self.pipeline.run(events)
            return
        cut = int(len(events) * fraction)
        if cut:
            self.pipeline.run(events[:cut])
        self.crashes += 1
        raise TenantCrashError(
            f"tenant {self.name!r} crashed at event {cut}/{len(events)} "
            f"of round {round_index}"
        )

    def loss_delta(self) -> int:
        """Losses since last asked: lane FIFO drops + injected drops."""
        total = self.mcm.fifo.drops + sum(
            stage.fault_drops for stage in self._fault_stages
        )
        delta = total - self._seen_loss
        self._seen_loss = total
        return delta

    def take_new_records(self) -> List[InferenceRecord]:
        records = self.mcm.records[self._observed_records :]
        self._observed_records = len(self.mcm.records)
        return records


class SocManager:
    """Runs N tenant deployments sharing one inference engine.

    Each ``run_events`` call is one monitoring round: every tenant's
    branch trace goes through its *own* staged dataplane (tenant trace
    paths are independent hardware and proceed in parallel), the
    resulting vector deliveries are merged in global time order, and
    the shared engine serves the lanes under round-robin arbitration.

    ``deadline_us`` arms the arbiter's per-service watchdog;
    ``health_policy`` tunes the tenant health state machine (see the
    module docstring).  Both default to the permissive behaviour the
    single-fault-free tests expect: no watchdog, health tracked but
    never quarantining without watchdog trips or a crash.
    """

    def __init__(
        self,
        deployments: Sequence[Deployment],
        metrics: Optional[MetricsRegistry] = None,
        deadline_us: Optional[float] = None,
        health_policy: Optional[HealthPolicy] = None,
        *,
        batch_limit: int = 1,
        journal: Optional[Journal] = None,
        checkpoint_interval_events: Optional[int] = None,
        journal_chunk_events: int = 8192,
        crash_points: Optional[CrashPointInjector] = None,
    ) -> None:
        if not deployments:
            raise SocConfigError("SocManager needs at least one tenant")
        # Validate the arbiter knobs here, with the manager's own
        # vocabulary, instead of letting a bad value surface as an
        # arbiter failure deep inside a monitoring round.
        if deadline_us is not None and not deadline_us > 0:
            raise SocConfigError(
                f"deadline_us must be positive (or None), got {deadline_us!r}"
            )
        if not isinstance(batch_limit, int) or batch_limit < 1:
            raise SocConfigError(
                f"batch_limit must be a positive integer, got {batch_limit!r}"
            )
        if journal_chunk_events < 1:
            raise SocConfigError("journal_chunk_events must be >= 1")
        if (
            checkpoint_interval_events is not None
            and checkpoint_interval_events < 1
        ):
            raise SocConfigError(
                "checkpoint_interval_events must be >= 1 (or None)"
            )
        names = [d.name for d in deployments]
        if len(set(names)) != len(names):
            raise SocConfigError(f"duplicate tenant names in {names}")
        engines = {id(d.driver.gpu) for d in deployments}
        if len(engines) != 1:
            raise SocConfigError(
                "all tenants must share a single ML-MIAOW engine; "
                "build every driver around the same Gpu instance"
            )
        self.metrics = metrics or NULL_REGISTRY
        # The engine is shared by every tenant, so its counters
        # (gpu.*, miaow.fastpath.*, miaow.batch.*) belong to the
        # manager-level registry, not to any one tenant's.
        deployments[0].driver.gpu.bind_metrics(self.metrics)
        self.policy = health_policy or HealthPolicy()
        self.deadline_us = deadline_us
        self.tenants: List[TenantRuntime] = [
            TenantRuntime(
                index,
                deployment,
                metrics=self._tenant_registry(),
            )
            for index, deployment in enumerate(deployments)
        ]
        self.arbiter = ArbitratedMcm(
            [tenant.mcm for tenant in self.tenants],
            metrics=self.metrics,
            deadline_us=deadline_us,
            service_faults=[
                ServiceFaultInjector.from_plan(tenant.fault_plan)
                for tenant in self.tenants
            ],
            batch_limit=batch_limit,
        )
        self._round = 0
        # --- durability (repro.durability; docs/DURABILITY.md) ---
        self._journal = journal
        self._checkpoint_interval = checkpoint_interval_events
        self._journal_chunk_events = journal_chunk_events
        self._crash_points = crash_points
        self._replaying = False
        self._events_since_checkpoint = 0
        self._m_runs = self.metrics.counter("socmgr.runs")
        self._m_recoveries = self.metrics.counter("socmgr.recoveries")
        self._m_replayed = self.metrics.counter("socmgr.rounds_replayed")
        self._m_events = self.metrics.counter("socmgr.events")
        self._m_vectors = self.metrics.counter("socmgr.vectors")
        self._m_crashes = self.metrics.counter("socmgr.crashes")
        self._m_quarantines = self.metrics.counter(
            "socmgr.health.quarantines"
        )
        self._m_readmissions = self.metrics.counter(
            "socmgr.health.readmissions"
        )
        self._m_degradations = self.metrics.counter(
            "socmgr.health.degradations"
        )
        self._m_skipped = self.metrics.counter(
            "socmgr.health.skipped_rounds"
        )

    def _tenant_registry(self) -> MetricsRegistry:
        return MetricsRegistry() if self.metrics.enabled else NULL_REGISTRY

    def tenant(self, name: str) -> TenantRuntime:
        for runtime in self.tenants:
            if runtime.name == name:
                return runtime
        raise SocConfigError(f"unknown tenant {name!r}")

    def health(self) -> Dict[str, TenantHealth]:
        """Current health state of every tenant."""
        return {runtime.name: runtime.health for runtime in self.tenants}

    # ------------------------------------------------------------------
    # Tenant membership
    # ------------------------------------------------------------------

    def remove_tenant(self, name: str) -> Deployment:
        """Detach a tenant between rounds; returns its deployment."""
        runtime = self.tenant(name)
        if len(self.tenants) == 1:
            raise SocConfigError("cannot remove the last tenant")
        self.arbiter.remove_lane(runtime.index)
        self.tenants.remove(runtime)
        for index, survivor in enumerate(self.tenants):
            survivor.index = index
        return runtime.deployment

    def admit_tenant(self, deployment: Deployment) -> TenantRuntime:
        """Attach a tenant between rounds (fresh runtime, fresh lane)."""
        if deployment.name in {r.name for r in self.tenants}:
            raise SocConfigError(
                f"duplicate tenant name {deployment.name!r}"
            )
        if id(deployment.driver.gpu) != id(
            self.tenants[0].deployment.driver.gpu
        ):
            raise SocConfigError(
                "admitted tenant must share the existing ML-MIAOW engine"
            )
        runtime = TenantRuntime(
            len(self.tenants), deployment, metrics=self._tenant_registry()
        )
        self.tenants.append(runtime)
        self.arbiter.add_lane(
            runtime.mcm,
            ServiceFaultInjector.from_plan(runtime.fault_plan),
        )
        return runtime

    # ------------------------------------------------------------------
    # One monitoring round
    # ------------------------------------------------------------------

    def run_events(
        self, traces: Mapping[str, Sequence[BranchEvent]]
    ) -> Dict[str, List[InferenceRecord]]:
        """One monitoring round; per-tenant records from this round.

        ``traces`` maps tenant names to branch event streams; tenants
        without an entry idle this round.  Unknown names are refused
        rather than silently ignored.  Quarantined tenants are skipped
        (their traces produce no vectors) until probation expires.
        """
        known = {runtime.name for runtime in self.tenants}
        unknown = set(traces) - known
        if unknown:
            raise SocConfigError(f"unknown tenants {sorted(unknown)}")
        journaling = self._journal is not None and not self._replaying
        if journaling:
            # Write-ahead: the round's inputs are durable before any
            # processing, so a crash anywhere after this point can be
            # recovered by replay (or by discarding the uncommitted
            # tail and re-feeding).
            self._journal_round(self._round, traces)
        with self.metrics.trace(
            "socmgr.run_events", tenants=len(self.tenants)
        ):
            self.arbiter.reset_session()
            round_index = self._round
            self._round += 1
            ran: Dict[str, bool] = {}
            for runtime in self.tenants:
                events = traces.get(runtime.name, ())
                if runtime.health is TenantHealth.QUARANTINED:
                    self._probation_step(runtime, bool(len(events)))
                if runtime.health is TenantHealth.QUARANTINED:
                    runtime.reset()
                    ran[runtime.name] = False
                    continue
                runtime.reset()
                self._m_events.inc(len(events))
                ran[runtime.name] = False
                if len(events):
                    try:
                        runtime.run_trace(events, round_index)
                        ran[runtime.name] = True
                    except TenantCrashError:
                        # Partial deliveries die with the tenant; the
                        # healthy lanes never see its vectors.
                        runtime.schedule = []
                        self._m_crashes.inc()
                        self._quarantine(runtime)
            merged: List[Tuple[float, int, int, InputVector]] = []
            for runtime in self.tenants:
                for order, (vector, deliver_ns) in enumerate(
                    runtime.schedule
                ):
                    merged.append(
                        (deliver_ns, runtime.index, order, vector)
                    )
            merged.sort(key=lambda entry: entry[:3])
            self._sync_batch_eligibility()
            for deliver_ns, lane, _, vector in merged:
                self.arbiter.push(lane, vector, deliver_ns)
            self._m_vectors.inc(len(merged))
            self.arbiter.finalize()
            self._update_health(traces, ran)
            self._m_runs.inc()
            results = {
                runtime.name: runtime.take_new_records()
                for runtime in self.tenants
            }
            if journaling:
                self._commit_round(
                    round_index,
                    sum(len(events) for events in traces.values()),
                )
            return results

    # ------------------------------------------------------------------
    # Durability: write-ahead journal, checkpoints, recovery
    # ------------------------------------------------------------------

    @property
    def next_round(self) -> int:
        """Index of the next round ``run_events`` will run.

        After :meth:`recover` this is the first round whose inputs were
        *not* durably committed — the caller resumes feeding from here.
        """
        return self._round

    def _crash(self, site: str) -> None:
        if self._crash_points is not None:
            self._crash_points.reached(site)

    def _journal_round(
        self, round_index: int, traces: Mapping[str, Sequence[BranchEvent]]
    ) -> None:
        """Make one round's inputs durable ahead of processing."""
        journal = self._journal
        assert journal is not None
        active = [
            runtime.name
            for runtime in self.tenants
            if len(traces.get(runtime.name, ()))
        ]
        journal.append(
            RecordKind.ROUND_BEGIN,
            encode_json_payload({"round": round_index, "tenants": active}),
        )
        self._crash("wal.round_begin")
        step = self._journal_chunk_events
        for runtime in self.tenants:
            events = traces.get(runtime.name, ())
            if not len(events):
                continue
            for chunk_index, start in enumerate(
                range(0, len(events), step)
            ):
                payload = encode_trace_chunk(
                    runtime.name,
                    round_index,
                    chunk_index,
                    events[start : start + step],
                )
                injector = self._crash_points
                if injector is not None and injector.fires(
                    "wal.chunk.torn"
                ):
                    # Crash mid-write: only a prefix of the record
                    # reaches the journal — the torn tail the reopen
                    # scan must tolerate and truncate.
                    keep = (MIN_RECORD_BYTES + len(payload)) // 2
                    journal.append_torn(
                        RecordKind.TRACE_CHUNK, payload, keep
                    )
                    raise ProcessCrashError(
                        "injected process crash at 'wal.chunk.torn' "
                        f"(round {round_index}, tenant {runtime.name!r})"
                    )
                journal.append(RecordKind.TRACE_CHUNK, payload)
                self._crash("wal.chunk")
            self._crash("wal.chunk.done")

    def _commit_round(self, round_index: int, event_count: int) -> None:
        """Mark the round replayable; checkpoint when the interval is due."""
        journal = self._journal
        assert journal is not None
        journal.append(
            RecordKind.ROUND_COMMIT,
            encode_json_payload({"round": round_index}),
        )
        self._crash("wal.commit")
        self._events_since_checkpoint += event_count
        interval = self._checkpoint_interval
        if interval is None or self._events_since_checkpoint < interval:
            return
        # Deferred import: repro.durability.checkpoint imports this
        # module (for TenantHealth) inside its own functions.
        from repro.durability.checkpoint import capture_checkpoint

        journal.append(
            RecordKind.CHECKPOINT,
            encode_json_payload(capture_checkpoint(self)),
        )
        # Rolling at the checkpoint bounds replay work: recovery only
        # reads from the newest checkpoint forward, and older segments
        # become prunable.
        journal.roll()
        self._events_since_checkpoint = 0
        self._crash("wal.checkpoint")

    @classmethod
    def recover(
        cls,
        journal: Journal,
        deployments: Sequence[Deployment],
        *,
        metrics: Optional[MetricsRegistry] = None,
        deadline_us: Optional[float] = None,
        health_policy: Optional[HealthPolicy] = None,
        batch_limit: int = 1,
        checkpoint_interval_events: Optional[int] = None,
        journal_chunk_events: int = 8192,
        crash_points: Optional[CrashPointInjector] = None,
    ) -> "SocManager":
        """Rebuild a manager from its journal after a crash.

        ``deployments`` re-supplies the non-serializable parts (models,
        drivers, detectors) and must match the tenant set that was live
        at the newest checkpoint.  Recovery restores that checkpoint,
        replays every durably *committed* round after it (replay is
        deterministic, so the replayed inference records are
        byte-identical to the uninterrupted run's), and discards an
        uncommitted tail — :attr:`next_round` tells the caller which
        round to re-feed first.  ``crash_points`` is armed only after
        replay finishes; recovery itself never re-fires the injector
        that killed the original process.
        """
        manager = cls(
            deployments,
            metrics=metrics,
            deadline_us=deadline_us,
            health_policy=health_policy,
            batch_limit=batch_limit,
            journal=journal,
            checkpoint_interval_events=checkpoint_interval_events,
            journal_chunk_events=journal_chunk_events,
        )
        records = journal.records()
        start = 0
        checkpoint = None
        for position, record in enumerate(records):
            if record.kind is RecordKind.CHECKPOINT:
                checkpoint = record
                start = position + 1
        if checkpoint is not None:
            from repro.durability.checkpoint import restore_checkpoint

            restore_checkpoint(
                manager, decode_json_payload(checkpoint.payload)
            )
        replayed = 0
        manager._replaying = True
        try:
            pending_round: Optional[int] = None
            pending: Dict[str, List[BranchEvent]] = {}
            for record in records[start:]:
                if record.kind is RecordKind.ROUND_BEGIN:
                    # A BEGIN with an unfinished predecessor means the
                    # predecessor never committed; its buffer is dead.
                    header = decode_json_payload(record.payload)
                    pending_round = header["round"]
                    pending = {name: [] for name in header["tenants"]}
                elif record.kind is RecordKind.TRACE_CHUNK:
                    chunk = decode_trace_chunk(record.payload)
                    if (
                        pending_round is None
                        or chunk.round_index != pending_round
                    ):
                        raise JournalCorruptionError(
                            f"trace chunk for round {chunk.round_index} "
                            f"outside open round {pending_round}"
                        )
                    if chunk.tenant not in pending:
                        raise JournalCorruptionError(
                            f"trace chunk for tenant {chunk.tenant!r} "
                            "not named by its round header"
                        )
                    pending[chunk.tenant].extend(chunk.events)
                elif record.kind is RecordKind.ROUND_COMMIT:
                    header = decode_json_payload(record.payload)
                    if (
                        pending_round is None
                        or header["round"] != pending_round
                    ):
                        raise JournalCorruptionError(
                            f"commit for round {header['round']} without "
                            "a matching open round"
                        )
                    if pending_round != manager._round:
                        raise JournalCorruptionError(
                            f"journal replays round {pending_round} but "
                            f"the manager is at round {manager._round}"
                        )
                    manager.run_events(
                        {
                            name: tuple(events)
                            for name, events in pending.items()
                        }
                    )
                    replayed += 1
                    pending_round, pending = None, {}
        finally:
            manager._replaying = False
        # Fresh segment: post-recovery appends never share a file with
        # the (possibly truncated) crashed tail.
        journal.roll()
        manager._crash_points = crash_points
        manager._m_recoveries.inc()
        manager._m_replayed.inc(replayed)
        return manager

    # ------------------------------------------------------------------
    # Health transitions
    # ------------------------------------------------------------------

    def _sync_batch_eligibility(self) -> None:
        """Health-aware batching: only HEALTHY lanes may join a fused
        dispatch this round.  Degraded and probationary tenants keep
        being served, one dispatch at a time — a misbehaving tenant
        should not ride (or delay) another tenant's fused launch."""
        for runtime in self.tenants:
            self.arbiter.set_batch_eligible(
                runtime.index, runtime.health is TenantHealth.HEALTHY
            )

    def _quarantine(self, runtime: TenantRuntime) -> None:
        runtime.health = TenantHealth.QUARANTINED
        runtime._quarantined_rounds = 0
        runtime._bad_rounds = 0
        runtime._clean_rounds = 0
        runtime.loss_delta()  # absorb this round's losses
        self._m_quarantines.inc()

    def _probation_step(
        self, runtime: TenantRuntime, had_trace: bool
    ) -> None:
        """At round start: advance (or conclude) a quarantine."""
        if runtime._quarantined_rounds >= self.policy.probation_rounds:
            runtime.health = TenantHealth.DEGRADED
            runtime._quarantined_rounds = 0
            runtime._clean_rounds = 0
            self._m_readmissions.inc()
            return
        runtime._quarantined_rounds += 1
        if had_trace:
            self._m_skipped.inc()

    def _update_health(
        self,
        traces: Mapping[str, Sequence[BranchEvent]],
        ran: Mapping[str, bool],
    ) -> None:
        for runtime in self.tenants:
            trips = (
                self.arbiter.watchdog_trips[runtime.index]
                - runtime._seen_trips
            )
            runtime._seen_trips = self.arbiter.watchdog_trips[
                runtime.index
            ]
            if runtime.health is TenantHealth.QUARANTINED:
                continue
            if trips >= self.policy.quarantine_trips:
                self._quarantine(runtime)
                continue
            if not ran.get(runtime.name):
                continue  # idle rounds carry no health evidence
            events = len(traces.get(runtime.name, ()))
            loss_rate = runtime.loss_delta() / max(1, events)
            if loss_rate > self.policy.degrade_loss_rate:
                runtime._bad_rounds += 1
                runtime._clean_rounds = 0
                if (
                    runtime._bad_rounds >= self.policy.sustain_rounds
                    and runtime.health is TenantHealth.HEALTHY
                ):
                    runtime.health = TenantHealth.DEGRADED
                    self._m_degradations.inc()
            else:
                runtime._bad_rounds = 0
                if runtime.health is TenantHealth.DEGRADED:
                    runtime._clean_rounds += 1
                    if runtime._clean_rounds >= self.policy.recover_rounds:
                        runtime.health = TenantHealth.HEALTHY
                        runtime._clean_rounds = 0
