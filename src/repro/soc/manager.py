"""Multi-tenant deployments: N monitored programs, one ML-MIAOW.

The paper deploys one model per SoC; production monitoring wants one
RTAD engine watching *several* programs at once.  :class:`SocManager`
runs N :class:`Deployment` tenants, each with its own trace dataplane
(address mapper, vector encoder, staged pipeline) and its own MCM lane
(FIFO, smoothing, detector, interrupt manager, records), while a
single GPU engine serves all lanes through round-robin arbitration
(:class:`repro.mcm.arbiter.ArbitratedMcm`).

Isolation contract: tenant A's trace volume can *delay* tenant B
(shared engine = longer queueing) but can never corrupt B's stream —
vectors, sequence numbers, scores, and records stay per-lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.coresight.ptm import PtmConfig
from repro.errors import SocConfigError
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.mcm.arbiter import ArbitratedMcm
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.mcm.mcm import InferenceRecord, Mcm, McmConfig
from repro.ml.detector import ThresholdDetector
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.rtad import RtadConfig
from repro.workloads.cfg import BranchEvent


@dataclass
class Deployment:
    """One tenant: a monitored program's model bound to the shared SoC.

    The ``driver`` must wrap the *shared* GPU engine — SocManager
    refuses mixed engines; arbitration is the whole point.
    """

    name: str
    driver: MlMiaowDriver
    converter: ProtocolConverter
    monitored_addresses: Sequence[int]
    detector: Optional[ThresholdDetector] = None
    config: RtadConfig = field(default_factory=RtadConfig)
    ptm_config: Optional[PtmConfig] = None


class TenantRuntime:
    """Per-tenant dataplane + MCM lane (internal to SocManager)."""

    def __init__(
        self,
        index: int,
        deployment: Deployment,
        metrics: MetricsRegistry,
    ) -> None:
        self.index = index
        self.name = deployment.name
        self.deployment = deployment
        self.metrics = metrics
        config = deployment.config
        self.mapper = AddressMapper(metrics=metrics)
        self.mapper.load(deployment.monitored_addresses)
        self.encoder = VectorEncoder(
            mode=EncoderMode.SEQUENCE,
            window=config.window,
            vocabulary_size=self.mapper.size + 1,
            metrics=metrics,
        )
        self.mcm = Mcm(
            driver=deployment.driver,
            converter=deployment.converter,
            detector=deployment.detector,
            config=McmConfig(
                fifo_depth=config.fifo_depth,
                score_smoothing=config.score_smoothing,
                rtad_clock_hz=config.rtad_clock_hz,
                gpu_clock_hz=config.gpu_clock_hz,
            ),
            metrics=metrics,
        )
        self.schedule: List[Tuple[InputVector, float]] = []
        # Deferred import: repro.pipeline depends on repro.soc.clocks,
        # a module-level import here would be circular (see rtad.py).
        from repro.pipeline import build_trace_pipeline

        self.pipeline = build_trace_pipeline(
            self.mapper,
            self.encoder,
            self._capture,
            ptm_config=deployment.ptm_config,
            igm_pipe_ns=config.igm_pipe_ns,
            metrics=metrics,
            chunk_events=config.chunk_events,
        )
        self._observed_records = 0

    def _capture(self, vector: InputVector, deliver_ns: float) -> None:
        """Pipeline sink: record the delivery for the global merge."""
        self.schedule.append((vector, deliver_ns))

    def reset(self) -> None:
        self.schedule = []
        self.pipeline.reset()
        self.encoder.reset(reset_sequence=True)
        self.mcm.driver.reset()

    def take_new_records(self) -> List[InferenceRecord]:
        records = self.mcm.records[self._observed_records :]
        self._observed_records = len(self.mcm.records)
        return records


class SocManager:
    """Runs N tenant deployments sharing one inference engine.

    Each ``run_events`` call is one monitoring round: every tenant's
    branch trace goes through its *own* staged dataplane (tenant trace
    paths are independent hardware and proceed in parallel), the
    resulting vector deliveries are merged in global time order, and
    the shared engine serves the lanes under round-robin arbitration.
    """

    def __init__(
        self,
        deployments: Sequence[Deployment],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not deployments:
            raise SocConfigError("SocManager needs at least one tenant")
        names = [d.name for d in deployments]
        if len(set(names)) != len(names):
            raise SocConfigError(f"duplicate tenant names in {names}")
        engines = {id(d.driver.gpu) for d in deployments}
        if len(engines) != 1:
            raise SocConfigError(
                "all tenants must share a single ML-MIAOW engine; "
                "build every driver around the same Gpu instance"
            )
        self.metrics = metrics or NULL_REGISTRY
        self.tenants: List[TenantRuntime] = [
            TenantRuntime(
                index,
                deployment,
                metrics=(
                    MetricsRegistry()
                    if self.metrics.enabled
                    else NULL_REGISTRY
                ),
            )
            for index, deployment in enumerate(deployments)
        ]
        self.arbiter = ArbitratedMcm(
            [tenant.mcm for tenant in self.tenants], metrics=self.metrics
        )
        self._m_runs = self.metrics.counter("socmgr.runs")
        self._m_events = self.metrics.counter("socmgr.events")
        self._m_vectors = self.metrics.counter("socmgr.vectors")

    def tenant(self, name: str) -> TenantRuntime:
        for runtime in self.tenants:
            if runtime.name == name:
                return runtime
        raise SocConfigError(f"unknown tenant {name!r}")

    def run_events(
        self, traces: Mapping[str, Sequence[BranchEvent]]
    ) -> Dict[str, List[InferenceRecord]]:
        """One monitoring round; per-tenant records from this round.

        ``traces`` maps tenant names to branch event streams; tenants
        without an entry idle this round.  Unknown names are refused
        rather than silently ignored.
        """
        known = {runtime.name for runtime in self.tenants}
        unknown = set(traces) - known
        if unknown:
            raise SocConfigError(f"unknown tenants {sorted(unknown)}")
        with self.metrics.trace(
            "socmgr.run_events", tenants=len(self.tenants)
        ):
            self.arbiter.reset_session()
            for runtime in self.tenants:
                runtime.reset()
                events = traces.get(runtime.name, ())
                self._m_events.inc(len(events))
                if len(events):
                    runtime.pipeline.run(events)
            merged: List[Tuple[float, int, int, InputVector]] = []
            for runtime in self.tenants:
                for order, (vector, deliver_ns) in enumerate(
                    runtime.schedule
                ):
                    merged.append(
                        (deliver_ns, runtime.index, order, vector)
                    )
            merged.sort(key=lambda entry: entry[:3])
            for deliver_ns, lane, _, vector in merged:
                self.arbiter.push(lane, vector, deliver_ns)
            self._m_vectors.inc(len(merged))
            self.arbiter.finalize()
            self._m_runs.inc()
            return {
                runtime.name: runtime.take_new_records()
                for runtime in self.tenants
            }
