"""Software baselines: the comparison points of Figs. 6 and 7.

Fig. 6 compares RTAD's host overhead against three software
collection mechanisms:

- ``SW_SYS``  — strace-style syscall interception (two ptrace stops
  per call, each a context-switch round trip);
- ``SW_FUNC`` — binary instrumentation at function entries (spill a
  register pair, store caller/callee, advance a buffer pointer);
- ``SW_ALL``  — inline instrumentation on *every* branch (a single
  address store plus pointer bump — the cheapest possible dump).

Each mechanism's overhead is its per-event instruction tax times the
benchmark's event rate; RTAD's is the (nearly free) PTM interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.bus import AxiBus
from repro.soc.clocks import CPU_CLOCK
from repro.workloads.profiles import BenchmarkProfile


@dataclass(frozen=True)
class SoftwareInstrumentationModel:
    """Per-event costs of the three software mechanisms."""

    #: strace: 2 ptrace stops x (context switch + decode) per syscall.
    syscall_trace_ns: float = 26_500.0
    #: per traced function call: spill, stores, reload (~13.5 insts).
    func_dump_instructions: float = 13.5
    #: per traced branch: one store + pointer increment (~2.5 insts).
    branch_dump_instructions: float = 2.46

    def sw_sys_overhead(self, profile: BenchmarkProfile) -> float:
        """Fractional slowdown of syscall tracing."""
        return profile.syscall_rate_hz * self.syscall_trace_ns * 1e-9

    def sw_func_overhead(self, profile: BenchmarkProfile) -> float:
        """Fractional slowdown of function-entry instrumentation:
        extra instructions per instruction executed."""
        return (
            profile.calls_per_kinst / 1e3 * self.func_dump_instructions
        )

    def sw_all_overhead(self, profile: BenchmarkProfile) -> float:
        """Fractional slowdown of all-branch instrumentation."""
        return (
            profile.branches_per_kinst / 1e3 * self.branch_dump_instructions
        )


@dataclass(frozen=True)
class RtadOverheadModel:
    """Host cost of running with the MLPU attached.

    "MLPU has no feedback signal to the CPU that interferes with the
    processor critical paths" — the only cost is the enabled PTM
    interface occasionally back-pressuring the core's store buffer
    when the trace FIFO drains.
    """

    #: CPU stall cycles per retired branch due to the PTM interface.
    ptm_stall_cycles_per_branch: float = 0.0037

    def overhead(self, profile: BenchmarkProfile) -> float:
        branches_per_cycle = (
            profile.branches_per_kinst / 1e3 / profile.cpi
        )
        return branches_per_cycle * self.ptm_stall_cycles_per_branch


@dataclass(frozen=True)
class SoftwareTransferModel:
    """The pure-software inference data path of Fig. 7.

    (1) read the gathered branch addresses out of the instrumentation
    buffer, (2) refine them into the input-vector form, (3) copy the
    vector into the MCM peripheral memory.  Step costs are CPU work at
    250 MHz plus the AXI copy model.
    """

    bus: AxiBus = AxiBus()
    #: cycles to read one gathered branch record (buffer + bounds).
    read_cycles_per_event: float = 17.0
    #: cycles per event for the address-map lookup + vector encode.
    vectorize_cycles_per_event: float = 103.0
    #: fixed vectorization overhead (function calls, window bookkeeping).
    vectorize_setup_cycles: float = 197.0

    def read_ns(self, window: int) -> float:
        return CPU_CLOCK.to_ns(self.read_cycles_per_event * window)

    def vectorize_ns(self, window: int) -> float:
        return CPU_CLOCK.to_ns(
            self.vectorize_setup_cycles
            + self.vectorize_cycles_per_event * window
        )

    def copy_ns(self, words: int) -> float:
        return self.bus.cpu_copy_ns(words)

    def total_ns(self, window: int, words: int) -> float:
        return (
            self.read_ns(window)
            + self.vectorize_ns(window)
            + self.copy_ns(words)
        )
