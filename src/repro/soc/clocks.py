"""Clock domains of the RTAD prototype.

"RTAD modules are configured to operate at 125 MHz except for
ML-MIAOW which can satisfy timing constraints only when the clock
frequency set to 50 MHz.  The CPU clock is lowered to 250 MHz to
emulate the performance ratio between the host and the coprocessors
in most AP systems."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SocConfigError


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with cycle/time conversions."""

    name: str
    hz: float

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise SocConfigError(f"clock {self.name} must be positive")

    @property
    def period_ns(self) -> float:
        return 1e9 / self.hz

    def to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def to_us(self, cycles: float) -> float:
        return self.to_ns(cycles) / 1e3

    def cycles(self, ns: float) -> float:
        return ns / self.period_ns

    def __str__(self) -> str:
        return f"{self.name}@{self.hz / 1e6:.0f}MHz"


CPU_CLOCK = ClockDomain("cpu", 250_000_000)
RTAD_CLOCK = ClockDomain("rtad", 125_000_000)
GPU_CLOCK = ClockDomain("ml_miaow", 50_000_000)
