"""Per-event reference dataplane as a reusable tenant component.

:class:`LoopDataplane` packages the per-event trace path of
:meth:`repro.soc.rtad.RtadSoc._run_events_loop` — CoreSight PTM/TPIU
byte emission, PTM-FIFO batching, address map + vector encode, and
timed delivery into a sink — behind the same ``run`` / ``reset`` /
``export_state`` surface as the staged :class:`repro.pipeline.Pipeline`.
That lets :class:`repro.soc.manager.TenantRuntime` host either
implementation per tenant (``RtadConfig.dataplane``), and lets the
crash-recovery harness assert replay equivalence on both.

Fault channels reuse the batched stages' pure helpers
(:func:`repro.faults.stages.apply_event_faults`,
:class:`repro.faults.stages.VectorOverflowModel`), so for one
:class:`~repro.faults.plan.FaultPlan` the two dataplanes inject the
identical pattern.  The ``CHUNK_CORRUPT`` channel is batched-only by
construction: there are no in-flight chunks here to corrupt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.coresight.ptm import PtmConfig
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import InputVector, VectorEncoder
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.clocks import CPU_CLOCK, RTAD_CLOCK, ClockDomain
from repro.soc.cpu import PtmFifoModel
from repro.workloads.cfg import BranchEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.faults.stages import VectorOverflowModel
    from repro.frontends.base import TraceDriver, TraceFrontend


class LoopDataplane:
    """Per-event trace path: PTM -> FIFO -> IGM -> sink, one event at
    a time.  Behaviour-identical to the five-stage batched pipeline
    built by :func:`repro.pipeline.build_trace_pipeline` on the same
    mapper/encoder/sink (the differential tests pin this)."""

    def __init__(
        self,
        mapper: AddressMapper,
        encoder: VectorEncoder,
        sink: Callable[[InputVector, float], None],
        *,
        ptm_config: Optional[PtmConfig] = None,
        tpiu_sync_period: int = 64,
        fifo_threshold_bytes: int = 176,
        port_clock: ClockDomain = RTAD_CLOCK,
        igm_pipe_ns: float = 24.0,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan: Optional["FaultPlan"] = None,
        frontend: Optional["TraceFrontend"] = None,
    ) -> None:
        self.mapper = mapper
        self.encoder = encoder
        self.sink = sink
        self.igm_pipe_ns = igm_pipe_ns
        self.metrics = metrics or NULL_REGISTRY
        self.fault_plan = fault_plan
        if frontend is None:
            # Deferred import: repro.frontends late-binds its builtins.
            from repro.frontends.coresight import CoreSightFrontend

            frontend = CoreSightFrontend(
                ptm_config=ptm_config, sync_period=tpiu_sync_period
            )
        elif ptm_config is not None:
            raise ValueError(
                "pass ptm_config through the frontend, not alongside it"
            )
        self.frontend = frontend
        # Created disabled; ``run`` powers it up at first use so no
        # trace bytes exist before the session starts.
        self.driver: "TraceDriver" = frontend.create_driver(
            metrics=self.metrics
        )
        self.fifo = PtmFifoModel(
            threshold_bytes=fifo_threshold_bytes,
            port_clock=port_clock,
            metrics=self.metrics,
        )
        self._overflow: Optional["VectorOverflowModel"] = None
        if fault_plan is not None and not fault_plan.is_noop:
            from repro.faults.plan import FaultKind
            from repro.faults.stages import VectorOverflowModel

            if fault_plan.spec(FaultKind.FIFO_OVERFLOW) is not None:
                self._overflow = VectorOverflowModel(fault_plan)
        # Counter names match the batched fault stages so either
        # dataplane reports injected losses identically.
        self._m_ev_dropped = self.metrics.counter("faults.events.dropped")
        self._m_ev_duplicated = self.metrics.counter(
            "faults.events.duplicated"
        )
        self._m_ev_corrupted = self.metrics.counter(
            "faults.events.corrupted"
        )
        self._m_vec_dropped = self.metrics.counter("faults.vectors.dropped")
        self._m_read = self.metrics.histogram("pipeline.read_ns")
        self._m_vectorize = self.metrics.histogram("pipeline.vectorize_ns")
        self._injected_drops = 0

    @property
    def fault_drops(self) -> int:
        """Losses this dataplane injected (health-machine accounting).

        Same contract as the batched fault stages' ``fault_drops``:
        event drops plus overflow vector drops.
        """
        overflow = self._overflow.dropped if self._overflow else 0
        return self._injected_drops + overflow

    @property
    def coresight(self) -> "TraceDriver":
        """Back-compat alias for the frontend driver."""
        return self.driver

    def reset(self) -> None:
        """New trace session: fresh encoder/link context, empty FIFO."""
        self.driver.disable()
        self.driver.enable()
        self.fifo.reset()
        if self._overflow is not None:
            self._overflow.reset()

    def run(self, events: Sequence[BranchEvent]) -> None:
        """Feed a whole event stream through, then flush the tail."""
        if not len(events):
            return
        if not self.driver.enabled:
            self.driver.enable()
        plan = self.fault_plan
        if plan is not None and not plan.is_noop:
            from repro.faults.stages import apply_event_faults

            events, counts = apply_event_faults(events, plan)
            if counts:
                self._injected_drops += counts.dropped
                self._m_ev_dropped.inc(counts.dropped)
                self._m_ev_duplicated.inc(counts.duplicated)
                self._m_ev_corrupted.inc(counts.corrupted)
            if not len(events):
                return
        pending: List[InputVector] = []
        for event in events:
            time_ns = CPU_CLOCK.to_ns(event.cycle)
            chunk = self.driver.trace(event)
            index = self.mapper.lookup(event.target)
            if index is not None:
                vector = self.encoder.push(
                    index=index, address=event.target, cycle=event.cycle
                )
                if vector is not None:
                    pending.append(vector)
            flushed = self.fifo.push(time_ns, len(chunk))
            if flushed is not None:
                self._deliver(pending, flushed)
                pending = []
        tail = self.driver.flush()
        last_ns = CPU_CLOCK.to_ns(events[-1].cycle)
        # The tail push may itself cross the threshold and drain the
        # FIFO; keep that handle, or the explicit session-end flush
        # sees an empty FIFO and the pending vectors are lost.
        flushed = self.fifo.push(last_ns, len(tail))
        if flushed is None:
            flushed = self.fifo.flush(last_ns)
        if flushed is not None:
            self._deliver(pending, flushed)

    def _deliver(
        self, vectors: List[InputVector], flush_ns: float
    ) -> None:
        for vector in vectors:
            if self._overflow is not None and not self._overflow.admit():
                self._m_vec_dropped.inc()
                continue
            trigger_ns = CPU_CLOCK.to_ns(vector.trigger_cycle)
            self._m_read.observe(max(0.0, flush_ns - trigger_ns))
            self._m_vectorize.observe(self.igm_pipe_ns)
            self.sink(vector, flush_ns + self.igm_pipe_ns)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Carry state for checkpointing, mirroring Pipeline's shape.

        The driver contributes its own sub-documents (``ptm``/``tpiu``
        for CoreSight, ``encoder``/``framer`` for E-Trace) so the
        CoreSight layout stays byte-identical to the pre-frontend one.
        """
        state = {
            **self.driver.export_state(),
            "fifo": self.fifo.export_state(),
            "injected_drops": self._injected_drops,
        }
        if self._overflow is not None:
            state["overflow"] = {
                "index": self._overflow._index,
                "burst_left": self._overflow._burst_left,
                "dropped": self._overflow.dropped,
            }
        return state

    def restore_state(self, state: dict) -> None:
        self.driver.restore_state(state)
        self.fifo.restore_state(state["fifo"])
        self._injected_drops = state["injected_drops"]
        if self._overflow is not None and "overflow" in state:
            self._overflow._index = state["overflow"]["index"]
            self._overflow._burst_left = state["overflow"]["burst_left"]
            self._overflow.dropped = state["overflow"]["dropped"]
