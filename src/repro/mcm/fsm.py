"""MCM control FSM.

State machine from Fig. 3's description: WAIT_INPUT until the FIFO has
a vector, READ_INPUT to pull it, WRITE_INPUT while the TX engine
drives the engine's memory and control registers, WAIT_DONE during
kernel execution, READ_RESULT while the RX engine fetches the outcome,
then back to WAIT_INPUT.  Illegal events raise — the RTL equivalent of
an assertion, which the protocol tests exercise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import FsmProtocolError


class McmState(enum.Enum):
    WAIT_INPUT = "WAIT_INPUT"
    READ_INPUT = "READ_INPUT"
    WRITE_INPUT = "WRITE_INPUT"
    WAIT_DONE = "WAIT_DONE"
    READ_RESULT = "READ_RESULT"


_TRANSITIONS = {
    (McmState.WAIT_INPUT, "input_available"): McmState.READ_INPUT,
    (McmState.READ_INPUT, "vector_read"): McmState.WRITE_INPUT,
    (McmState.WRITE_INPUT, "engine_started"): McmState.WAIT_DONE,
    (McmState.WAIT_DONE, "computation_done"): McmState.READ_RESULT,
    (McmState.READ_RESULT, "result_read"): McmState.WAIT_INPUT,
}


@dataclass
class ControlFsm:
    """The MCM sequencer, with a transition trace for inspection."""

    state: McmState = McmState.WAIT_INPUT
    history: List[Tuple[float, McmState]] = field(default_factory=list)
    #: RTAD-clock cycles of control overhead charged per transition.
    cycles_per_transition: int = 2

    def fire(self, event: str, time_ns: float = 0.0) -> McmState:
        """Apply an event; returns the new state."""
        key = (self.state, event)
        if key not in _TRANSITIONS:
            raise FsmProtocolError(
                f"event {event!r} illegal in state {self.state.value}"
            )
        self.state = _TRANSITIONS[key]
        self.history.append((time_ns, self.state))
        return self.state

    def run_inference_sequence(self, time_ns: float = 0.0) -> int:
        """Drive one full WAIT_INPUT -> ... -> WAIT_INPUT round.

        Returns the number of transitions (x ``cycles_per_transition``
        gives the FSM's control-cycle overhead per inference).
        """
        events = (
            "input_available", "vector_read", "engine_started",
            "computation_done", "result_read",
        )
        for event in events:
            self.fire(event, time_ns)
        return len(events)

    @property
    def control_cycles_per_inference(self) -> int:
        return 5 * self.cycles_per_transition
