"""MCM top level: FIFO + FSM + engines + driver + interrupt manager.

Timing model per inference (all converted to nanoseconds):

- FSM control transitions at the RTAD module clock (125 MHz),
- TX engine write burst (vector + control registers),
- kernel execution at the ML-MIAOW clock (50 MHz), one dispatch per
  phase with an FSM round per dispatch,
- RX engine result read,

with a single-server queue in front (the internal FIFO): a vector
arriving while the pipeline is busy waits, and arrivals that find the
FIFO full are dropped — the branch-information loss the paper reports
for branch-heavy workloads under the untrimmed engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import McmError
from repro.igm.vector_encoder import InputVector
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter, RxEngine, TxEngine
from repro.mcm.fifo import InternalFifo
from repro.mcm.fsm import ControlFsm
from repro.mcm.interrupt import InterruptManager
from repro.ml.detector import ThresholdDetector
from repro.obs import MetricsRegistry, NULL_REGISTRY

RTAD_CLOCK_HZ = 125_000_000
GPU_CLOCK_HZ = 50_000_000


@dataclass(frozen=True)
class McmConfig:
    fifo_depth: int = 16
    rtad_clock_hz: float = RTAD_CLOCK_HZ
    gpu_clock_hz: float = GPU_CLOCK_HZ
    #: Judge the rolling mean of the last k scores rather than single
    #: scores.  Sequence models ([8]) score *runs* of branches: one
    #: surprising branch is normal, a run of them is an attack.  The
    #: hardware analogue is a small accumulator in the interrupt
    #: manager.  k=1 disables smoothing (the ELM configuration).
    score_smoothing: int = 1
    #: Dual-run voting: run every inference twice (restoring the model
    #: state in between so recurrent models see identical inputs) and
    #: flag records whose two scores disagree.  Catches silent engine
    #: corruption at the cost of doubling the model work.
    dual_run: bool = False


@dataclass(frozen=True)
class InferenceRecord:
    """One completed inference with its full latency breakdown."""

    sequence_number: int
    trigger_cycle: int        # CPU cycle of the branch that triggered it
    arrival_ns: float         # vector arrival at the MCM FIFO
    start_ns: float           # service start (READ_INPUT)
    done_ns: float            # judgment available (interrupt time)
    score: float
    anomalous: Optional[bool]
    gpu_cycles: int
    #: Dual-run voting verdict: None when voting is off, else whether
    #: the second (redundant) run disagreed with the first.
    divergent: Optional[bool] = None

    @property
    def queue_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.done_ns - self.start_ns


class Mcm:
    """The ML Computing Module."""

    def __init__(
        self,
        driver: MlMiaowDriver,
        converter: ProtocolConverter,
        detector: Optional[ThresholdDetector] = None,
        config: Optional[McmConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if converter.kind != driver.kind:
            raise McmError(
                f"converter kind {converter.kind!r} does not match "
                f"driver kind {driver.kind!r}"
            )
        self.driver = driver
        self.converter = converter
        self.detector = detector
        self.config = config or McmConfig()
        self.fifo: InternalFifo[InputVector] = InternalFifo(
            depth=self.config.fifo_depth
        )
        self.fsm = ControlFsm()
        self.tx = TxEngine()
        self.rx = RxEngine()
        self.interrupts = InterruptManager()
        self.records: List[InferenceRecord] = []
        self._busy_until_ns = 0.0
        self._recent_scores: List[float] = []
        self.cancelled = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_vectors_in = self.metrics.counter("mcm.vectors_in")
        self._m_drops = self.metrics.counter("mcm.dropped_vectors")
        self._m_cancelled = self.metrics.counter("mcm.cancelled")
        self._m_inferences = self.metrics.counter("mcm.inferences")
        self._m_interrupts = self.metrics.counter("mcm.interrupts")
        self._m_fifo_depth = self.metrics.gauge("mcm.fifo.depth")
        self._m_queue = self.metrics.histogram("mcm.queue_ns")
        self._m_service = self.metrics.histogram("mcm.service_ns")
        self._m_control = self.metrics.histogram("mcm.control_ns")
        self._m_copy = self.metrics.histogram("mcm.copy_ns")
        self._m_gpu = self.metrics.histogram("mcm.gpu_ns")
        self._m_rx = self.metrics.histogram("mcm.rx_ns")
        self._m_dual_runs = self.metrics.counter("mcm.dual_run.runs")
        self._m_divergences = self.metrics.counter(
            "mcm.dual_run.divergences"
        )
        self._m_drain_batch = self.metrics.histogram(
            "mcm.drain.batch_vectors",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
        )
        # Per-inference constants hoisted off the service path.  Both
        # are pure-int precomputes fed into the *same* float formulas
        # as before, so every timing record stays byte-identical; only
        # the per-service attribute chases and the RX cycle recount go
        # away.
        self._control_cycles = self.fsm.control_cycles_per_inference
        self._rx_cycles = self.rx.cycles(self.driver.result_words)

    # ------------------------------------------------------------------
    # Clock conversions
    # ------------------------------------------------------------------

    def _rtad_ns(self, cycles: int) -> float:
        return cycles / self.config.rtad_clock_hz * 1e9

    def _gpu_ns(self, cycles: int) -> float:
        return cycles / self.config.gpu_clock_hz * 1e9

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def push(self, vector: InputVector, arrival_ns: float) -> bool:
        """Vector arrival from the IGM; returns False if dropped."""
        self._drain(until_ns=arrival_ns)
        self._m_vectors_in.inc()
        accepted = self.fifo.push(vector, arrival_ns)
        if accepted:
            self._m_fifo_depth.set(len(self.fifo))
        else:
            self._m_drops.inc()
        return accepted

    def finalize(self) -> List[InferenceRecord]:
        """Process everything still queued; returns all records."""
        self._drain(until_ns=float("inf"))
        return self.records

    # ------------------------------------------------------------------
    # Arbitrated mode (multi-tenant sharing of one engine)
    # ------------------------------------------------------------------

    def enqueue(self, vector: InputVector, arrival_ns: float) -> bool:
        """FIFO admission only — no service.

        Used when an external arbiter owns the shared busy window and
        decides when each lane's head is served
        (:class:`repro.mcm.arbiter.ArbitratedMcm`).
        """
        self._m_vectors_in.inc()
        accepted = self.fifo.push(vector, arrival_ns)
        if accepted:
            self._m_fifo_depth.set(len(self.fifo))
        else:
            self._m_drops.inc()
        return accepted

    def serve_head(
        self, start_ns: float, extra_service_ns: float = 0.0
    ) -> float:
        """Serve the queued head starting at ``start_ns``; return the
        completion time.  The caller (arbiter) owns start-time policy;
        all timing math, scoring, smoothing, and interrupt behaviour
        are this lane's own.  ``extra_service_ns`` models an injected
        service stall (fault testing): it extends this one service."""
        entry = self.fifo.pop()
        if entry is None:
            raise McmError("serve_head on an empty FIFO")
        self._m_fifo_depth.set(len(self.fifo))
        self._serve(
            entry.item, entry.arrival_ns, start_ns,
            extra_ns=extra_service_ns,
        )
        return self._busy_until_ns

    def serve_head_prepared(
        self,
        start_ns: float,
        converted,
        result,
        extra_service_ns: float = 0.0,
    ) -> float:
        """Serve the queued head with an already-computed inference.

        Used by the arbiter's batched dispatch path: the fused GPU run
        already produced this head's :class:`~repro.mcm.driver.DriverResult`
        (bit-identical to what :meth:`~repro.mcm.driver.MlMiaowDriver.run_inference`
        would return), so service here is timing math, scoring, and
        records only.  ``converted`` is the protocol-converted input —
        the TX word count still depends on it.
        """
        entry = self.fifo.pop()
        if entry is None:
            raise McmError("serve_head_prepared on an empty FIFO")
        self._m_fifo_depth.set(len(self.fifo))
        self._serve(
            entry.item, entry.arrival_ns, start_ns,
            extra_ns=extra_service_ns,
            converted=converted, result=result,
        )
        return self._busy_until_ns

    def record_drain_batch(self, served: int) -> None:
        """Observe one externally-driven drain burst.

        Arbitrated lanes are drained by :class:`ArbitratedMcm`, which
        bypasses :meth:`_drain`; the arbiter reports each lane's
        per-burst serve count here so ``mcm.drain.batch_vectors`` sums
        to the lane's total served inferences in every mode.
        """
        if served:
            self._m_drain_batch.observe(served)

    def cancel_head(self) -> InputVector:
        """Drop the queued head *without* serving it (watchdog expiry).

        The request is counted in ``cancelled`` / ``mcm.cancelled`` and
        produces no record, no score, and no interrupt — exactly what a
        hardware watchdog abort looks like from the record stream."""
        entry = self.fifo.pop()
        if entry is None:
            raise McmError("cancel_head on an empty FIFO")
        self._m_fifo_depth.set(len(self.fifo))
        self.cancelled += 1
        self._m_cancelled.inc()
        return entry.item

    def reset_session(self) -> None:
        """Forget per-session timing state (new trace session).

        The engine goes idle and the score-smoothing accumulator
        empties; accumulated ``records``/``interrupts`` and every
        counter are preserved — they are the lifetime log.
        """
        self._busy_until_ns = 0.0
        self._recent_scores.clear()

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------

    def _drain(self, until_ns: float) -> None:
        """Start (and finish) services that begin before ``until_ns``."""
        served = 0
        while not self.fifo.empty:
            head = self.fifo.peek()
            start_ns = max(head.arrival_ns, self._busy_until_ns)
            if start_ns >= until_ns:
                break
            entry = self.fifo.pop()
            self._serve(entry.item, entry.arrival_ns, start_ns)
            served += 1
        if served:
            self._m_drain_batch.observe(served)

    def _serve(
        self,
        vector: InputVector,
        arrival_ns: float,
        start_ns: float,
        extra_ns: float = 0.0,
        converted=None,
        result=None,
    ) -> None:
        divergent: Optional[bool] = None
        if result is None:
            converted = self.converter.convert(vector.values)
            pre_state = (
                self.driver.export_model_state()
                if self.config.dual_run
                else None
            )
            result = self.driver.run_inference(converted)
            if self.config.dual_run:
                # Redundant second run from the same model state;
                # recurrent state is rewound before and restored after,
                # so the vote costs work but never perturbs the
                # inference stream.
                post_state = self.driver.export_model_state()
                self.driver.restore_model_state(pre_state)
                second = self.driver.run_inference(converted)
                self.driver.restore_model_state(post_state)
                divergent = bool(second.score != result.score)
                self._m_dual_runs.inc()
                if divergent:
                    self._m_divergences.inc()
        phases = result.phases

        control_ns = self._rtad_ns(
            self._control_cycles * phases.num_dispatches
        )
        tx_ns = self._rtad_ns(
            self.tx.cycles(self.converter.words_for(converted))
        )
        gpu_ns = self._gpu_ns(phases.total_cycles)
        rx_ns = self._rtad_ns(self._rx_cycles)
        done_ns = start_ns + control_ns + tx_ns + gpu_ns + rx_ns + extra_ns
        self.fsm.run_inference_sequence(time_ns=start_ns)

        judged_score = result.score
        k = self.config.score_smoothing
        if k > 1:
            self._recent_scores.append(result.score)
            if len(self._recent_scores) > k:
                self._recent_scores.pop(0)
            judged_score = float(np.mean(self._recent_scores))

        anomalous: Optional[bool] = None
        if self.detector is not None:
            anomalous = bool(self.detector.is_anomalous(judged_score))
            if anomalous:
                self.interrupts.fire(
                    time_ns=done_ns,
                    score=judged_score,
                    sequence_number=vector.sequence_number,
                )
                self._m_interrupts.inc()
        self._m_inferences.inc()
        self._m_queue.observe(start_ns - arrival_ns)
        self._m_service.observe(done_ns - start_ns)
        self._m_control.observe(control_ns)
        self._m_copy.observe(tx_ns)
        self._m_gpu.observe(gpu_ns)
        self._m_rx.observe(rx_ns)
        self.records.append(
            InferenceRecord(
                sequence_number=vector.sequence_number,
                trigger_cycle=vector.trigger_cycle,
                arrival_ns=arrival_ns,
                start_ns=start_ns,
                done_ns=done_ns,
                score=result.score,
                anomalous=anomalous,
                gpu_cycles=phases.total_cycles,
                divergent=divergent,
            )
        )
        self._busy_until_ns = done_ns

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Lifetime + session state for checkpointing.

        Requires a quiescent MCM (empty FIFO — guaranteed at round
        boundaries after ``finalize``): queued vectors hold live numpy
        arrays that a checkpoint deliberately does not carry.
        """
        if not self.fifo.empty:
            raise McmError("cannot checkpoint an MCM with queued vectors")
        return {
            "records": [
                {
                    "sequence_number": record.sequence_number,
                    "trigger_cycle": record.trigger_cycle,
                    "arrival_ns": record.arrival_ns,
                    "start_ns": record.start_ns,
                    "done_ns": record.done_ns,
                    "score": float(record.score),
                    "anomalous": record.anomalous,
                    "gpu_cycles": record.gpu_cycles,
                    "divergent": record.divergent,
                }
                for record in self.records
            ],
            "cancelled": self.cancelled,
            "busy_until_ns": self._busy_until_ns,
            "recent_scores": [float(s) for s in self._recent_scores],
            "fifo": {
                "pushes": self.fifo.pushes,
                "drops": self.fifo.drops,
                "max_occupancy": self.fifo.max_occupancy,
            },
            "interrupts": [
                {
                    "time_ns": interrupt.time_ns,
                    "score": float(interrupt.score),
                    "sequence_number": interrupt.sequence_number,
                }
                for interrupt in self.interrupts.fired
            ],
        }

    def restore_state(self, state: dict) -> None:
        from repro.mcm.interrupt import Interrupt

        self.records = [
            InferenceRecord(**doc) for doc in state["records"]
        ]
        self.cancelled = state["cancelled"]
        self._busy_until_ns = state["busy_until_ns"]
        self._recent_scores = list(state["recent_scores"])
        self.fifo.pushes = state["fifo"]["pushes"]
        self.fifo.drops = state["fifo"]["drops"]
        self.fifo.max_occupancy = state["fifo"]["max_occupancy"]
        self.interrupts.fired = [
            Interrupt(**doc) for doc in state["interrupts"]
        ]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def dropped_vectors(self) -> int:
        return self.fifo.drops

    @property
    def overflowed(self) -> bool:
        return self.fifo.overflowed
