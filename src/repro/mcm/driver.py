"""ML-MIAOW driver: the kernel-sequencing layer of the MCM.

Binds one deployed model to one GPU engine and runs inferences.  Two
execution modes:

- **exact** (``execute_on_gpu=True``): every inference actually runs
  on the GPU simulator.  When the engine's fast path is eligible the
  dispatches go through :mod:`repro.miaow.compiler`'s cached compiled
  executors (bit-identical to the interpreter); either way this mode
  is used by correctness tests and the equivalence checks.
- **calibrated** (``execute_on_gpu=False``): kernel cycle counts are
  measured once on the real simulator (they are data-independent —
  every kernel loop has a fixed trip count) and reused, while scores
  come from the float32 reference twin.  Used by the long Fig. 8
  queueing simulations, where thousands of inferences would otherwise
  make wall-clock time explode without changing a single cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import McmError
from repro.miaow.gpu import Gpu
from repro.ml.kernels import (
    DeployedElm,
    DeployedLstm,
    DeployedMlp,
    elm_infer_indices_batch,
    lstm_infer_batch,
    mlp_infer_batch,
)
from repro.obs import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class InferencePhases:
    """GPU cycle accounting of one inference."""

    names: Sequence[str]
    cycles: Sequence[int]

    @property
    def total_cycles(self) -> int:
        return int(sum(self.cycles))

    @property
    def num_dispatches(self) -> int:
        return len(self.cycles)


@dataclass
class DriverResult:
    score: float
    phases: InferencePhases


class MlMiaowDriver:
    """Host-side sequencing of kernel dispatches per inference."""

    def __init__(
        self,
        deployment: Union[DeployedElm, DeployedLstm, DeployedMlp],
        gpu: Gpu,
        execute_on_gpu: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.deployment = deployment
        self.gpu = gpu
        self.execute_on_gpu = execute_on_gpu
        self.metrics = metrics or NULL_REGISTRY
        self._bind_instruments()
        if isinstance(deployment, DeployedElm):
            self.kind = "elm"
        elif isinstance(deployment, DeployedMlp):
            self.kind = "mlp"
        else:
            self.kind = "lstm"
        deployment.load(gpu)
        self._reference = None
        self._cached_phases = self._measure_phases()
        if not execute_on_gpu:
            self._reference = self._make_reference()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _bind_instruments(self) -> None:
        registry = self.metrics
        self._m_inferences = registry.counter("driver.inferences")
        self._m_launches = registry.counter("driver.kernel_launches")
        self._m_gpu_cycles = registry.counter("driver.gpu_cycles")

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Late-attach a registry (the SoC binds its own at assembly).

        The warm-up calibration inference in the constructor is *not*
        retro-counted: metrics bound here see only real traffic.
        """
        self.metrics = metrics
        self._bind_instruments()
        self.gpu.bind_metrics(metrics)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _measure_phases(self) -> InferencePhases:
        """One warm-up inference to record per-phase cycles.

        The ELM warm-up uses a typical all-in-dictionary input (M =
        positions): normal traffic gathers one weight column per
        n-gram position, while anomalous windows add a few unseen-bin
        repeats.  Calibrated mode therefore reflects steady-state
        service time; exact mode measures every inference faithfully.
        """
        if self.kind == "elm":
            indices = np.ones(self.deployment.positions, dtype=np.int64)
            result = self.deployment.infer_indices(indices)
            phases = InferencePhases(
                names=("elm_score",), cycles=(result.dispatch.cycles,)
            )
        elif self.kind == "mlp":
            features = np.full(
                self.deployment.model.input_dim,
                1.0 / self.deployment.model.input_dim,
                dtype=np.float32,
            )
            result = self.deployment.infer(features)
            phases = InferencePhases(
                names=tuple(d.kernel for d in result.dispatches),
                cycles=tuple(d.cycles for d in result.dispatches),
            )
        else:
            result = self.deployment.infer(0)
            phases = InferencePhases(
                names=tuple(d.kernel for d in result.dispatches),
                cycles=tuple(d.cycles for d in result.dispatches),
            )
            self.deployment.reset_state()
        return phases

    def _make_reference(self):
        if self.kind == "lstm":
            return self.deployment.make_reference()
        return None

    @property
    def phases(self) -> InferencePhases:
        """The (data-independent) per-inference GPU cycle breakdown."""
        return self._cached_phases

    def fastpath_stats(self) -> dict:
        """Engine fast-path cache snapshot (benchmarks/diagnostics)."""
        return self.gpu.fastpath_stats()

    @property
    def result_words(self) -> int:
        """Words the RX engine reads back per inference."""
        if self.kind == "elm":
            return self.deployment.num_workgroups
        return 1  # lstm and mlp both produce a single score word

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def run_inference(self, converted_input) -> DriverResult:
        """Run one inference on the bound engine."""
        if self.kind == "elm":
            result = self._run_elm(converted_input)
        elif self.kind == "mlp":
            result = self._run_mlp(converted_input)
        else:
            result = self._run_lstm(converted_input)
        self._m_inferences.inc()
        self._m_launches.inc(result.phases.num_dispatches)
        self._m_gpu_cycles.inc(result.phases.total_cycles)
        return result

    def _run_mlp(self, features: np.ndarray) -> DriverResult:
        if self.execute_on_gpu:
            result = self.deployment.infer(features)
            return DriverResult(
                score=result.score,
                phases=InferencePhases(
                    names=tuple(d.kernel for d in result.dispatches),
                    cycles=tuple(d.cycles for d in result.dispatches),
                ),
            )
        score = self.deployment.reference_score(features)
        return DriverResult(score=score, phases=self._cached_phases)

    def _run_elm(self, pattern_indices: np.ndarray) -> DriverResult:
        if self.execute_on_gpu:
            result = self.deployment.infer_indices(pattern_indices)
            return DriverResult(
                score=result.score,
                phases=InferencePhases(
                    names=("elm_score",), cycles=(result.dispatch.cycles,)
                ),
            )
        # Calibrated mode: score via the f32 reference on dense features.
        dictionary = self.deployment.dictionary
        features = np.zeros((1, dictionary.size), dtype=np.float32)
        for index in np.asarray(pattern_indices):
            features[0, int(index)] += 1
        features /= self.deployment.positions
        score = float(
            self.deployment.model.score_mahalanobis_f32(features)[0]
        )
        return DriverResult(score=score, phases=self._cached_phases)

    def _run_lstm(self, branch_id: int) -> DriverResult:
        if self.execute_on_gpu:
            result = self.deployment.infer(int(branch_id))
            return DriverResult(
                score=result.surprisal,
                phases=InferencePhases(
                    names=tuple(d.kernel for d in result.dispatches),
                    cycles=tuple(d.cycles for d in result.dispatches),
                ),
            )
        score = self._reference.infer(int(branch_id))
        return DriverResult(score=score, phases=self._cached_phases)

    # ------------------------------------------------------------------
    # Cross-tenant batched inference
    # ------------------------------------------------------------------

    def batch_key(self, converted_input) -> Optional[Tuple]:
        """Coalescing compatibility key for one converted input.

        Two inferences may share a fused dispatch iff their keys are
        equal: same model family and the shape parameters that fix the
        kernel digests, workgroup counts, and scalar loop bounds (so
        the fused executor's data-independent cycle counts match every
        member's single-dispatch counts exactly).  Returns ``None``
        when this inference cannot join a batch at all — calibrated
        drivers run no kernels, so there is nothing to fuse.
        """
        if not self.execute_on_gpu:
            return None
        deployment = self.deployment
        if self.kind == "elm":
            # The index count feeds the kernel's scalar loop bound.
            return (
                "elm",
                deployment.model.hidden_dim,
                deployment.num_workgroups,
                len(np.asarray(converted_input)),
            )
        if self.kind == "mlp":
            return (
                "mlp",
                deployment.model.input_dim,
                deployment.model.hidden_dim,
            )
        return ("lstm", deployment.model.hidden_size)

    @staticmethod
    def run_inference_batch(
        drivers: Sequence["MlMiaowDriver"],
        converted_inputs: Sequence,
    ) -> List[DriverResult]:
        """Serve K compatible inferences with fused dispatches.

        All drivers must share one engine and one :meth:`batch_key`
        (the arbiter guarantees both).  Results — scores, phase names,
        and cycle counts — are bit-identical to calling
        :meth:`run_inference` on each driver in turn.
        """
        if len(drivers) != len(converted_inputs):
            raise McmError("one converted input per batched driver")
        first = drivers[0]
        kinds = {driver.kind for driver in drivers}
        if kinds != {first.kind}:
            raise McmError(f"cannot batch across model kinds {kinds}")
        deployments = [driver.deployment for driver in drivers]
        if first.kind == "elm":
            results = elm_infer_indices_batch(deployments, converted_inputs)
            outputs = [
                DriverResult(
                    score=result.score,
                    phases=InferencePhases(
                        names=("elm_score",),
                        cycles=(result.dispatch.cycles,),
                    ),
                )
                for result in results
            ]
        elif first.kind == "mlp":
            results = mlp_infer_batch(deployments, converted_inputs)
            outputs = [
                DriverResult(
                    score=result.score,
                    phases=InferencePhases(
                        names=tuple(d.kernel for d in result.dispatches),
                        cycles=tuple(d.cycles for d in result.dispatches),
                    ),
                )
                for result in results
            ]
        else:
            results = lstm_infer_batch(
                deployments,
                [int(branch_id) for branch_id in converted_inputs],
            )
            outputs = [
                DriverResult(
                    score=result.surprisal,
                    phases=InferencePhases(
                        names=tuple(d.kernel for d in result.dispatches),
                        cycles=tuple(d.cycles for d in result.dispatches),
                    ),
                )
                for result in results
            ]
        for driver, output in zip(drivers, outputs):
            driver._m_inferences.inc()
            driver._m_launches.inc(output.phases.num_dispatches)
            driver._m_gpu_cycles.inc(output.phases.total_cycles)
        return outputs

    def reset(self) -> None:
        """Reset recurrent state (new trace session)."""
        if self.kind == "lstm":
            self.deployment.reset_state()
            if self._reference is not None:
                self._reference = self.deployment.make_reference()

    # ------------------------------------------------------------------
    # Durability (dual-run voting and checkpointing)
    # ------------------------------------------------------------------

    def export_model_state(self):
        """Snapshot the recurrent model state (None for stateless kinds)."""
        if self.kind != "lstm":
            return None
        if self.execute_on_gpu:
            return self.deployment.export_state()
        return self._reference.export_state()

    def restore_model_state(self, state) -> None:
        """Rewind to a snapshot from :meth:`export_model_state`."""
        if self.kind != "lstm":
            return
        if self.execute_on_gpu:
            self.deployment.restore_state(state)
        else:
            self._reference.restore_state(state)
