"""MCM internal FIFO.

"The vector value is temporarily stored in the internal FIFO" — and
when the engine cannot keep up with the branch rate, "the buffer would
overflow and lose newly sent data", which the paper observes for
471.omnetpp under the original MIAOW.  Overflow therefore drops the
*incoming* vector (newly sent data), not queued ones, and is counted
so the SoC can report branch-information loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, Optional, TypeVar

from repro.errors import FifoOverflowError

T = TypeVar("T")


@dataclass(frozen=True)
class FifoEntry(Generic[T]):
    item: T
    arrival_ns: float


class InternalFifo(Generic[T]):
    """Bounded FIFO with overflow accounting."""

    def __init__(self, depth: int = 16, raise_on_overflow: bool = False) -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.raise_on_overflow = raise_on_overflow
        self._queue: Deque[FifoEntry[T]] = deque()
        self.pushes = 0
        self.drops = 0
        self.max_occupancy = 0

    def push(self, item: T, arrival_ns: float) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.depth:
            self.drops += 1
            if self.raise_on_overflow:
                raise FifoOverflowError(
                    f"FIFO overflow at t={arrival_ns:.0f} ns "
                    f"(depth {self.depth})"
                )
            return False
        self._queue.append(FifoEntry(item=item, arrival_ns=arrival_ns))
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))
        return True

    def pop(self) -> Optional[FifoEntry[T]]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def peek(self) -> Optional[FifoEntry[T]]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def overflowed(self) -> bool:
        return self.drops > 0
