"""Round-robin arbitration of one ML-MIAOW across MCM lanes.

Multi-tenant deployments give every tenant its own MCM lane — FIFO,
interrupt manager, score smoothing, records — while a single GPU
engine serves them all.  :class:`ArbitratedMcm` owns the shared busy
window: whenever the engine is free, the lane heads compete and the
grant goes to the earliest-ready head, ties broken round-robin from
the lane after the last grant (no lane can starve under sustained
load).

The per-lane timing model is untouched: a granted head is served by
its own :meth:`repro.mcm.mcm.Mcm.serve_head`, so queueing, service
decomposition, detection, and records behave exactly like a dedicated
engine that happens to be busy more often.

**Watchdog.**  ``deadline_us`` arms a per-service watchdog: a grant
whose service would exceed the deadline (an injected hang, or a stall
at least that long) is *cancelled* instead of served — the head is
dropped from its lane FIFO, the lane's session state is reset via
:meth:`Mcm.reset_session`, the engine is occupied for exactly one
deadline (the abort window), and the trip is counted per lane.  With
no deadline armed, a hang wedges the shared engine until the next
session reset — the failure mode the watchdog exists to prevent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import McmError
from repro.faults.service import ServiceFaultInjector
from repro.igm.vector_encoder import InputVector
from repro.mcm.driver import DriverResult, MlMiaowDriver
from repro.mcm.mcm import InferenceRecord, Mcm
from repro.obs import MetricsRegistry, NULL_REGISTRY

#: One coalesced-but-not-yet-served inference: the head's converted
#: input plus the DriverResult the fused dispatch already produced.
_Prepared = Tuple[object, DriverResult]


class ArbitratedMcm:
    """One shared inference engine multiplexed over N MCM lanes."""

    def __init__(
        self,
        lanes: Sequence[Mcm],
        metrics: Optional[MetricsRegistry] = None,
        deadline_us: Optional[float] = None,
        service_faults: Optional[
            Sequence[Optional[ServiceFaultInjector]]
        ] = None,
        batch_limit: int = 1,
    ) -> None:
        if not lanes:
            raise McmError("arbiter needs at least one lane")
        engines = {id(lane.driver.gpu) for lane in lanes}
        if len(engines) != 1:
            raise McmError(
                "arbitrated lanes must share a single GPU engine"
            )
        if deadline_us is not None and deadline_us <= 0:
            raise McmError("deadline_us must be positive (or None)")
        if service_faults is not None and len(service_faults) != len(lanes):
            raise McmError(
                "service_faults must have one (possibly None) entry "
                "per lane"
            )
        if batch_limit < 1:
            raise McmError("batch_limit must be >= 1")
        self.lanes: List[Mcm] = list(lanes)
        self.deadline_us = deadline_us
        self.batch_limit = batch_limit
        self.service_faults: List[Optional[ServiceFaultInjector]] = (
            list(service_faults)
            if service_faults is not None
            else [None] * len(self.lanes)
        )
        self.watchdog_trips: List[int] = [0] * len(self.lanes)
        self.batch_eligible: List[bool] = [True] * len(self.lanes)
        self._prepared: List[Optional[_Prepared]] = [None] * len(self.lanes)
        self.hung = False
        self._busy_until_ns = 0.0
        self._next_lane = 0
        self.metrics = metrics or NULL_REGISTRY
        self._lane_seq = 0
        self._m_grants = [self._grant_counter() for _ in self.lanes]
        self._m_vectors = self.metrics.counter("mcm.arbiter.vectors_in")
        self._m_watchdog = self.metrics.counter(
            "mcm.arbiter.watchdog.cancelled"
        )
        self._m_hangs = self.metrics.counter("mcm.arbiter.hangs")
        self._m_batch_grants = self.metrics.counter(
            "mcm.arbiter.batch.grants"
        )
        self._m_batch_members = self.metrics.counter(
            "mcm.arbiter.batch.members"
        )

    def _grant_counter(self):
        counter = self.metrics.counter(
            f"mcm.arbiter.grants.{self._lane_seq}"
        )
        self._lane_seq += 1
        return counter

    @property
    def busy_until_ns(self) -> float:
        return self._busy_until_ns

    # ------------------------------------------------------------------
    # Lane membership (tenant removal / re-admission)
    # ------------------------------------------------------------------

    def add_lane(
        self,
        lane: Mcm,
        fault: Optional[ServiceFaultInjector] = None,
    ) -> int:
        """Attach a lane mid-life; returns its index."""
        if id(lane.driver.gpu) != id(self.lanes[0].driver.gpu):
            raise McmError(
                "arbitrated lanes must share a single GPU engine"
            )
        self.lanes.append(lane)
        self.service_faults.append(fault)
        self.watchdog_trips.append(0)
        self.batch_eligible.append(True)
        self._prepared.append(None)
        self._m_grants.append(self._grant_counter())
        return len(self.lanes) - 1

    def remove_lane(self, index: int) -> Mcm:
        """Detach lane ``index``; remaining lanes shift down."""
        if not 0 <= index < len(self.lanes):
            raise McmError(f"no lane {index}")
        if len(self.lanes) == 1:
            raise McmError("arbiter needs at least one lane")
        lane = self.lanes.pop(index)
        self.service_faults.pop(index)
        self.watchdog_trips.pop(index)
        self.batch_eligible.pop(index)
        self._prepared.pop(index)
        self._m_grants.pop(index)
        if self._next_lane > index:
            self._next_lane -= 1
        self._next_lane %= len(self.lanes)
        return lane

    # ------------------------------------------------------------------
    # Dataflow
    # ------------------------------------------------------------------

    def push(
        self, lane_index: int, vector: InputVector, arrival_ns: float
    ) -> bool:
        """Vector arrival on one lane; returns False if that lane's
        FIFO dropped it."""
        self._drain(until_ns=arrival_ns)
        self._m_vectors.inc()
        return self.lanes[lane_index].enqueue(vector, arrival_ns)

    def finalize(self) -> List[List[InferenceRecord]]:
        """Serve everything queued; per-lane record lists."""
        self._drain(until_ns=float("inf"))
        return [lane.records for lane in self.lanes]

    def reset_session(self) -> None:
        self._busy_until_ns = 0.0
        self._next_lane = 0
        self.hung = False
        # Coalesced results not yet served die with the session: after
        # a reset the lanes' drivers may be rewound (new round), so a
        # stale precomputed score could disagree with what a fresh
        # serve would produce.  Discard and recompute at serve time.
        self._prepared = [None] * len(self.lanes)
        for lane in self.lanes:
            lane.reset_session()
        for injector in self.service_faults:
            if injector is not None:
                injector.reset()

    def set_batch_eligible(self, index: int, eligible: bool) -> None:
        """Mark whether lane ``index`` may join fused dispatches.

        The SoC manager clears eligibility for unhealthy tenants:
        batching is a throughput optimisation, and a degraded or
        probationary lane should not share a fused launch.  Ineligible
        lanes still get served — one dispatch at a time.
        """
        if not 0 <= index < len(self.lanes):
            raise McmError(f"no lane {index}")
        self.batch_eligible[index] = bool(eligible)

    def _drain(self, until_ns: float) -> None:
        """Grant the engine to lane heads until none can start before
        ``until_ns``."""
        if self.hung:
            # A hung service with no watchdog owns the engine until
            # the next session reset; queued vectors just wait.
            return
        count = len(self.lanes)
        deadline_ns = (
            None if self.deadline_us is None else self.deadline_us * 1e3
        )
        served = [0] * count
        try:
            while True:
                best_start: Optional[float] = None
                best_lane = -1
                for offset in range(count):
                    index = (self._next_lane + offset) % count
                    head = self.lanes[index].fifo.peek()
                    if head is None:
                        continue
                    start_ns = max(head.arrival_ns, self._busy_until_ns)
                    if best_start is None or start_ns < best_start:
                        best_start = start_ns
                        best_lane = index
                if best_start is None or best_start >= until_ns:
                    return
                extra_ns, hang = 0.0, False
                injector = self.service_faults[best_lane]
                if injector is not None:
                    extra_ns, hang = injector.draw()
                if hang or (
                    deadline_ns is not None and extra_ns >= deadline_ns
                ):
                    if deadline_ns is None:
                        # No watchdog armed: the engine is wedged.
                        self.hung = True
                        self._busy_until_ns = float("inf")
                        self._m_hangs.inc()
                        return
                    self.lanes[best_lane].cancel_head()
                    self.lanes[best_lane].reset_session()
                    self.watchdog_trips[best_lane] += 1
                    self._m_watchdog.inc()
                    # The abort occupies the engine for one full deadline.
                    self._busy_until_ns = best_start + deadline_ns
                    self._next_lane = (best_lane + 1) % count
                    continue
                prepared = self._prepared[best_lane]
                if prepared is None and self.batch_limit > 1:
                    self._fuse(best_lane, best_start)
                    prepared = self._prepared[best_lane]
                if prepared is not None:
                    self._prepared[best_lane] = None
                    converted, result = prepared
                    self._busy_until_ns = self.lanes[
                        best_lane
                    ].serve_head_prepared(
                        best_start,
                        converted,
                        result,
                        extra_service_ns=extra_ns,
                    )
                else:
                    self._busy_until_ns = self.lanes[best_lane].serve_head(
                        best_start, extra_service_ns=extra_ns
                    )
                self._m_grants[best_lane].inc()
                served[best_lane] += 1
                self._next_lane = (best_lane + 1) % count
        finally:
            # Every exit path — idle, horizon reached, hang — reports
            # the burst, so the per-lane drain histogram sums to the
            # lane's total serves even when the queue empties mid-round.
            for index in range(count):
                if served[index]:
                    self.lanes[index].record_drain_batch(served[index])

    def _fuse(self, best_lane: int, best_start: float) -> None:
        """Coalesce compatible queued heads behind ``best_lane``'s grant.

        Scans the other lanes round-robin from the granted lane for
        heads that can ride the same fused dispatch: already arrived,
        batch-eligible, no service-fault injector, no dual-run voting,
        a distinct deployment, and the same
        :meth:`~repro.mcm.driver.MlMiaowDriver.batch_key`.  On success
        the fused results are parked per lane and consumed when each
        member's grant comes up — the serve order, start times, and
        every record stay identical to unbatched arbitration; only the
        host-side GPU compute is shared.
        """
        lane = self.lanes[best_lane]
        if (
            not self.batch_eligible[best_lane]
            or self.service_faults[best_lane] is not None
            or lane.config.dual_run
        ):
            return
        head = lane.fifo.peek()
        leader_input = lane.converter.convert(head.item.values)
        key = lane.driver.batch_key(leader_input)
        if key is None:
            return
        members = [best_lane]
        converted = [leader_input]
        deployments = {id(lane.driver.deployment)}
        count = len(self.lanes)
        for offset in range(1, count):
            if len(members) >= self.batch_limit:
                break
            index = (best_lane + offset) % count
            if (
                not self.batch_eligible[index]
                or self.service_faults[index] is not None
                or self._prepared[index] is not None
            ):
                continue
            other = self.lanes[index]
            if other.config.dual_run:
                continue
            entry = other.fifo.peek()
            if entry is None or entry.arrival_ns > best_start:
                continue
            if id(other.driver.deployment) in deployments:
                continue
            candidate = other.converter.convert(entry.item.values)
            if other.driver.batch_key(candidate) != key:
                continue
            members.append(index)
            converted.append(candidate)
            deployments.add(id(other.driver.deployment))
        if len(members) < 2:
            return
        results = MlMiaowDriver.run_inference_batch(
            [self.lanes[index].driver for index in members], converted
        )
        for position, index in enumerate(members):
            self._prepared[index] = (converted[position], results[position])
        self._m_batch_grants.inc()
        self._m_batch_members.inc(len(members))
