"""Round-robin arbitration of one ML-MIAOW across MCM lanes.

Multi-tenant deployments give every tenant its own MCM lane — FIFO,
interrupt manager, score smoothing, records — while a single GPU
engine serves them all.  :class:`ArbitratedMcm` owns the shared busy
window: whenever the engine is free, the lane heads compete and the
grant goes to the earliest-ready head, ties broken round-robin from
the lane after the last grant (no lane can starve under sustained
load).

The per-lane timing model is untouched: a granted head is served by
its own :meth:`repro.mcm.mcm.Mcm.serve_head`, so queueing, service
decomposition, detection, and records behave exactly like a dedicated
engine that happens to be busy more often.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import McmError
from repro.igm.vector_encoder import InputVector
from repro.mcm.mcm import InferenceRecord, Mcm
from repro.obs import MetricsRegistry, NULL_REGISTRY


class ArbitratedMcm:
    """One shared inference engine multiplexed over N MCM lanes."""

    def __init__(
        self,
        lanes: Sequence[Mcm],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not lanes:
            raise McmError("arbiter needs at least one lane")
        engines = {id(lane.driver.gpu) for lane in lanes}
        if len(engines) != 1:
            raise McmError(
                "arbitrated lanes must share a single GPU engine"
            )
        self.lanes: List[Mcm] = list(lanes)
        self._busy_until_ns = 0.0
        self._next_lane = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_grants = [
            self.metrics.counter(f"mcm.arbiter.grants.{index}")
            for index in range(len(self.lanes))
        ]
        self._m_vectors = self.metrics.counter("mcm.arbiter.vectors_in")

    @property
    def busy_until_ns(self) -> float:
        return self._busy_until_ns

    def push(
        self, lane_index: int, vector: InputVector, arrival_ns: float
    ) -> bool:
        """Vector arrival on one lane; returns False if that lane's
        FIFO dropped it."""
        self._drain(until_ns=arrival_ns)
        self._m_vectors.inc()
        return self.lanes[lane_index].enqueue(vector, arrival_ns)

    def finalize(self) -> List[List[InferenceRecord]]:
        """Serve everything queued; per-lane record lists."""
        self._drain(until_ns=float("inf"))
        return [lane.records for lane in self.lanes]

    def reset_session(self) -> None:
        self._busy_until_ns = 0.0
        self._next_lane = 0
        for lane in self.lanes:
            lane.reset_session()

    def _drain(self, until_ns: float) -> None:
        """Grant the engine to lane heads until none can start before
        ``until_ns``."""
        count = len(self.lanes)
        while True:
            best_start: Optional[float] = None
            best_lane = -1
            for offset in range(count):
                index = (self._next_lane + offset) % count
                head = self.lanes[index].fifo.peek()
                if head is None:
                    continue
                start_ns = max(head.arrival_ns, self._busy_until_ns)
                if best_start is None or start_ns < best_start:
                    best_start = start_ns
                    best_lane = index
            if best_start is None or best_start >= until_ns:
                return
            self._busy_until_ns = self.lanes[best_lane].serve_head(
                best_start
            )
            self._m_grants[best_lane].inc()
            self._next_lane = (best_lane + 1) % count
