"""Interrupt manager: anomaly notification to the host CPU.

"If the results indicate the existence of an anomaly, the interrupt
manager fires an interrupt to the host CPU."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(frozen=True)
class Interrupt:
    """One anomaly interrupt delivered to the host."""

    time_ns: float
    score: float
    sequence_number: int


class InterruptManager:
    """Collects fired interrupts; optionally calls a host handler."""

    def __init__(
        self, handler: Optional[Callable[[Interrupt], None]] = None
    ) -> None:
        self.handler = handler
        self.fired: List[Interrupt] = []

    def fire(self, time_ns: float, score: float, sequence_number: int) -> Interrupt:
        interrupt = Interrupt(
            time_ns=time_ns, score=score, sequence_number=sequence_number
        )
        self.fired.append(interrupt)
        if self.handler is not None:
            self.handler(interrupt)
        return interrupt

    @property
    def count(self) -> int:
        return len(self.fired)

    @property
    def first(self) -> Optional[Interrupt]:
        return self.fired[0] if self.fired else None
