"""TX/RX engines and the protocol converter.

"The TX engine and RX engine are responsible for sending data to
ML-MIAOW and getting data from ML-MIAOW, respectively.  The protocol
converter is used to convert the TX/RX data to the protocol required
by ML-MIAOW."

Costs are in RTAD-module (125 MHz) cycles: an AXI write burst has a
fixed handshake setup plus a per-beat cost; these constants put the
write path at ~0.78 us for a 16-word vector, matching Fig. 7's
measured RTAD step (3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import McmError
from repro.ml.features import PatternDictionary


@dataclass(frozen=True)
class TxEngine:
    """Write path: input vector + control registers into the engine."""

    setup_cycles: int = 65
    cycles_per_word: int = 2

    def cycles(self, num_words: int) -> int:
        if num_words < 0:
            raise McmError("negative transfer size")
        return self.setup_cycles + self.cycles_per_word * num_words


@dataclass(frozen=True)
class RxEngine:
    """Read path: result words out of the engine."""

    setup_cycles: int = 20
    cycles_per_word: int = 2

    def cycles(self, num_words: int) -> int:
        if num_words < 0:
            raise McmError("negative transfer size")
        return self.setup_cycles + self.cycles_per_word * num_words


class ProtocolConverter:
    """Converts IGM vectors into each model's engine-level input.

    - ``"lstm"``: the vector is a single mapped branch ID (the VE runs
      with window=1); the converter passes the ID through.
    - ``"elm"``: the vector is an ID window; the converter looks up the
      configured pattern dictionary and emits the n-gram pattern
      indices the kernel gathers weight columns with.
    - ``"mlp"``: the vector is a histogram (the VE's HISTOGRAM mode);
      the converter normalizes the counts to frequencies, the float
      layout the autoencoder kernels consume.
    """

    def __init__(
        self,
        kind: str,
        dictionary: Optional[PatternDictionary] = None,
    ) -> None:
        if kind not in ("elm", "lstm", "mlp"):
            raise McmError(f"unknown model kind {kind!r}")
        if kind == "elm" and dictionary is None:
            raise McmError("ELM protocol conversion needs a dictionary")
        self.kind = kind
        self.dictionary = dictionary

    def convert(self, values: np.ndarray) -> Union[int, np.ndarray]:
        values = np.asarray(values)
        if self.kind == "lstm":
            if values.size != 1:
                raise McmError(
                    "LSTM deployment expects window=1 vectors "
                    f"(got {values.size})"
                )
            return int(values[0])
        if self.kind == "mlp":
            total = float(values.sum())
            if total <= 0:
                raise McmError("empty histogram vector")
            return (values / total).astype(np.float32)
        return self.dictionary.indices(values)

    def words_for(self, converted) -> int:
        """32-bit words the TX engine must move for a converted input."""
        if self.kind == "lstm":
            return 1
        return int(np.asarray(converted).size)

    def input_words(self, values: np.ndarray) -> int:
        """Worst-case words per vector (for buffer sizing)."""
        if self.kind == "lstm":
            return 1
        if self.kind == "mlp":
            return int(np.asarray(values).size)
        return self.dictionary.max_indices(int(np.asarray(values).size))
