"""ML Computing Module (MCM).

The hardware wrapper around ML-MIAOW (Fig. 3 of the paper): an
internal FIFO absorbing IGM vectors, a control FSM sequencing
WAIT_INPUT -> READ_INPUT -> WRITE_INPUT -> WAIT_DONE -> READ_RESULT,
TX/RX engines with a protocol converter moving data to/from the
engine, an ML-MIAOW driver issuing kernel dispatches, and an interrupt
manager notifying the host CPU on anomaly.
"""

from repro.mcm.fifo import InternalFifo
from repro.mcm.fsm import ControlFsm, McmState
from repro.mcm.engines import TxEngine, RxEngine, ProtocolConverter
from repro.mcm.interrupt import InterruptManager, Interrupt
from repro.mcm.driver import MlMiaowDriver, InferencePhases
from repro.mcm.mcm import Mcm, InferenceRecord
from repro.mcm.arbiter import ArbitratedMcm

__all__ = [
    "InternalFifo",
    "ControlFsm",
    "McmState",
    "TxEngine",
    "RxEngine",
    "ProtocolConverter",
    "InterruptManager",
    "Interrupt",
    "MlMiaowDriver",
    "InferencePhases",
    "Mcm",
    "InferenceRecord",
    "ArbitratedMcm",
]
