"""The fleet coordinator: sharded SoC workers under supervision.

:class:`FleetCoordinator` shards tenants across N worker processes
(one :class:`~repro.soc.manager.SocManager` each, one modeled ML-MIAOW
engine each, own write-ahead journal each) and presents the same
surface the serve front door and the eval harness already speak:
``run_events`` / ``health`` / ``tenant`` / ``tenants``.  One
coordinator round fans out to every shard with traffic as a
TRACE_CHUNK dispatch, idle shards get a heartbeat ping instead, and
the replies are merged back into a single per-tenant record map — so
swapping a solo manager for a fleet is a constructor change, not a
protocol change.

**Supervision** (docs/FLEET.md has the full state machine):

- every dispatch and ping carries a deadline (the arbiter watchdog's
  vocabulary, applied to the pipe in the wall-clock domain); a missed
  deadline or a dead pipe marks the shard DEAD;
- a DEAD shard is restarted under a bounded-jitter
  :class:`~repro.errors.Backoff`; the fresh worker finds the shard's
  journal and *recovers* (checkpoint restore + committed-round
  replay), and the coordinator re-feeds the one in-flight round the
  crash may have eaten — admitted rounds are never lost;
- a shard that keeps crashing (``max_restarts`` consecutive) has its
  HEALTHY tenants migrated to sibling shards via checkpoint handoff
  (:func:`~repro.durability.checkpoint.capture_tenant_state`);
  DEGRADED and QUARANTINED tenants stay pinned — a sick tenant is not
  spread to healthy shards.

Every supervision event is a ``fleet.*`` counter, and
:meth:`counters` merges the workers' ``socmgr.*``/engine counters into
one fleet-wide view with the conservation law the eval harness
asserts: ``fleet.rounds.admitted == sum of per-shard fresh rounds +
fleet.rounds.replayed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import Backoff, FleetError, ShardDeadError, SocConfigError
from repro.fleet import messages
from repro.mcm.mcm import InferenceRecord
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.manager import Deployment, TenantHealth
from repro.workloads.cfg import BranchEvent

#: Canonical coordinator-side counters (0 when nothing fired).
FLEET_COUNTERS = (
    "fleet.shards",
    "fleet.workers.spawned",
    "fleet.rounds",
    "fleet.rounds.admitted",
    "fleet.rounds.refed",
    "fleet.rounds.reconciled",
    "fleet.records.delivered",
    "fleet.heartbeats",
    "fleet.heartbeat.misses",
    "fleet.restarts",
    "fleet.migrations",
    "fleet.tenants.migrated",
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology + supervision policy."""

    #: Worker process count; tenants are round-robined across shards.
    num_shards: int = 2
    #: Pipe deadline for one heartbeat reply.
    heartbeat_timeout_s: float = 10.0
    #: Pipe deadline for one round dispatch (simulation rounds are
    #: CPU-heavy; this guards hangs, not slowness).
    round_timeout_s: float = 120.0
    #: Consecutive restarts of one shard before its healthy tenants
    #: are migrated away.
    max_restarts: int = 2
    #: Restart pacing (bounded exponential + deterministic jitter).
    backoff: Backoff = field(
        default_factory=lambda: Backoff(
            base_s=0.05, cap_s=5.0, label="fleet.restart"
        )
    )
    #: TRACE_CHUNK size for round dispatches (same knob as the WAL).
    journal_chunk_events: int = 8192
    #: multiprocessing start method; fork is cheapest (and inherits
    #: warm model caches), spawn is the portable fallback.
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise FleetError("num_shards must be >= 1")
        if self.max_restarts < 1:
            raise FleetError("max_restarts must be >= 1")
        if self.heartbeat_timeout_s <= 0 or self.round_timeout_s <= 0:
            raise FleetError("pipe deadlines must be positive")
        if self.journal_chunk_events < 1:
            raise FleetError("journal_chunk_events must be >= 1")


class _TenantFacade:
    """The slice of TenantRuntime the serve front door reads."""

    def __init__(self, name: str, frontend: str) -> None:
        self.name = name
        self.deployment = SimpleNamespace(
            config=SimpleNamespace(frontend=frontend)
        )


class _Shard:
    """Coordinator-side handle for one worker process."""

    def __init__(self, shard_id: int, journal_dir: str) -> None:
        self.id = shard_id
        self.journal_dir = journal_dir
        self.tenants: List[str] = []
        self.process = None
        self.conn = None
        self.restarts = 0          # consecutive, reset by migration
        self.total_restarts = 0    # lifetime, for liveness reporting
        self.attempt = 0           # backoff cursor

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class FleetCoordinator:
    """Shards tenants across supervised SocManager worker processes.

    ``factory`` must be picklable (a module-level function, optionally
    wrapped in :func:`functools.partial`) with signature
    ``factory(tenant_names, gpu=None) -> List[Deployment]`` — called in
    the worker process to (re)build models and drivers; ``gpu`` is
    passed on tenant adoption so migrated deployments join the shard's
    existing engine.
    """

    def __init__(
        self,
        factory: Callable[..., List[Deployment]],
        tenant_names: Sequence[str],
        journal_root: str,
        config: Optional[FleetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        manager_kwargs: Optional[dict] = None,
        tenant_frontends: Optional[Mapping[str, str]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        import multiprocessing
        import os

        names = list(tenant_names)
        if not names:
            raise FleetError("the fleet needs at least one tenant")
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate tenant names in {names}")
        self.config = config or FleetConfig()
        if self.config.num_shards > len(names):
            raise FleetError(
                f"{self.config.num_shards} shards for {len(names)} "
                "tenants; every shard needs at least one tenant"
            )
        self.factory = factory
        self.metrics = metrics or NULL_REGISTRY
        self.manager_kwargs = dict(manager_kwargs or {})
        self._frontends = dict(tenant_frontends or {})
        self._clock = clock
        self._sleep = sleep
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self.counts: Dict[str, int] = {
            name: 0 for name in FLEET_COUNTERS
        }
        self._m = {
            name: self.metrics.counter(name) for name in FLEET_COUNTERS
        }
        self._facades: Dict[str, _TenantFacade] = {
            name: _TenantFacade(
                name, self._frontends.get(name, "coresight")
            )
            for name in names
        }
        #: Lifetime records already handed to the caller, per tenant —
        #: the reconciliation cursor for post-commit crashes.
        self._delivered: Dict[str, int] = {name: 0 for name in names}
        self._health: Dict[str, TenantHealth] = {
            name: TenantHealth.HEALTHY for name in names
        }
        self._round = 0
        self._closed = False
        self.shards: List[_Shard] = []
        for shard_id in range(self.config.num_shards):
            shard = _Shard(
                shard_id,
                os.path.join(journal_root, f"shard-{shard_id}"),
            )
            self.shards.append(shard)
        for index, name in enumerate(names):
            self.shards[index % len(self.shards)].tenants.append(name)
        self._count("fleet.shards", len(self.shards))
        for shard in self.shards:
            self._spawn(shard)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount
        self._m[name].inc(amount)

    @property
    def tenants(self) -> List[_TenantFacade]:
        """Placement-ordered tenant facades (the serve duck surface)."""
        out: List[_TenantFacade] = []
        for shard in self.shards:
            out.extend(self._facades[name] for name in shard.tenants)
        return out

    def tenant(self, name: str) -> _TenantFacade:
        facade = self._facades.get(name)
        if facade is None:
            raise SocConfigError(f"unknown tenant {name!r}")
        return facade

    def health(self) -> Dict[str, TenantHealth]:
        """Tenant health as of the latest reply from each shard."""
        return dict(self._health)

    def shard_of(self, name: str) -> _Shard:
        for shard in self.shards:
            if name in shard.tenants:
                return shard
        raise SocConfigError(f"unknown tenant {name!r}")

    def liveness(self) -> List[Dict[str, object]]:
        """Per-shard liveness rows for the eval metrics report."""
        return [
            {
                "shard": shard.id,
                "pid": shard.pid,
                "alive": shard.alive,
                "restarts": shard.total_restarts,
                "tenants": list(shard.tenants),
            }
            for shard in self.shards
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        from repro.fleet.worker import worker_main

        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child,
                shard.id,
                self.factory,
                list(shard.tenants),
                shard.journal_dir,
                self.manager_kwargs,
            ),
            daemon=True,
            name=f"fleet-shard-{shard.id}",
        )
        process.start()
        child.close()
        shard.process = process
        shard.conn = parent
        self._count("fleet.workers.spawned")

    def _reap(self, shard: _Shard) -> None:
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=10.0)
            shard.process = None

    def _request(self, shard: _Shard, request, timeout_s: float):
        """One request/reply exchange; raises ShardDeadError on loss."""
        conn = shard.conn
        if conn is None or shard.process is None:
            raise ShardDeadError(f"shard {shard.id} has no live worker")
        try:
            conn.send(request)
            if not conn.poll(timeout_s):
                raise ShardDeadError(
                    f"shard {shard.id} missed its {timeout_s:.1f}s "
                    f"deadline for {request[0]!r}"
                )
            tag, payload = conn.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ShardDeadError(
                f"shard {shard.id} pipe died during {request[0]!r}: "
                f"{type(error).__name__}"
            ) from error
        if tag == messages.ERR:
            raise FleetError(
                f"shard {shard.id} refused {request[0]!r}:\n{payload}"
            )
        return payload

    def _restart(self, shard: _Shard) -> None:
        """Backoff-paced restart; the fresh worker recovers its WAL."""
        self._reap(shard)
        delay = self.config.backoff.delay(shard.attempt)
        shard.attempt += 1
        if delay > 0:
            self._sleep(delay)
        self._spawn(shard)
        shard.restarts += 1
        shard.total_restarts += 1
        self._count("fleet.restarts")

    def _migrate_from(self, shard: _Shard) -> None:
        """Evict a crash-looping shard's HEALTHY tenants to siblings.

        The shard has just been restarted and recovered; its health
        map decides placement.  DEGRADED and QUARANTINED tenants stay
        pinned (pinning the sick, moving the healthy), and at least
        one tenant must remain — a shard cannot be emptied.
        """
        siblings = [
            other
            for other in self.shards
            if other is not shard and other.alive
        ]
        if not siblings:
            return
        health = self._request(
            shard,
            (messages.HEALTH,),
            self.config.heartbeat_timeout_s,
        )
        movable = [
            name
            for name in shard.tenants
            if health.get(name) == TenantHealth.HEALTHY.value
        ]
        if len(movable) == len(shard.tenants):
            movable = movable[1:]  # leave one behind
        if not movable:
            shard.restarts = 0
            return
        docs = self._request(
            shard,
            (messages.EVICT, movable),
            self.config.round_timeout_s,
        )
        by_doc = dict(zip(movable, docs))
        for index, name in enumerate(movable):
            target = siblings[index % len(siblings)]
            self._request(
                target,
                (messages.ADOPT, [name], [by_doc[name]]),
                self.config.round_timeout_s,
            )
            shard.tenants.remove(name)
            target.tenants.append(name)
            self._count("fleet.tenants.migrated")
        self._count("fleet.migrations")
        shard.restarts = 0

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def _reconcile(
        self, shard: _Shard, round_index: int, payloads: List[bytes]
    ) -> Dict[str, List[InferenceRecord]]:
        """Bring a restarted shard's round to a delivered conclusion.

        The recovered worker's ``next_round`` says whether the crashed
        dispatch committed: if not, the held payloads are re-fed (the
        WAL may replay them too — replay is deterministic, records are
        byte-identical); if it did commit, the records are fetched
        past the coordinator's delivery cursor instead of re-running.
        """
        next_round = self._request(
            shard, (messages.ROUND,), self.config.heartbeat_timeout_s
        )
        if next_round <= round_index:
            self._count("fleet.rounds.refed")
            reply = self._request(
                shard,
                (messages.RUN, round_index, payloads),
                self.config.round_timeout_s,
            )
            self._absorb_health(reply["health"])
            return reply["records"]
        cursors = {
            name: self._delivered[name] for name in shard.tenants
        }
        records = self._request(
            shard,
            (messages.RECORDS_AFTER, cursors),
            self.config.round_timeout_s,
        )
        self._absorb_health(
            self._request(
                shard,
                (messages.HEALTH,),
                self.config.heartbeat_timeout_s,
            )
        )
        self._count("fleet.rounds.reconciled")
        return records

    def _absorb_health(self, health: Mapping[str, str]) -> None:
        for name, value in health.items():
            self._health[name] = TenantHealth(value)

    def _run_shard(
        self, shard: _Shard, round_index: int, payloads: List[bytes]
    ) -> Dict[str, List[InferenceRecord]]:
        """One shard's slice of one round, surviving worker deaths.

        Migration is deliberately deferred until the round *concludes*
        on the recovered shard: a crashed dispatch may already be
        committed in the shard's journal, and moving tenants while
        that round is unresolved would either lose it or replay it
        twice.  Bring the round to a delivered conclusion first
        (re-feed or reconcile), then — if it took a crash-loop to get
        there — hand the healthy tenants to siblings at the boundary.
        """
        attempts = 0
        while True:
            try:
                if attempts == 0:
                    reply = self._request(
                        shard,
                        (messages.RUN, round_index, payloads),
                        self.config.round_timeout_s,
                    )
                    self._absorb_health(reply["health"])
                    records = reply["records"]
                else:
                    records = self._reconcile(
                        shard, round_index, payloads
                    )
                if shard.restarts > self.config.max_restarts:
                    self._migrate_from(shard)
                shard.restarts = 0
                shard.attempt = 0
                return records
            except ShardDeadError:
                attempts += 1
                if attempts > self.config.max_restarts + 1:
                    raise
                self._restart(shard)

    def _split_round(
        self,
        round_index: int,
        traces: Mapping[str, Sequence[BranchEvent]],
    ):
        """Group one round's traces into per-shard chunk dispatches."""
        out = []
        for shard in self.shards:
            slice_traces = {
                name: traces[name]
                for name in shard.tenants
                if name in traces and len(traces[name])
            }
            if not slice_traces:
                continue
            out.append(
                (
                    shard,
                    messages.encode_round(
                        round_index,
                        slice_traces,
                        self.config.journal_chunk_events,
                    ),
                )
            )
        return out

    def run_events(
        self, traces: Mapping[str, Sequence[BranchEvent]]
    ) -> Dict[str, List[InferenceRecord]]:
        """One fleet-wide monitoring round (the SocManager surface).

        Shards with traffic get a RUN dispatch; idle shards get a
        heartbeat ping, so every round doubles as a liveness sweep.
        Returns the merged per-tenant records of this round.
        """
        if self._closed:
            raise FleetError("the fleet has been closed")
        unknown = set(traces) - set(self._facades)
        if unknown:
            raise SocConfigError(f"unknown tenants {sorted(unknown)}")
        round_index = self._round
        self._round += 1
        self._count("fleet.rounds")
        dispatches = self._split_round(round_index, traces)
        busy = {shard.id for shard, _ in dispatches}
        results: Dict[str, List[InferenceRecord]] = {}
        for shard, payloads in dispatches:
            records = self._run_shard(shard, round_index, payloads)
            self._count("fleet.rounds.admitted")
            for name, tenant_records in records.items():
                results[name] = tenant_records
                self._delivered[name] = self._delivered.get(
                    name, 0
                ) + len(tenant_records)
                self._count(
                    "fleet.records.delivered", len(tenant_records)
                )
        for shard in self.shards:
            if shard.id not in busy:
                self.heartbeat(shard)
        return results

    # ------------------------------------------------------------------
    # Supervision entry points
    # ------------------------------------------------------------------

    def heartbeat(self, shard: Optional[_Shard] = None) -> bool:
        """Ping one shard (or the whole fleet); restart on a miss.

        Returns True when every probed shard answered its deadline
        without needing a restart.
        """
        shards = [shard] if shard is not None else list(self.shards)
        clean = True
        for probe in shards:
            token = (probe.id, self._round, probe.total_restarts)
            try:
                self._count("fleet.heartbeats")
                echoed = self._request(
                    probe,
                    (messages.PING, token),
                    self.config.heartbeat_timeout_s,
                )
                if echoed != token:
                    raise ShardDeadError(
                        f"shard {probe.id} echoed a stale heartbeat"
                    )
                probe.restarts = 0
                probe.attempt = 0
            except ShardDeadError:
                clean = False
                self._count("fleet.heartbeat.misses")
                self._restart(probe)
                if probe.restarts > self.config.max_restarts:
                    self._migrate_from(probe)
        return clean

    def arm_kill(self, shard_id: int, site: str, index: int = 0) -> None:
        """Arm a deterministic ``kill -9`` in one worker (chaos only).

        The worker installs a
        :class:`~repro.faults.crashpoints.SigkillInjector` that SIGKILLs
        its own process at the ``index``-th visit of WAL crash site
        ``site`` — e.g. ``"wal.chunk.done"`` for "inputs journaled,
        round not yet committed".  The next :meth:`run_events` that
        routes work through the shard will lose the worker mid-round
        and exercise the full restart/recover/re-feed path.
        """
        self._request(
            self.shards[shard_id],
            (messages.ARM_KILL, site, index),
            self.config.heartbeat_timeout_s,
        )

    def counters(self) -> Dict[str, int]:
        """Fleet-wide merged counters: ``fleet.*`` + summed workers.

        Worker counters (``socmgr.*``, engine counters, durability
        counters) are summed across shards; the merged view also
        exposes ``fleet.rounds.replayed`` (the summed WAL replays) and
        per-shard ``fleet.shard.<id>.rounds`` so the conservation law
        can be checked from this one snapshot.
        """
        merged: Dict[str, int] = dict(self.counts)
        replayed = 0
        for shard in self.shards:
            snapshot = self._request(
                shard,
                (messages.COUNTERS,),
                self.config.heartbeat_timeout_s,
            )
            for name, value in snapshot.items():
                merged[name] = merged.get(name, 0) + int(value)
            runs = int(snapshot.get("socmgr.runs", 0))
            shard_replayed = int(
                snapshot.get("socmgr.rounds_replayed", 0)
            )
            replayed += shard_replayed
            merged[f"fleet.shard.{shard.id}.rounds"] = (
                runs - shard_replayed
            )
        merged["fleet.rounds.replayed"] = replayed
        return merged

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                if shard.conn is not None and shard.alive:
                    self._request(
                        shard,
                        (messages.STOP,),
                        self.config.heartbeat_timeout_s,
                    )
            except (ShardDeadError, FleetError):
                pass
            self._reap(shard)

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
