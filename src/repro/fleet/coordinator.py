"""The fleet coordinator: sharded SoC workers under supervision.

:class:`FleetCoordinator` shards tenants across N worker processes
(one :class:`~repro.soc.manager.SocManager` each, one modeled ML-MIAOW
engine each, own write-ahead journal each) and presents the same
surface the serve front door and the eval harness already speak:
``run_events`` / ``health`` / ``tenant`` / ``tenants``.  One
coordinator round fans out to every shard with traffic as a
TRACE_CHUNK dispatch, idle shards get a heartbeat ping instead, and
the replies are merged back into a single per-tenant record map — so
swapping a solo manager for a fleet is a constructor change, not a
protocol change.

**Supervision** (docs/FLEET.md has the full state machine):

- every dispatch and ping carries a deadline (the arbiter watchdog's
  vocabulary, applied to the pipe in the wall-clock domain); a missed
  deadline or a dead pipe marks the shard DEAD;
- a DEAD shard is restarted under a bounded-jitter
  :class:`~repro.errors.Backoff`; the fresh worker finds the shard's
  journal and *recovers* (checkpoint restore + committed-round
  replay), and the coordinator re-feeds the one in-flight round the
  crash may have eaten — admitted rounds are never lost;
- a shard that keeps crashing (``max_restarts`` consecutive) has its
  HEALTHY tenants migrated to sibling shards via checkpoint handoff
  (:func:`~repro.durability.checkpoint.capture_tenant_state`);
  DEGRADED and QUARANTINED tenants stay pinned — a sick tenant is not
  spread to healthy shards.

**Transport** (docs/FLEET.md §5): how round payloads and replies
cross the process boundary is pluggable (:mod:`repro.fleet.
transport`).  The default moves them through per-shard shared-memory
rings — written once by the coordinator, mapped zero-copy by the
worker — with the pickle-over-pipe path as the universal fallback;
control traffic (heartbeats, health, migration) always stays on the
pipe.  ``fleet.transport.*`` counters observe a second conservation
law: staged bytes equal worker-receipted consumed bytes plus the
bytes of dispatches that died or were refused before consumption.

**Placement**: tenants start round-robined; when
``rebalance_ratio`` is set, the coordinator tracks a per-shard EWMA
of the modeled round makespan (the imbalance signal BENCH_fleet.json
reports) and, at round boundaries, moves one HEALTHY tenant from the
hottest to the coldest shard through the same checkpoint-handoff
path crash-loop migration uses — hysteresis (ratio threshold, warmup,
cooldown) keeps placements from ping-ponging.  Every move bumps
``placement_epoch`` so the serve front door can refresh its sticky
routing table atomically at the boundary.

Every supervision event is a ``fleet.*`` counter, and
:meth:`counters` merges the workers' ``socmgr.*``/engine counters into
one fleet-wide view with the conservation law the eval harness
asserts: ``fleet.rounds.admitted == sum of per-shard fresh rounds +
fleet.rounds.replayed``.  Wall-clock transport timings are kept out
of that merged view (they can never be bit-identical across runs) and
reported via :meth:`transport_stats` instead.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import (
    Backoff,
    FleetError,
    ShardDeadError,
    SocConfigError,
    TransportError,
)
from repro.fleet import messages
from repro.fleet.transport import (
    DEFAULT_RING_BYTES,
    PipeCoordinatorTransport,
    ShmCoordinatorTransport,
    TRANSPORT_NAMES,
)
from repro.mcm.mcm import InferenceRecord
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.soc.manager import Deployment, TenantHealth
from repro.workloads.cfg import BranchEvent

#: Canonical coordinator-side counters (0 when nothing fired).
FLEET_COUNTERS = (
    "fleet.shards",
    "fleet.workers.spawned",
    "fleet.rounds",
    "fleet.rounds.admitted",
    "fleet.rounds.refed",
    "fleet.rounds.reconciled",
    "fleet.records.delivered",
    "fleet.heartbeats",
    "fleet.heartbeat.misses",
    "fleet.restarts",
    "fleet.migrations",
    "fleet.tenants.migrated",
)

#: Transport-layer counters.  The byte triple obeys the conservation
#: law ``staged == consumed + discarded``: every staged dispatch ends
#: in exactly one worker receipt (``consumed``, reported end-to-end by
#: the worker) or one discard (worker died / refused before consuming).
TRANSPORT_COUNTERS = (
    "fleet.transport.rounds",
    "fleet.transport.ns",          # wall transport time (wall - compute)
    "fleet.transport.c2w_ns",      # coordinator->worker byte path:
                                   # stage + send + worker recv + fetch
    "fleet.transport.stage_ns",    # coordinator-side staging share
    "fleet.transport.bytes.staged",
    "fleet.transport.bytes.consumed",
    "fleet.transport.bytes.discarded",
    "fleet.transport.payloads.inline",  # full-ring spills to the pipe
    "fleet.transport.fallbacks",   # permanent per-shard shm -> pipe
    "fleet.transport.torn_slots",
    "fleet.transport.shm.rings",
    "fleet.transport.shm.reinits",  # rings rebuilt after a worker death
    "fleet.transport.shm.wraps",
)

#: Load-aware placement counters.
PLACEMENT_COUNTERS = (
    "fleet.placement.rounds",      # boundaries the placer evaluated
    "fleet.placement.rebalances",
    "fleet.placement.tenants_moved",
    "fleet.placement.skipped",     # hysteresis vetoes (warmup/cooldown/
                                   # below-ratio/nothing movable)
    "fleet.placement.epoch",       # routing-table generation bumps
)

#: Wall-clock members of the transport counters: meaningful in
#: :meth:`FleetCoordinator.transport_stats` and the metrics registry,
#: but excluded from the merged :meth:`FleetCoordinator.counters`
#: snapshot so same-topology runs stay bit-identical.
_WALLCLOCK_COUNTERS = frozenset(
    {
        "fleet.transport.ns",
        "fleet.transport.c2w_ns",
        "fleet.transport.stage_ns",
    }
)

#: Transport-*shape* counters: they describe which byte path carried
#: the rounds (ring segments built, spills, wraps, fallbacks), not
#: what the SoC computed — so they differ between a pipe and a shm run
#: of the same workload.  Excluded from the merged
#: :meth:`FleetCoordinator.counters` snapshot (the byte-identity
#: surface must compare equal *across transports* too); reported by
#: :meth:`FleetCoordinator.transport_stats`.
_TRANSPORT_SHAPE_COUNTERS = frozenset(
    {
        "fleet.transport.payloads.inline",
        "fleet.transport.fallbacks",
        "fleet.transport.shm.rings",
        "fleet.transport.shm.reinits",
        "fleet.transport.shm.wraps",
    }
)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology + supervision policy."""

    #: Worker process count; tenants are round-robined across shards.
    num_shards: int = 2
    #: Pipe deadline for one heartbeat reply.
    heartbeat_timeout_s: float = 10.0
    #: Pipe deadline for one round dispatch (simulation rounds are
    #: CPU-heavy; this guards hangs, not slowness).
    round_timeout_s: float = 120.0
    #: Consecutive restarts of one shard before its healthy tenants
    #: are migrated away.
    max_restarts: int = 2
    #: Restart pacing (bounded exponential + deterministic jitter).
    backoff: Backoff = field(
        default_factory=lambda: Backoff(
            base_s=0.05, cap_s=5.0, label="fleet.restart"
        )
    )
    #: TRACE_CHUNK size for round dispatches (same knob as the WAL).
    journal_chunk_events: int = 8192
    #: multiprocessing start method; fork is cheapest (and inherits
    #: warm model caches), spawn is the portable fallback.
    start_method: str = "fork"
    #: Bulk-byte transport: ``"shm"`` (zero-copy shared-memory rings,
    #: pipe fallback on failure) or ``"pipe"`` (always inline).
    transport: str = "shm"
    #: Per-direction ring capacity per shard.  One round's payloads
    #: should fit; larger payloads spill inline per-payload.
    shm_ring_bytes: int = DEFAULT_RING_BYTES
    #: Load-aware rebalancing threshold: move a tenant when the hottest
    #: shard's makespan EWMA exceeds the coldest's by this factor.
    #: ``None`` (default) keeps placement static — construction-time
    #: round-robin, migrations only on crash-loops.
    rebalance_ratio: Optional[float] = None
    #: EWMA smoothing for the per-shard makespan signal.
    rebalance_ewma_alpha: float = 0.4
    #: Rounds to observe before the first rebalance decision.
    rebalance_warmup_rounds: int = 2
    #: Rounds to hold still after a rebalance (hysteresis).
    rebalance_cooldown_rounds: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise FleetError("num_shards must be >= 1")
        if self.max_restarts < 1:
            raise FleetError("max_restarts must be >= 1")
        if self.heartbeat_timeout_s <= 0 or self.round_timeout_s <= 0:
            raise FleetError("pipe deadlines must be positive")
        if self.journal_chunk_events < 1:
            raise FleetError("journal_chunk_events must be >= 1")
        if self.transport not in TRANSPORT_NAMES:
            raise FleetError(
                f"transport must be one of {TRANSPORT_NAMES}, "
                f"got {self.transport!r}"
            )
        if self.shm_ring_bytes < 4096:
            raise FleetError("shm_ring_bytes must be >= 4096")
        if self.rebalance_ratio is not None and self.rebalance_ratio <= 1.0:
            raise FleetError("rebalance_ratio must be > 1.0")
        if not 0.0 < self.rebalance_ewma_alpha <= 1.0:
            raise FleetError("rebalance_ewma_alpha must be in (0, 1]")
        if self.rebalance_warmup_rounds < 0:
            raise FleetError("rebalance_warmup_rounds must be >= 0")
        if self.rebalance_cooldown_rounds < 0:
            raise FleetError("rebalance_cooldown_rounds must be >= 0")


class _TenantFacade:
    """The slice of TenantRuntime the serve front door reads."""

    def __init__(self, name: str, frontend: str) -> None:
        self.name = name
        self.deployment = SimpleNamespace(
            config=SimpleNamespace(frontend=frontend)
        )


class _Shard:
    """Coordinator-side handle for one worker process."""

    def __init__(self, shard_id: int, journal_dir: str) -> None:
        self.id = shard_id
        self.journal_dir = journal_dir
        self.tenants: List[str] = []
        self.process = None
        self.conn = None
        self.restarts = 0          # consecutive, reset by migration
        self.total_restarts = 0    # lifetime, for liveness reporting
        self.attempt = 0           # backoff cursor
        self.transport = None      # coordinator transport half
        self.force_pipe = False    # sticky shm -> pipe fallback
        self.generation = 0        # spawns, for ring re-init accounting
        self.load_ewma: Optional[float] = None  # modeled makespan EWMA

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class FleetCoordinator:
    """Shards tenants across supervised SocManager worker processes.

    ``factory`` must be picklable (a module-level function, optionally
    wrapped in :func:`functools.partial`) with signature
    ``factory(tenant_names, gpu=None) -> List[Deployment]`` — called in
    the worker process to (re)build models and drivers; ``gpu`` is
    passed on tenant adoption so migrated deployments join the shard's
    existing engine.
    """

    def __init__(
        self,
        factory: Callable[..., List[Deployment]],
        tenant_names: Sequence[str],
        journal_root: str,
        config: Optional[FleetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        manager_kwargs: Optional[dict] = None,
        tenant_frontends: Optional[Mapping[str, str]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        import multiprocessing
        import os

        names = list(tenant_names)
        if not names:
            raise FleetError("the fleet needs at least one tenant")
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate tenant names in {names}")
        self.config = config or FleetConfig()
        if self.config.num_shards > len(names):
            raise FleetError(
                f"{self.config.num_shards} shards for {len(names)} "
                "tenants; every shard needs at least one tenant"
            )
        self.factory = factory
        self.metrics = metrics or NULL_REGISTRY
        self.manager_kwargs = dict(manager_kwargs or {})
        self._frontends = dict(tenant_frontends or {})
        self._clock = clock
        self._sleep = sleep
        self._ctx = multiprocessing.get_context(self.config.start_method)
        all_counters = (
            FLEET_COUNTERS + TRANSPORT_COUNTERS + PLACEMENT_COUNTERS
        )
        self.counts: Dict[str, int] = {
            name: 0 for name in all_counters
        }
        self._m = {
            name: self.metrics.counter(name) for name in all_counters
        }
        self._facades: Dict[str, _TenantFacade] = {
            name: _TenantFacade(
                name, self._frontends.get(name, "coresight")
            )
            for name in names
        }
        #: Lifetime records already handed to the caller, per tenant —
        #: the reconciliation cursor for post-commit crashes.
        self._delivered: Dict[str, int] = {name: 0 for name in names}
        self._health: Dict[str, TenantHealth] = {
            name: TenantHealth.HEALTHY for name in names
        }
        self._round = 0
        self._closed = False
        #: Per-tenant EWMA of modeled busy time (the placer's estimate
        #: of how much makespan a tenant would carry to another shard).
        self._busy_ewma: Dict[str, float] = {}
        self._rebalance_cooldown = 0
        #: Routing-table generation; bumped on every tenant move so the
        #: serve front door can detect staleness cheaply.
        self.placement_epoch = 0
        self.shards: List[_Shard] = []
        for shard_id in range(self.config.num_shards):
            shard = _Shard(
                shard_id,
                os.path.join(journal_root, f"shard-{shard_id}"),
            )
            self.shards.append(shard)
        for index, name in enumerate(names):
            self.shards[index % len(self.shards)].tenants.append(name)
        self._count("fleet.shards", len(self.shards))
        for shard in self.shards:
            self._spawn(shard)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount
        self._m[name].inc(amount)

    @property
    def tenants(self) -> List[_TenantFacade]:
        """Placement-ordered tenant facades (the serve duck surface)."""
        out: List[_TenantFacade] = []
        for shard in self.shards:
            out.extend(self._facades[name] for name in shard.tenants)
        return out

    def tenant(self, name: str) -> _TenantFacade:
        facade = self._facades.get(name)
        if facade is None:
            raise SocConfigError(f"unknown tenant {name!r}")
        return facade

    def health(self) -> Dict[str, TenantHealth]:
        """Tenant health as of the latest reply from each shard."""
        return dict(self._health)

    def shard_of(self, name: str) -> _Shard:
        for shard in self.shards:
            if name in shard.tenants:
                return shard
        raise SocConfigError(f"unknown tenant {name!r}")

    def routing_table(self) -> Dict[str, int]:
        """Current tenant -> shard-id placement snapshot.

        Placement only changes at round boundaries (rebalance or
        crash-loop migration), each change bumping
        :attr:`placement_epoch` — so a front door can keep sessions
        sticky by re-reading this table only when the epoch moved.
        """
        return {
            name: shard.id
            for shard in self.shards
            for name in shard.tenants
        }

    def liveness(self) -> List[Dict[str, object]]:
        """Per-shard liveness rows for the eval metrics report."""
        return [
            {
                "shard": shard.id,
                "pid": shard.pid,
                "alive": shard.alive,
                "restarts": shard.total_restarts,
                "tenants": list(shard.tenants),
            }
            for shard in self.shards
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _make_transport(self, shard: _Shard):
        """Build the coordinator transport half for one worker spawn.

        Fresh rings per worker generation: a restarted worker never
        attaches a ring whose slots a dead sibling may have torn.
        Creation failure (no shm on this platform, exhausted
        ``/dev/shm``) degrades the shard to the pipe permanently.
        """
        if self.config.transport == "shm" and not shard.force_pipe:
            try:
                transport = ShmCoordinatorTransport(
                    self.config.shm_ring_bytes
                )
            except TransportError:
                shard.force_pipe = True
                self._count("fleet.transport.fallbacks")
                return PipeCoordinatorTransport()
            self._count("fleet.transport.shm.rings", 2)
            if shard.generation > 0:
                self._count("fleet.transport.shm.reinits")
            return transport
        return PipeCoordinatorTransport()

    def _spawn(self, shard: _Shard) -> None:
        from repro.fleet.worker import worker_main

        shard.transport = self._make_transport(shard)
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child,
                shard.id,
                self.factory,
                list(shard.tenants),
                shard.journal_dir,
                self.manager_kwargs,
                shard.transport.spec(),
            ),
            daemon=True,
            name=f"fleet-shard-{shard.id}",
        )
        process.start()
        child.close()
        shard.process = process
        shard.conn = parent
        shard.generation += 1
        self._count("fleet.workers.spawned")

    def _reap(self, shard: _Shard) -> None:
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=10.0)
            shard.process = None
        if shard.transport is not None:
            # After the join: the worker's ring views are gone, so the
            # owner side can unmap and unlink the segments.
            shard.transport.close()
            shard.transport = None

    def _request(
        self,
        shard: _Shard,
        request,
        timeout_s: float,
        timing: Optional[dict] = None,
    ):
        """One request/reply exchange; raises ShardDeadError on loss.

        When ``timing`` is given, its ``"send_ns"`` key receives the
        CPU time of the pipe send — the coordinator's wire share of
        the dispatch (pickle + kernel copy).  Thread CPU time, not
        wall time: a send wakes the blocked worker, and the scheduler
        is free to run it before the syscall returns, which would bill
        the worker's compute to the wire.
        """
        conn = shard.conn
        if conn is None or shard.process is None:
            raise ShardDeadError(f"shard {shard.id} has no live worker")
        try:
            if timing is None:
                conn.send(request)
            else:
                send_started_ns = time.thread_time_ns()
                conn.send(request)
                timing["send_ns"] = (
                    time.thread_time_ns() - send_started_ns
                )
            if not conn.poll(timeout_s):
                raise ShardDeadError(
                    f"shard {shard.id} missed its {timeout_s:.1f}s "
                    f"deadline for {request[0]!r}"
                )
            tag, payload = conn.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ShardDeadError(
                f"shard {shard.id} pipe died during {request[0]!r}: "
                f"{type(error).__name__}"
            ) from error
        if tag == messages.ERR:
            raise FleetError(
                f"shard {shard.id} refused {request[0]!r}:\n{payload}"
            )
        return payload

    def _restart(self, shard: _Shard) -> None:
        """Backoff-paced restart; the fresh worker recovers its WAL."""
        self._reap(shard)
        delay = self.config.backoff.delay(shard.attempt)
        shard.attempt += 1
        if delay > 0:
            self._sleep(delay)
        self._spawn(shard)
        shard.restarts += 1
        shard.total_restarts += 1
        self._count("fleet.restarts")

    def _handoff(
        self, source: _Shard, names: List[str], target: _Shard
    ) -> None:
        """Move tenants via checkpoint handoff (EVICT -> ADOPT).

        The single placement-mutation primitive — crash-loop migration
        and load-aware rebalancing both route through here, so every
        move updates the routing table and bumps the placement epoch
        exactly once, at a round boundary.
        """
        docs = self._request(
            source,
            (messages.EVICT, names),
            self.config.round_timeout_s,
        )
        self._request(
            target,
            (messages.ADOPT, names, docs),
            self.config.round_timeout_s,
        )
        for name in names:
            source.tenants.remove(name)
            target.tenants.append(name)
            self._count("fleet.tenants.migrated")
        self.placement_epoch += 1
        self._count("fleet.placement.epoch")

    def _migrate_from(self, shard: _Shard) -> None:
        """Evict a crash-looping shard's HEALTHY tenants to siblings.

        The shard has just been restarted and recovered; its health
        map decides placement.  DEGRADED and QUARANTINED tenants stay
        pinned (pinning the sick, moving the healthy), and at least
        one tenant must remain — a shard cannot be emptied.
        """
        siblings = [
            other
            for other in self.shards
            if other is not shard and other.alive
        ]
        if not siblings:
            return
        health = self._request(
            shard,
            (messages.HEALTH,),
            self.config.heartbeat_timeout_s,
        )
        movable = [
            name
            for name in shard.tenants
            if health.get(name) == TenantHealth.HEALTHY.value
        ]
        if len(movable) == len(shard.tenants):
            movable = movable[1:]  # leave one behind
        if not movable:
            shard.restarts = 0
            return
        for index, name in enumerate(movable):
            self._handoff(shard, [name], siblings[index % len(siblings)])
        self._count("fleet.migrations")
        shard.restarts = 0

    # ------------------------------------------------------------------
    # Load-aware placement
    # ------------------------------------------------------------------

    def _observe_load(
        self,
        shard: _Shard,
        records: Mapping[str, List[InferenceRecord]],
    ) -> None:
        """Fold one round's modeled load into the placement EWMAs.

        The shard signal is the modeled makespan — ``max(done_ns) -
        min(arrival_ns)`` over the round's records, the same imbalance
        measure BENCH_fleet.json reports.  The per-tenant signal is
        the tenant's *share* of that makespan, weighted by its record
        count: the engine pipelines tenants' vectors, so summing each
        record's own span would count the same busy interval many
        times over and land in units incomparable with the shard
        makespan the placer's gap test is expressed in.  The shares
        sum to the makespan across a shard's tenants, which is what
        makes "moving this tenant narrows the gap by ~its share" a
        sound estimate.
        """
        alpha = self.config.rebalance_ewma_alpha
        spans = [
            (record.arrival_ns, record.done_ns)
            for tenant_records in records.values()
            for record in tenant_records
        ]
        if not spans:
            return
        makespan = max(done for _, done in spans) - min(
            arrival for arrival, _ in spans
        )
        if shard.load_ewma is None:
            shard.load_ewma = makespan
        else:
            shard.load_ewma = (
                alpha * makespan + (1.0 - alpha) * shard.load_ewma
            )
        for name, tenant_records in records.items():
            if not tenant_records:
                continue
            busy = makespan * len(tenant_records) / len(spans)
            previous = self._busy_ewma.get(name)
            self._busy_ewma[name] = (
                busy
                if previous is None
                else alpha * busy + (1.0 - alpha) * previous
            )

    def _maybe_rebalance(self) -> None:
        """One placement decision at a round boundary (hysteresis).

        Moves at most one tenant per boundary, hottest shard to
        coldest, only when the makespan-EWMA ratio exceeds
        ``rebalance_ratio`` and the move would actually narrow the gap
        — then holds still for the cooldown.  Only HEALTHY tenants
        move, a shard is never emptied, and the handoff itself is the
        exact crash-migration checkpoint path, so verdicts stay
        bit-identical to a static placement.
        """
        if self.config.rebalance_ratio is None:
            return
        self._count("fleet.placement.rounds")
        if self._round < self.config.rebalance_warmup_rounds:
            self._count("fleet.placement.skipped")
            return
        if self._rebalance_cooldown > 0:
            self._rebalance_cooldown -= 1
            self._count("fleet.placement.skipped")
            return
        loaded = [
            shard
            for shard in self.shards
            if shard.alive and shard.load_ewma is not None
        ]
        if len(loaded) < 2:
            self._count("fleet.placement.skipped")
            return
        hot = max(loaded, key=lambda shard: shard.load_ewma)
        cold = min(loaded, key=lambda shard: shard.load_ewma)
        if (
            cold.load_ewma <= 0.0
            or hot.load_ewma < self.config.rebalance_ratio * cold.load_ewma
        ):
            self._count("fleet.placement.skipped")
            return
        gap = hot.load_ewma - cold.load_ewma
        candidates = [
            name
            for name in hot.tenants
            if self._health.get(name) == TenantHealth.HEALTHY
            and name in self._busy_ewma
            # Moving more than the gap would just swap hot and cold.
            and self._busy_ewma[name] < gap
        ]
        if len(candidates) >= len(hot.tenants):
            candidates = candidates[1:]  # leave one behind
        if not candidates:
            self._count("fleet.placement.skipped")
            return
        # The tenant whose busy share best halves the gap.
        name = min(
            candidates,
            key=lambda tenant: abs(gap - 2.0 * self._busy_ewma[tenant]),
        )
        self._handoff(hot, [name], cold)
        self._count("fleet.placement.tenants_moved")
        busy = self._busy_ewma[name]
        hot.load_ewma -= busy
        cold.load_ewma += busy
        self._rebalance_cooldown = self.config.rebalance_cooldown_rounds
        self._count("fleet.placement.rebalances")

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def _fallback_to_pipe(self, shard: _Shard) -> None:
        """Permanently degrade one shard's bulk path to the pipe.

        Triggered by a ``transport:`` ERR — the worker could not map a
        descriptor (attach failed at startup) or found a torn chunk
        slot.  Either way nothing was run, the round is intact on the
        coordinator, and the worker can already serve inline wires
        (its transport mirrors the request channel), so no restart is
        needed: swap the coordinator half and re-send.
        """
        if shard.transport is not None:
            shard.transport.close()
        shard.transport = PipeCoordinatorTransport()
        shard.force_pipe = True
        self._count("fleet.transport.fallbacks")

    def _dispatch(
        self,
        shard: _Shard,
        round_index: int,
        payloads: List[bytes],
        crc: Optional[int] = None,
    ) -> dict:
        """Phase one of a round dispatch: stage and send, don't wait.

        Returns the in-flight state :meth:`_collect` needs.  Keeping
        the send separate from the reply wait lets :meth:`run_events`
        fan a round out to every busy shard before collecting any
        reply — workers fetch and compute while the coordinator is
        still staging for their siblings, and a dispatch never wakes a
        deeply idle system (waking a worker that has been blocked for
        a whole round costs several times a warm wake).
        """
        staged = sum(len(payload) for payload in payloads)
        transport = shard.transport
        state: dict = {"staged": staged, "transport": transport}
        state["started_ns"] = time.perf_counter_ns()
        stage_cpu_ns = time.thread_time_ns()
        wire = transport.stage(payloads, crc)
        state["stage_cpu_ns"] = time.thread_time_ns() - stage_cpu_ns
        self._count("fleet.transport.bytes.staged", staged)
        conn = shard.conn
        if conn is None or shard.process is None:
            self._count("fleet.transport.bytes.discarded", staged)
            raise ShardDeadError(f"shard {shard.id} has no live worker")
        try:
            send_cpu_ns = time.thread_time_ns()
            conn.send((messages.RUN, round_index, wire))
            state["send_ns"] = time.thread_time_ns() - send_cpu_ns
        except (OSError, BrokenPipeError) as error:
            self._count("fleet.transport.bytes.discarded", staged)
            raise ShardDeadError(
                f"shard {shard.id} pipe died during dispatch: "
                f"{type(error).__name__}"
            ) from error
        return state

    def _collect(
        self,
        shard: _Shard,
        round_index: int,
        payloads: List[bytes],
        crc: Optional[int],
        state: dict,
    ) -> dict:
        """Phase two: await one dispatched round's reply.

        Owns the transport bookkeeping: staged/consumed/discarded byte
        conservation, wall-minus-compute transport timing, fallback on
        transport refusal (re-sends the same round synchronously), and
        torn-reply-slot escalation (the round may be committed in the
        shard's journal, so a torn reply is treated as a dead worker —
        reconcile fetches, never re-runs).
        """
        staged = state["staged"]
        transport = state["transport"]
        try:
            conn = shard.conn
            if conn is None:
                raise ShardDeadError(
                    f"shard {shard.id} has no live worker"
                )
            if not conn.poll(self.config.round_timeout_s):
                raise ShardDeadError(
                    f"shard {shard.id} missed its "
                    f"{self.config.round_timeout_s:.1f}s deadline for "
                    f"{messages.RUN!r}"
                )
            tag, reply_wire = conn.recv()
            if tag == messages.ERR:
                raise FleetError(
                    f"shard {shard.id} refused {messages.RUN!r}:\n"
                    f"{reply_wire}"
                )
            reply = transport.fetch_reply(reply_wire)
            done_ns = time.perf_counter_ns()
        except (EOFError, OSError, BrokenPipeError) as error:
            self._count("fleet.transport.bytes.discarded", staged)
            raise ShardDeadError(
                f"shard {shard.id} pipe died during {messages.RUN!r}: "
                f"{type(error).__name__}"
            ) from error
        except ShardDeadError:
            # No receipt will ever arrive for these bytes; the
            # re-feed after recovery stages (and accounts) afresh.
            self._count("fleet.transport.bytes.discarded", staged)
            raise
        except TransportError as error:
            self._count("fleet.transport.torn_slots")
            self._count("fleet.transport.bytes.discarded", staged)
            raise ShardDeadError(
                f"shard {shard.id} returned a torn reply slot: "
                f"{error}"
            ) from error
        except FleetError as error:
            self._count("fleet.transport.bytes.discarded", staged)
            if messages.TRANSPORT_ERR in str(error):
                # Worker refused the descriptors without running
                # anything: fall back and re-send the same round.
                self._fallback_to_pipe(shard)
                return self._send_round(
                    shard, round_index, payloads, crc
                )
            raise
        self._count("fleet.transport.rounds")
        self._count(
            "fleet.transport.bytes.consumed",
            int(reply.get("consumed_bytes", staged)),
        )
        self._count("fleet.transport.stage_ns", state["stage_cpu_ns"])
        transport_ns = (done_ns - state["started_ns"]) - int(
            reply.get("compute_ns", 0)
        )
        self._count("fleet.transport.ns", max(0, transport_ns))
        # The coordinator->worker leg, summed from its four CPU
        # shares: staging here, the pipe send (pickle + kernel copy),
        # the worker's post-poll drain, and the worker's payload
        # fetch.  Each is thread CPU time — no idle waiting, no
        # preempting neighbour's slice — so the sum is the cost of
        # actually moving and validating the bytes, comparable across
        # transports without a cross-process clock.
        self._count(
            "fleet.transport.c2w_ns",
            state["stage_cpu_ns"]
            + int(state.get("send_ns", 0))
            + int(reply.get("recv_ns", 0))
            + int(reply.get("fetch_ns", 0)),
        )
        stats = transport.take_stats()
        if stats.get("spills"):
            self._count(
                "fleet.transport.payloads.inline", stats["spills"]
            )
        if stats.get("wraps"):
            self._count("fleet.transport.shm.wraps", stats["wraps"])
        return reply

    def _send_round(
        self,
        shard: _Shard,
        round_index: int,
        payloads: List[bytes],
        crc: Optional[int] = None,
    ) -> dict:
        """Synchronous dispatch + collect (re-feeds and re-sends)."""
        state = self._dispatch(shard, round_index, payloads, crc)
        return self._collect(shard, round_index, payloads, crc, state)

    def _reconcile(
        self,
        shard: _Shard,
        round_index: int,
        payloads: List[bytes],
        crc: Optional[int] = None,
    ) -> Dict[str, List[InferenceRecord]]:
        """Bring a restarted shard's round to a delivered conclusion.

        The recovered worker's ``next_round`` says whether the crashed
        dispatch committed: if not, the held payloads are re-fed (the
        WAL may replay them too — replay is deterministic, records are
        byte-identical); if it did commit, the records are fetched
        past the coordinator's delivery cursor instead of re-running.
        """
        next_round = self._request(
            shard, (messages.ROUND,), self.config.heartbeat_timeout_s
        )
        if next_round <= round_index:
            self._count("fleet.rounds.refed")
            reply = self._send_round(shard, round_index, payloads, crc)
            self._absorb_health(reply["health"])
            return reply["records"]
        cursors = {
            name: self._delivered[name] for name in shard.tenants
        }
        records = self._request(
            shard,
            (messages.RECORDS_AFTER, cursors),
            self.config.round_timeout_s,
        )
        self._absorb_health(
            self._request(
                shard,
                (messages.HEALTH,),
                self.config.heartbeat_timeout_s,
            )
        )
        self._count("fleet.rounds.reconciled")
        return records

    def _absorb_health(self, health: Mapping[str, str]) -> None:
        for name, value in health.items():
            self._health[name] = TenantHealth(value)

    def _round_crc(self, payloads: List[bytes]) -> Optional[int]:
        """Tag a round once at dispatch assembly (shm only).

        One ``zlib.crc32`` chained across the chunks — equal to the
        CRC of their concatenation, which is exactly what the batched
        ring slot holds.  The transport reuses the tag across stages,
        so the hot path never re-hashes payload bytes.
        """
        if self.config.transport != "shm":
            return None
        crc = 0
        for payload in payloads:
            crc = zlib.crc32(payload, crc)
        return crc

    def _run_shard(
        self,
        shard: _Shard,
        round_index: int,
        payloads: List[bytes],
        crc: Optional[int],
        state: Optional[dict] = None,
    ) -> Dict[str, List[InferenceRecord]]:
        """One shard's slice of one round, surviving worker deaths.

        ``state`` is the in-flight dispatch from the fan-out phase
        (None when that dispatch already failed at send time).  Crash
        recovery here stays strictly single-shard — restart, re-feed,
        reconcile all talk to this shard only — because siblings may
        still have their own rounds in flight.  Migration away from a
        crash-looping shard is therefore deferred to the round
        boundary in :meth:`run_events`, where no request is pending
        anywhere; ``shard.restarts`` is left above the threshold as
        the signal.
        """
        attempts = 0
        while True:
            try:
                if state is not None:
                    inflight, state = state, None
                    reply = self._collect(
                        shard, round_index, payloads, crc, inflight
                    )
                    self._absorb_health(reply["health"])
                    records = reply["records"]
                elif attempts == 0:
                    reply = self._send_round(
                        shard, round_index, payloads, crc
                    )
                    self._absorb_health(reply["health"])
                    records = reply["records"]
                else:
                    records = self._reconcile(
                        shard, round_index, payloads, crc
                    )
                if shard.restarts <= self.config.max_restarts:
                    shard.restarts = 0
                shard.attempt = 0
                return records
            except ShardDeadError:
                attempts += 1
                if attempts > self.config.max_restarts + 1:
                    raise
                self._restart(shard)

    def _split_round(
        self,
        round_index: int,
        traces: Mapping[str, Sequence[BranchEvent]],
    ):
        """Group one round's traces into per-shard chunk dispatches."""
        out = []
        for shard in self.shards:
            slice_traces = {
                name: traces[name]
                for name in shard.tenants
                if name in traces and len(traces[name])
            }
            if not slice_traces:
                continue
            out.append(
                (
                    shard,
                    messages.encode_round(
                        round_index,
                        slice_traces,
                        self.config.journal_chunk_events,
                    ),
                )
            )
        return out

    def run_events(
        self, traces: Mapping[str, Sequence[BranchEvent]]
    ) -> Dict[str, List[InferenceRecord]]:
        """One fleet-wide monitoring round (the SocManager surface).

        Shards with traffic get a RUN dispatch; idle shards get a
        heartbeat ping, so every round doubles as a liveness sweep.
        Returns the merged per-tenant records of this round.
        """
        if self._closed:
            raise FleetError("the fleet has been closed")
        unknown = set(traces) - set(self._facades)
        if unknown:
            raise SocConfigError(f"unknown tenants {sorted(unknown)}")
        round_index = self._round
        self._round += 1
        self._count("fleet.rounds")
        dispatches = self._split_round(round_index, traces)
        busy = {shard.id for shard, _ in dispatches}
        results: Dict[str, List[InferenceRecord]] = {}
        # Fan the round out before collecting any reply: every busy
        # shard is staged and sent back-to-back, so workers fetch and
        # compute while the coordinator is still serialising for their
        # siblings — and no dispatch after the first has to wake a
        # fully idle system (a cold wake costs several times a warm
        # one).  A send-time failure is recovered synchronously in the
        # collect phase below, which never touches a sibling.
        plan = []
        inflight: Dict[int, dict] = {}
        for shard, payloads in dispatches:
            crc = self._round_crc(payloads)
            try:
                inflight[shard.id] = self._dispatch(
                    shard, round_index, payloads, crc
                )
            except ShardDeadError:
                pass  # _run_shard restarts and reconciles it below
            plan.append((shard, payloads, crc))
        try:
            for shard, payloads, crc in plan:
                records = self._run_shard(
                    shard,
                    round_index,
                    payloads,
                    crc,
                    inflight.pop(shard.id, None),
                )
                self._count("fleet.rounds.admitted")
                self._observe_load(shard, records)
                for name, tenant_records in records.items():
                    results[name] = tenant_records
                    self._delivered[name] = self._delivered.get(
                        name, 0
                    ) + len(tenant_records)
                    self._count(
                        "fleet.records.delivered", len(tenant_records)
                    )
        except BaseException:
            # Giving up on the round: bytes dispatched to shards we
            # will never collect from are discarded, keeping the
            # staged == consumed + discarded conservation law honest.
            for state in inflight.values():
                self._count(
                    "fleet.transport.bytes.discarded", state["staged"]
                )
            raise
        # Crash-loop migrations deferred from the collect phase: every
        # shard's slice has concluded, so EVICT/ADOPT cannot race an
        # in-flight RUN reply on a sibling's pipe.
        for shard in self.shards:
            if shard.restarts > self.config.max_restarts:
                self._migrate_from(shard)
                shard.restarts = 0
        for shard in self.shards:
            if shard.id not in busy:
                self.heartbeat(shard)
        # Placement changes only here, after every shard's slice of the
        # round concluded — the atomic round boundary the routing table
        # (and the serve front door's sticky sessions) key off.
        self._maybe_rebalance()
        return results

    # ------------------------------------------------------------------
    # Supervision entry points
    # ------------------------------------------------------------------

    def heartbeat(self, shard: Optional[_Shard] = None) -> bool:
        """Ping one shard (or the whole fleet); restart on a miss.

        Returns True when every probed shard answered its deadline
        without needing a restart.
        """
        shards = [shard] if shard is not None else list(self.shards)
        clean = True
        for probe in shards:
            token = (probe.id, self._round, probe.total_restarts)
            try:
                self._count("fleet.heartbeats")
                echoed = self._request(
                    probe,
                    (messages.PING, token),
                    self.config.heartbeat_timeout_s,
                )
                if echoed != token:
                    raise ShardDeadError(
                        f"shard {probe.id} echoed a stale heartbeat"
                    )
                probe.restarts = 0
                probe.attempt = 0
            except ShardDeadError:
                clean = False
                self._count("fleet.heartbeat.misses")
                self._restart(probe)
                if probe.restarts > self.config.max_restarts:
                    self._migrate_from(probe)
        return clean

    def arm_kill(self, shard_id: int, site: str, index: int = 0) -> None:
        """Arm a deterministic ``kill -9`` in one worker (chaos only).

        The worker installs a
        :class:`~repro.faults.crashpoints.SigkillInjector` that SIGKILLs
        its own process at the ``index``-th visit of WAL crash site
        ``site`` — e.g. ``"wal.chunk.done"`` for "inputs journaled,
        round not yet committed".  The next :meth:`run_events` that
        routes work through the shard will lose the worker mid-round
        and exercise the full restart/recover/re-feed path.
        """
        self._request(
            self.shards[shard_id],
            (messages.ARM_KILL, site, index),
            self.config.heartbeat_timeout_s,
        )

    def counters(self) -> Dict[str, int]:
        """Fleet-wide merged counters: ``fleet.*`` + summed workers.

        Worker counters (``socmgr.*``, engine counters, durability
        counters) are summed across shards; the merged view also
        exposes ``fleet.rounds.replayed`` (the summed WAL replays) and
        per-shard ``fleet.shard.<id>.rounds`` so the conservation law
        can be checked from this one snapshot.

        Wall-clock transport timings and transport-shape counters are
        excluded: the merged snapshot is the byte-identity surface
        (same-topology runs must compare equal, pipe and shm runs of
        the same workload included), and neither nanosecond timings
        nor ring-segment bookkeeping ever can.  They are reported by
        :meth:`transport_stats` instead.
        """
        merged: Dict[str, int] = {
            name: value
            for name, value in self.counts.items()
            if name not in _WALLCLOCK_COUNTERS
            and name not in _TRANSPORT_SHAPE_COUNTERS
        }
        replayed = 0
        for shard in self.shards:
            snapshot = self._request(
                shard,
                (messages.COUNTERS,),
                self.config.heartbeat_timeout_s,
            )
            for name, value in snapshot.items():
                merged[name] = merged.get(name, 0) + int(value)
            runs = int(snapshot.get("socmgr.runs", 0))
            shard_replayed = int(
                snapshot.get("socmgr.rounds_replayed", 0)
            )
            replayed += shard_replayed
            merged[f"fleet.shard.{shard.id}.rounds"] = (
                runs - shard_replayed
            )
        merged["fleet.rounds.replayed"] = replayed
        return merged

    def transport_stats(self) -> Dict[str, int]:
        """The full transport + placement counter view, timings included.

        This is what the bench harness and ``repro.eval metrics`` read:
        ``fleet.transport.ns`` / ``fleet.transport.stage_ns`` are
        wall-clock sums across dispatches, alongside the deterministic
        byte/event counters (which must satisfy ``bytes.staged ==
        bytes.consumed + bytes.discarded``).
        """
        return {
            name: self.counts[name]
            for name in TRANSPORT_COUNTERS + PLACEMENT_COUNTERS
        }

    def transport_names(self) -> Dict[int, str]:
        """Per-shard active transport (``"pipe"`` or ``"shm"``)."""
        return {
            shard.id: (
                shard.transport.name
                if shard.transport is not None
                else "pipe"
            )
            for shard in self.shards
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                if shard.conn is not None and shard.alive:
                    self._request(
                        shard,
                        (messages.STOP,),
                        self.config.heartbeat_timeout_s,
                    )
            except (ShardDeadError, FleetError):
                pass
            self._reap(shard)

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
