"""One fleet shard: a :class:`SocManager` in its own process.

``worker_main`` is the child-process entry point.  It builds the
shard's deployments with the (picklable) factory the coordinator
supplied, opens the shard's own write-ahead journal directory, and —
this is the crash-recovery contract — *recovers* instead of starting
fresh whenever that journal already has records: the checkpoint is
restored, committed rounds are replayed, and an uncommitted tail is
discarded so the coordinator can re-feed it.  After that it serves the
tiny request/reply vocabulary of :mod:`repro.fleet.messages` until
STOP (or until a deterministically armed ``SIGKILL`` takes it down
mid-round, which is the point of the chaos experiments).

The worker appends a fresh checkpoint after recovery and after any
topology change (EVICT/ADOPT): recovery work stays bounded across
repeated crashes, and a journal never replays into a tenant set it
does not describe.
"""

from __future__ import annotations

import traceback
from typing import Callable, List, Optional, Sequence

from repro.durability.journal import (
    FileJournal,
    RecordKind,
    encode_json_payload,
)
from repro.faults.crashpoints import SigkillInjector
from repro.fleet import messages
from repro.obs import MetricsRegistry
from repro.soc.manager import Deployment, SocManager


def _write_checkpoint(manager: SocManager) -> None:
    """Append a checkpoint record + segment roll at a round boundary."""
    from repro.durability.checkpoint import capture_checkpoint

    journal = manager._journal
    if journal is None:
        return
    journal.append(
        RecordKind.CHECKPOINT,
        encode_json_payload(capture_checkpoint(manager)),
    )
    journal.roll()
    manager._events_since_checkpoint = 0


def build_manager(
    factory: Callable[..., List[Deployment]],
    tenant_names: Sequence[str],
    journal_dir: str,
    manager_kwargs: Optional[dict] = None,
) -> SocManager:
    """Construct (or recover) one shard's manager around its journal."""
    kwargs = dict(manager_kwargs or {})
    metrics = MetricsRegistry()
    deployments = factory(list(tenant_names))
    journal = FileJournal(journal_dir)
    if journal.records():
        manager = SocManager.recover(
            journal, deployments, metrics=metrics, **kwargs
        )
        # Checkpoint the recovered state so the *next* crash replays
        # from here, not from the previous lineage's checkpoint.
        _write_checkpoint(manager)
    else:
        manager = SocManager(
            deployments, metrics=metrics, journal=journal, **kwargs
        )
    return manager


def worker_main(
    conn,
    shard_id: int,
    factory: Callable[..., List[Deployment]],
    tenant_names: Sequence[str],
    journal_dir: str,
    manager_kwargs: Optional[dict] = None,
) -> None:
    """Child-process entry: serve requests until STOP or death."""
    manager = build_manager(
        factory, tenant_names, journal_dir, manager_kwargs
    )
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; nothing left to serve
        verb, args = request[0], request[1:]
        try:
            if verb == messages.RUN:
                round_index, payloads = args
                traces = messages.decode_round(round_index, payloads)
                records = manager.run_events(traces)
                reply = {
                    "round": round_index,
                    "next_round": manager.next_round,
                    "records": records,
                    "health": {
                        name: health.value
                        for name, health in manager.health().items()
                    },
                }
                conn.send((messages.OK, reply))
            elif verb == messages.PING:
                conn.send((messages.OK, args[0]))
            elif verb == messages.HEALTH:
                conn.send(
                    (
                        messages.OK,
                        {
                            name: health.value
                            for name, health in manager.health().items()
                        },
                    )
                )
            elif verb == messages.COUNTERS:
                snapshot = manager.metrics.snapshot()
                conn.send((messages.OK, dict(snapshot["counters"])))
            elif verb == messages.ROUND:
                conn.send((messages.OK, manager.next_round))
            elif verb == messages.RECORDS_AFTER:
                cursors = args[0]
                out = {
                    name: manager.tenant(name).mcm.records[cursor:]
                    for name, cursor in cursors.items()
                }
                conn.send((messages.OK, out))
            elif verb == messages.EVICT:
                from repro.durability.checkpoint import (
                    capture_tenant_state,
                )

                names = args[0]
                docs = [
                    capture_tenant_state(manager.tenant(name))
                    for name in names
                ]
                for name in names:
                    manager.remove_tenant(name)
                _write_checkpoint(manager)
                conn.send((messages.OK, docs))
            elif verb == messages.ADOPT:
                from repro.durability.checkpoint import (
                    restore_tenant_state,
                )

                names, docs = args
                gpu = manager.tenants[0].deployment.driver.gpu
                deployments = factory(list(names), gpu=gpu)
                for deployment, doc in zip(deployments, docs):
                    runtime = manager.admit_tenant(deployment)
                    restore_tenant_state(runtime, doc)
                _write_checkpoint(manager)
                conn.send((messages.OK, None))
            elif verb == messages.ARM_KILL:
                site, index = args
                manager._crash_points = SigkillInjector(
                    kill_at=index, site_filter=site
                )
                conn.send((messages.OK, None))
            elif verb == messages.STOP:
                conn.send((messages.OK, None))
                return
            else:
                conn.send((messages.ERR, f"unknown verb {verb!r}"))
        except Exception:
            # Report and keep serving: a refused request (unknown
            # tenant, bad chunk) must not look like a dead shard.
            conn.send((messages.ERR, traceback.format_exc()))
