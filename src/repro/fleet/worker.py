"""One fleet shard: a :class:`SocManager` in its own process.

``worker_main`` is the child-process entry point.  It builds the
shard's deployments with the (picklable) factory the coordinator
supplied, opens the shard's own write-ahead journal directory, and —
this is the crash-recovery contract — *recovers* instead of starting
fresh whenever that journal already has records: the checkpoint is
restored, committed rounds are replayed, and an uncommitted tail is
discarded so the coordinator can re-feed it.  After that it serves the
tiny request/reply vocabulary of :mod:`repro.fleet.messages` until
STOP (or until a deterministically armed ``SIGKILL`` takes it down
mid-round, which is the point of the chaos experiments).

The worker appends a fresh checkpoint after recovery and after any
topology change (EVICT/ADOPT): recovery work stays bounded across
repeated crashes, and a journal never replays into a tenant set it
does not describe.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, List, Optional, Sequence

from repro.durability.journal import (
    FileJournal,
    RecordKind,
    encode_json_payload,
)
from repro.errors import TransportError
from repro.faults.crashpoints import SigkillInjector
from repro.fleet import messages
from repro.fleet.transport import make_worker_transport
from repro.obs import MetricsRegistry
from repro.soc.manager import Deployment, SocManager


def _write_checkpoint(manager: SocManager) -> None:
    """Append a checkpoint record + segment roll at a round boundary."""
    from repro.durability.checkpoint import capture_checkpoint

    journal = manager._journal
    if journal is None:
        return
    journal.append(
        RecordKind.CHECKPOINT,
        encode_json_payload(capture_checkpoint(manager)),
    )
    journal.roll()
    manager._events_since_checkpoint = 0


def build_manager(
    factory: Callable[..., List[Deployment]],
    tenant_names: Sequence[str],
    journal_dir: str,
    manager_kwargs: Optional[dict] = None,
) -> SocManager:
    """Construct (or recover) one shard's manager around its journal."""
    kwargs = dict(manager_kwargs or {})
    metrics = MetricsRegistry()
    deployments = factory(list(tenant_names))
    journal = FileJournal(journal_dir)
    if journal.records():
        manager = SocManager.recover(
            journal, deployments, metrics=metrics, **kwargs
        )
        # Checkpoint the recovered state so the *next* crash replays
        # from here, not from the previous lineage's checkpoint.
        _write_checkpoint(manager)
    else:
        manager = SocManager(
            deployments, metrics=metrics, journal=journal, **kwargs
        )
    return manager


def worker_main(
    conn,
    shard_id: int,
    factory: Callable[..., List[Deployment]],
    tenant_names: Sequence[str],
    journal_dir: str,
    manager_kwargs: Optional[dict] = None,
    transport_spec: tuple = ("pipe",),
) -> None:
    """Child-process entry: serve requests until STOP or death."""
    manager = build_manager(
        factory, tenant_names, journal_dir, manager_kwargs
    )
    transport = make_worker_transport(transport_spec)
    try:
        _serve(conn, manager, factory, transport)
    finally:
        transport.close()


def _serve(conn, manager: SocManager, factory, transport) -> None:
    while True:
        try:
            # Block in poll (not recv) so the recv below times only
            # the drain of an already-arrived request, never the wait
            # for one — and time it with the thread CPU clock, so a
            # scheduler preemption mid-drain (routine on
            # core-constrained hosts) is not billed to the transport.
            conn.poll(None)
            recv_started_ns = time.thread_time_ns()
            request = conn.recv()
            recv_ns = time.thread_time_ns() - recv_started_ns
        except (EOFError, OSError):
            return  # coordinator went away; nothing left to serve
        verb, args = request[0], request[1:]
        try:
            if verb == messages.RUN:
                round_index, wire = args
                try:
                    fetch_started_ns = time.thread_time_ns()
                    buffers = transport.fetch(wire)
                    fetch_ns = time.thread_time_ns() - fetch_started_ns
                except TransportError as error:
                    # Torn slot or unmappable descriptor: nothing was
                    # run, the round is intact on the coordinator.
                    # Signal it to fall back to the pipe and re-send.
                    conn.send(
                        (messages.ERR, messages.TRANSPORT_ERR + str(error))
                    )
                    continue
                consumed = sum(len(buffer) for buffer in buffers)
                started_ns = time.perf_counter_ns()
                traces = messages.decode_round(round_index, buffers)
                del buffers  # drop ring views before the slots recycle
                records = manager.run_events(traces)
                reply = {
                    "round": round_index,
                    "next_round": manager.next_round,
                    "records": records,
                    "health": {
                        name: health.value
                        for name, health in manager.health().items()
                    },
                    # End-to-end transport receipt + the compute share
                    # of the coordinator's wall clock (decode + run),
                    # so transport time = wall - compute on both paths;
                    # recv_ns/fetch_ns are the worker's shares of the
                    # coordinator->worker byte path (post-poll drain +
                    # payload materialisation), measured on the thread
                    # CPU clock: no idle waiting, no preempting
                    # neighbour's slice, and no cross-process clock
                    # comparison for the coordinator's sum.
                    "consumed_bytes": consumed,
                    "compute_ns": time.perf_counter_ns() - started_ns,
                    "recv_ns": recv_ns,
                    "fetch_ns": fetch_ns,
                }
                conn.send(
                    (messages.OK, transport.stage_reply(reply, wire[0]))
                )
            elif verb == messages.PING:
                conn.send((messages.OK, args[0]))
            elif verb == messages.HEALTH:
                conn.send(
                    (
                        messages.OK,
                        {
                            name: health.value
                            for name, health in manager.health().items()
                        },
                    )
                )
            elif verb == messages.COUNTERS:
                snapshot = manager.metrics.snapshot()
                conn.send((messages.OK, dict(snapshot["counters"])))
            elif verb == messages.ROUND:
                conn.send((messages.OK, manager.next_round))
            elif verb == messages.RECORDS_AFTER:
                cursors = args[0]
                out = {
                    name: manager.tenant(name).mcm.records[cursor:]
                    for name, cursor in cursors.items()
                }
                conn.send((messages.OK, out))
            elif verb == messages.EVICT:
                from repro.durability.checkpoint import (
                    capture_tenant_state,
                )

                names = args[0]
                docs = [
                    capture_tenant_state(manager.tenant(name))
                    for name in names
                ]
                for name in names:
                    manager.remove_tenant(name)
                _write_checkpoint(manager)
                conn.send((messages.OK, docs))
            elif verb == messages.ADOPT:
                from repro.durability.checkpoint import (
                    restore_tenant_state,
                )

                names, docs = args
                gpu = manager.tenants[0].deployment.driver.gpu
                deployments = factory(list(names), gpu=gpu)
                for deployment, doc in zip(deployments, docs):
                    runtime = manager.admit_tenant(deployment)
                    restore_tenant_state(runtime, doc)
                _write_checkpoint(manager)
                conn.send((messages.OK, None))
            elif verb == messages.ARM_KILL:
                site, index = args
                manager._crash_points = SigkillInjector(
                    kill_at=index, site_filter=site
                )
                conn.send((messages.OK, None))
            elif verb == messages.STOP:
                conn.send((messages.OK, None))
                return
            else:
                conn.send((messages.ERR, f"unknown verb {verb!r}"))
        except Exception:
            # Report and keep serving: a refused request (unknown
            # tenant, bad chunk) must not look like a dead shard.
            conn.send((messages.ERR, traceback.format_exc()))
