"""Pluggable coordinator <-> worker transport (docs/FLEET.md §5).

Round dispatches used to cross the coordinator/worker boundary as
pickled TRACE_CHUNK payload lists inside the duplex pipe — one
serialize and several copies per round, a tax that grows linearly with
offered load.  This module makes the bulk-byte path pluggable:

- :class:`PipeCoordinatorTransport` / :class:`PipeWorkerTransport` —
  the original path, payloads and replies ride the pipe inside the
  pickled request/reply tuples (portable baseline and fallback).
- :class:`ShmCoordinatorTransport` / :class:`ShmWorkerTransport` —
  zero-copy: one round's payloads are written **once** into a
  per-shard :class:`ShmRing` (a ``multiprocessing.shared_memory``
  segment) as a single batched journal-format record, and the pipe
  carries only a tiny slot descriptor plus the per-chunk lengths.
  The worker validates the slot (CRC + sequence — the durability
  layer's integrity vocabulary, torn slots detected exactly like torn
  WAL records, one contiguous CRC pass for the whole round), splits
  it into zero-copy per-chunk views, and maps the columnar
  TRACE_CHUNK arrays as numpy views straight over the ring.  Round
  replies come back through a second ring the same way.

Control messages — PING heartbeats, HEALTH, COUNTERS, EVICT/ADOPT,
ARM_KILL, STOP — always stay on the pipe: they are tiny, and the pipe
is the liveness channel the supervisor watches.

Fallback matrix (never drop a round):

- ring creation fails (platform without shm, exhausted ``/dev/shm``)
  → the shard is built on the pipe transport;
- the worker cannot attach the ring (stale name after an exec-style
  spawn failure) → it serves with the pipe transport and answers the
  first shm descriptor with a ``transport:`` ERR, which the
  coordinator converts into a permanent per-shard pipe fallback and an
  immediate re-send of the same round;
- a round larger than the ring's free space spills inline onto the
  pipe whole (counted per payload) — backpressure without loss;
- a torn reply slot is treated like a dead shard: restart +
  reconcile, so the round is fetched (never recomputed) — exactly-once
  delivery survives transport corruption.

Every transition is a ``fleet.transport.*`` counter, and staged bytes
obey the conservation law the eval harness asserts::

    fleet.transport.bytes.staged ==
        fleet.transport.bytes.consumed + fleet.transport.bytes.discarded

where ``consumed`` is the byte count the *worker* reports back per
round (an end-to-end receipt, not coordinator bookkeeping) and
``discarded`` covers rounds whose worker died or refused before
consuming them.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.durability.journal import (
    read_record_from,
    record_size,
    write_record_into,
)
from repro.errors import JournalCorruptionError, TransportError

#: Registered transport selectors (``FleetConfig.transport``).
TRANSPORT_NAMES = ("pipe", "shm")

#: Ring record kinds (the journal header's ``kind`` byte; values are
#: disjoint from :class:`~repro.durability.journal.RecordKind` so a
#: slot can never be mistaken for an on-disk WAL record).
SLOT_KIND_CHUNK = 0x51
SLOT_KIND_REPLY = 0x52

#: Wire tags inside RUN requests / replies.
WIRE_INLINE = "inline"
WIRE_SHM = "shm"

#: Default per-ring capacity.  One monitoring round's payloads must fit
#: or the remainder spills inline, so size this to the largest round.
DEFAULT_RING_BYTES = 1 << 22

#: ``magic | capacity`` segment header ahead of the data region.
_RING_HEADER = struct.Struct("<8sQ")
_RING_MAGIC = b"RFLTRNG1"

#: Distinguishes segments of fleets sharing one coordinator process.
_RING_SERIAL = itertools.count()


def _attach_untracked(name: str):
    """Attach a segment without registering it for cleanup.

    Python < 3.13 registers *every* attach with the resource tracker
    (there is no ``track=False`` yet), which would unlink the segment
    out from under the coordinator when the first worker exits — and
    the tracker cache is shared across the process tree, so
    unregistering after the fact would strip the owner's registration
    too.  Suppress registration for just this call instead: the
    coordinator owns the lifetime, workers only borrow a mapping.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmRing:
    """Single-producer single-consumer ring of journal-format records.

    Slot layout *is* the WAL record layout::

        [u32 length][u32 crc32][u64 sequence][u8 kind][payload ...]

    so torn-slot detection (CRC over the body, strictly monotonic
    sequence numbers) reuses the durability layer's validators
    verbatim.  Descriptors — ``(sequence, offset)`` pairs — ride the
    pipe, so the consumer seeks straight to its slots; the ring itself
    carries no cursor state and a half-written slot can never be
    silently consumed.

    The fleet's request/reply protocol is strictly alternating (one
    round in flight per shard), so the producer frees *all* staged
    slots at the next round boundary (:meth:`free_all`) instead of
    tracking per-slot acknowledgements.  Records wrap to offset 0 when
    they would cross the end of the data region (slots stay contiguous
    for zero-copy mapping); a record that exceeds the free space is
    refused (:meth:`try_stage` returns ``None``) and the caller spills
    its payloads inline — backpressure without loss.
    """

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self.capacity = capacity
        self._owner = owner
        self.data = memoryview(shm.buf)[
            _RING_HEADER.size:_RING_HEADER.size + capacity
        ]
        self.next_sequence = 0
        self._write_offset = 0
        self._used = 0
        self.wraps = 0
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, name: str, capacity: int) -> "ShmRing":
        from multiprocessing import shared_memory

        if capacity < 4096:
            raise TransportError(
                f"ring capacity must be >= 4096 bytes, got {capacity}"
            )
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=_RING_HEADER.size + capacity
            )
        except Exception as error:
            raise TransportError(
                f"cannot create shared-memory ring {name!r}: "
                f"{type(error).__name__}: {error}"
            ) from error
        _RING_HEADER.pack_into(shm.buf, 0, _RING_MAGIC, capacity)
        ring = cls(shm, capacity, owner=True)
        # Prefault the data region: staging must never eat first-touch
        # page faults on the hot path (~100 us per round otherwise).
        ring.data[:] = bytes(capacity)
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        try:
            shm = _attach_untracked(name)
        except Exception as error:
            raise TransportError(
                f"cannot attach shared-memory ring {name!r}: "
                f"{type(error).__name__}: {error}"
            ) from error
        magic, capacity = _RING_HEADER.unpack_from(shm.buf, 0)
        if magic != _RING_MAGIC:
            shm.close()
            raise TransportError(
                f"segment {name!r} is not a fleet ring (bad magic)"
            )
        return cls(shm, int(capacity), owner=False)

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self.data.release()
        except BufferError:
            pass
        try:
            self._shm.close()
        except BufferError:
            # A consumer still holds payload views; process exit (or
            # the views' refcount hitting zero) reclaims the mapping.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    # -- producer -----------------------------------------------------------

    def try_stage(
        self, kind: int, payload, payload_crc: Optional[int] = None
    ) -> Optional[Tuple[int, int]]:
        """Write one record; returns ``(sequence, offset)`` or ``None``.

        ``payload`` is one buffer or a list of buffers written
        back-to-back as a single record (one header, one CRC pass for
        a whole round's chunks).  ``None`` means the ring cannot take
        the record before the next :meth:`free_all` — full-ring
        backpressure; the caller spills the payloads inline instead of
        losing them.

        Slot CRCs use the payload-first composition so payloads tagged
        once (``zlib.crc32`` chained across the parts, e.g. at
        TRACE_CHUNK assembly) cost only a 9-byte hash to stage.
        """
        length = (
            sum(len(part) for part in payload)
            if isinstance(payload, (list, tuple))
            else len(payload)
        )
        total = record_size(length)
        offset = self._write_offset
        used = self._used
        if offset + total > self.capacity:
            pad = self.capacity - offset
            if used + pad + total > self.capacity:
                return None
            used += pad
            offset = 0
            self.wraps += 1
        elif used + total > self.capacity:
            return None
        if payload_crc is None:
            # Readers always validate the payload-first composition,
            # so untagged payloads are chained here, not in the writer.
            parts = (
                payload
                if isinstance(payload, (list, tuple))
                else (payload,)
            )
            payload_crc = 0
            for part in parts:
                payload_crc = zlib.crc32(part, payload_crc)
        sequence = self.next_sequence
        write_record_into(
            self.data, offset, sequence, kind, payload, payload_crc
        )
        self.next_sequence += 1
        self._write_offset = offset + total
        self._used = used + total
        return sequence, offset

    def free_all(self) -> None:
        """Round boundary: every staged slot has been consumed (or the
        round was discarded) — reclaim the whole data region and park
        the write cursor back at 0, so steady-state rounds rewrite the
        same warm pages instead of faulting fresh ones.  Sequence
        numbers keep advancing, so a recycled offset can never satisfy
        a stale descriptor."""
        self._used = 0
        self._write_offset = 0

    # -- consumer -----------------------------------------------------------

    def read(
        self,
        sequence: int,
        offset: int,
        kind: int,
        payload_crc: Optional[int] = None,
        length: Optional[int] = None,
    ):
        """Validate the slot at ``offset`` and return its payload view.

        Zero-copy: the returned memoryview aliases the ring.  A torn
        slot — truncated header, CRC mismatch, stale sequence — raises
        :class:`TransportError` (wrapping the journal's corruption
        taxonomy) rather than returning bytes that cannot be trusted.

        When the descriptor carried the writer's payload tag
        (``payload_crc``), verification is tiered: the stored header
        CRC is checked against ``crc32(prefix, payload_crc)``, and the
        stored ``length`` — the one header field outside CRC coverage
        — against the descriptor's ``length``, so every header tear is
        caught without re-hashing the payload.  That is sufficient in
        the live protocol: a slot is only ever read after its
        descriptor arrived through the pipe, the write completed
        before the descriptor was sent (the pipe syscall is the
        barrier), sequence numbers are strictly monotonic, and rings
        are fresh per worker generation — so a torn payload under an
        intact, in-sequence header is not observable.  Without a tag
        the whole body is hashed, exactly like a WAL segment scan.
        """
        try:
            got_sequence, got_kind, payload, _ = read_record_from(
                self.data,
                offset,
                expected_sequence=sequence,
                payload_first_crc=True,
                payload_crc=payload_crc,
                expected_payload_length=length,
            )
        except JournalCorruptionError as error:
            raise TransportError(
                f"torn ring slot (seq {sequence}, offset {offset}): {error}"
            ) from error
        if got_kind != kind:
            raise TransportError(
                f"ring slot at offset {offset} has kind {got_kind:#x}, "
                f"expected {kind:#x}"
            )
        return payload


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class CoordinatorTransport:
    """Coordinator half of the transport contract.

    ``stage`` turns one round's TRACE_CHUNK payloads into the picklable
    wire object that rides the RUN request; ``fetch_reply`` turns the
    reply wire object back into the worker's reply dict.  ``spec()``
    is the picklable descriptor handed to ``worker_main`` so the child
    process can build its matching half.
    """

    name = "pipe"

    def spec(self) -> tuple:
        raise NotImplementedError

    def stage(
        self,
        payloads: Sequence[bytes],
        crc: Optional[int] = None,
    ):
        """Turn one round's payloads into the RUN wire object.

        ``crc`` is an optional pre-computed ``zlib.crc32`` tag chained
        across the payloads in order (the CRC of their concatenation)
        — computed once at dispatch assembly and reused across
        retries, so the shm path hashes only the slot prefix on the
        hot path.  Transports that don't tag slots ignore it.
        """
        raise NotImplementedError

    def fetch_reply(self, wire):
        raise NotImplementedError

    def take_stats(self) -> Dict[str, int]:
        """Drain transport-internal event deltas (wraps, spills)."""
        return {}

    def close(self) -> None:
        pass


class PipeCoordinatorTransport(CoordinatorTransport):
    """Original path: payloads pickled into the RUN request itself."""

    name = "pipe"

    def spec(self) -> tuple:
        return ("pipe",)

    def stage(
        self,
        payloads: Sequence[bytes],
        crc: Optional[int] = None,
    ):
        return (WIRE_INLINE, list(payloads))

    def fetch_reply(self, wire):
        tag, body = wire
        if tag != WIRE_INLINE:
            raise TransportError(
                f"pipe transport cannot fetch a {tag!r} reply"
            )
        return body


class ShmCoordinatorTransport(CoordinatorTransport):
    """Shared-memory rings: payloads out via ``c2w``, replies back via
    ``w2c``; the pipe carries only descriptors."""

    name = "shm"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        label = f"rfleet-{os.getpid()}-{next(_RING_SERIAL)}"
        self.c2w = ShmRing.create(f"{label}-c2w", ring_bytes)
        try:
            self.w2c = ShmRing.create(f"{label}-w2c", ring_bytes)
        except TransportError:
            self.c2w.close()
            raise
        self._spills = 0
        self._wraps_reported = 0

    def spec(self) -> tuple:
        return ("shm", self.c2w.name, self.w2c.name)

    def stage(
        self,
        payloads: Sequence[bytes],
        crc: Optional[int] = None,
    ):
        """One batched slot per round: the chunks are copied
        back-to-back into a single ring record, and the wire carries
        ``(tag, sequence, offset, lengths)`` — one header write, one
        contiguous CRC pass on the worker, and the per-chunk split
        costs only zero-copy view slicing.  A round that does not fit
        the ring spills inline whole."""
        payloads = list(payloads)
        if not payloads:
            return (WIRE_INLINE, payloads)
        if crc is None:
            crc = 0
            for payload in payloads:
                crc = zlib.crc32(payload, crc)
        self.c2w.free_all()
        slot = self.c2w.try_stage(SLOT_KIND_CHUNK, payloads, crc)
        if slot is None:
            self._spills += len(payloads)
            return (WIRE_INLINE, payloads)
        # The payload tag rides the descriptor over the reliable pipe,
        # so the worker verifies the slot header against it instead of
        # re-hashing the payload bytes (see :meth:`ShmRing.read`).
        return (
            WIRE_SHM,
            slot[0],
            slot[1],
            [len(payload) for payload in payloads],
            crc,
        )

    def fetch_reply(self, wire):
        if wire[0] == WIRE_INLINE:
            return wire[1]
        _, (sequence, offset), length, payload_crc = wire
        view = self.w2c.read(
            sequence,
            offset,
            SLOT_KIND_REPLY,
            payload_crc=payload_crc,
            length=length,
        )
        try:
            return pickle.loads(view)
        finally:
            view.release()

    def take_stats(self) -> Dict[str, int]:
        stats = {}
        if self._spills:
            stats["spills"] = self._spills
            self._spills = 0
        wraps = self.c2w.wraps - self._wraps_reported
        if wraps:
            stats["wraps"] = wraps
            self._wraps_reported = self.c2w.wraps
        return stats

    def close(self) -> None:
        self.c2w.close()
        self.w2c.close()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class WorkerTransport:
    """Worker half: ``fetch`` maps a RUN wire object to payload
    buffers (bytes or zero-copy ring views), ``stage_reply`` turns the
    reply dict into the wire object sent back with OK.

    ``stage_reply`` mirrors the request's channel (``request_tag``): a
    round that arrived inline is answered inline even when a reply
    ring exists, so a coordinator that fell back to the pipe mid-life
    never receives a descriptor it can no longer map.
    """

    name = "pipe"

    def fetch(self, wire) -> List:
        raise NotImplementedError

    def stage_reply(self, reply, request_tag: str = WIRE_SHM):
        raise NotImplementedError

    def close(self) -> None:
        pass


class PipeWorkerTransport(WorkerTransport):
    name = "pipe"

    def fetch(self, wire) -> List:
        if wire[0] != WIRE_INLINE:
            raise TransportError(
                "worker has no ring attached for a shm descriptor"
            )
        return list(wire[1])

    def stage_reply(self, reply, request_tag: str = WIRE_SHM):
        return (WIRE_INLINE, reply)


class ShmWorkerTransport(WorkerTransport):
    name = "shm"

    def __init__(self, c2w: ShmRing, w2c: ShmRing) -> None:
        self.c2w = c2w
        self.w2c = w2c

    @classmethod
    def attach(cls, spec: tuple) -> "ShmWorkerTransport":
        _, c2w_name, w2c_name = spec
        c2w = ShmRing.attach(c2w_name)
        try:
            w2c = ShmRing.attach(w2c_name)
        except TransportError:
            c2w.close()
            raise
        return cls(c2w, w2c)

    def fetch(self, wire) -> List:
        if wire[0] == WIRE_INLINE:
            return list(wire[1])
        _, sequence, offset, lengths, payload_crc = wire
        view = self.c2w.read(
            sequence,
            offset,
            SLOT_KIND_CHUNK,
            payload_crc=payload_crc,
            length=sum(lengths),
        )
        buffers: List = []
        start = 0
        for length in lengths:
            buffers.append(view[start:start + length])
            start += length
        return buffers

    def stage_reply(self, reply, request_tag: str = WIRE_SHM):
        if request_tag == WIRE_INLINE:
            return (WIRE_INLINE, reply)
        self.w2c.free_all()
        payload = pickle.dumps(reply, pickle.HIGHEST_PROTOCOL)
        payload_crc = zlib.crc32(payload)
        slot = self.w2c.try_stage(SLOT_KIND_REPLY, payload, payload_crc)
        if slot is None:
            return (WIRE_INLINE, reply)
        return (WIRE_SHM, slot, len(payload), payload_crc)

    def close(self) -> None:
        self.c2w.close()
        self.w2c.close()


def make_worker_transport(spec: tuple) -> WorkerTransport:
    """Build the worker half from its picklable spec.

    Attach failure degrades to the pipe transport instead of killing
    the worker: the first shm descriptor it cannot serve draws a
    ``transport:`` ERR, and the coordinator falls back shard-wide.
    """
    if spec and spec[0] == "shm":
        try:
            return ShmWorkerTransport.attach(spec)
        except TransportError:
            return PipeWorkerTransport()
    return PipeWorkerTransport()
