"""Coordinator <-> worker message vocabulary (repro.fleet).

Each worker shard is driven over one duplex :mod:`multiprocessing`
pipe.  Requests are small picklable tuples ``(verb, *args)``; replies
are ``(OK, payload)`` or ``(ERR, message)``.  Round inputs do not ride
as pickled event lists — they are encoded with the durability layer's
columnar TRACE_CHUNK codec (:func:`repro.durability.journal.
encode_trace_chunk`), the exact bytes the worker's own write-ahead
journal stores, so the wire format and the replay format can never
drift apart.

How those chunk payloads cross the process boundary is the transport
layer's business (:mod:`repro.fleet.transport`): a RUN request carries
``(RUN, round_index, wire)`` where ``wire`` is either ``("inline",
[payload, ...])`` (pipe transport) or ``("shm", [descriptor, ...])``
(shared-memory ring slots, payload bytes never pickled).  Replies are
shaped the same way.  :func:`decode_round` accepts any buffers the
chunk codec accepts — bytes or zero-copy memoryviews over a ring.

The vocabulary is deliberately tiny and synchronous (one request, one
reply) — supervision lives entirely in the coordinator, and a worker
that dies mid-request is detected by EOF/timeout on the pipe, not by a
protocol state machine.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.durability.journal import (
    decode_trace_chunk,
    encode_trace_chunk,
)
from repro.errors import FleetError
from repro.workloads.cfg import BranchEvent

# -- request verbs (coordinator -> worker) ---------------------------------

#: One monitoring round: ``(RUN, round_index, [chunk_bytes, ...])``.
RUN = "run"
#: Liveness probe: ``(PING, token)`` -> ``(OK, token)``.
PING = "ping"
#: Current tenant health: ``-> (OK, {tenant: health_value})``.
HEALTH = "health"
#: Manager-level counter snapshot: ``-> (OK, {name: value})``.
COUNTERS = "counters"
#: Round cursor: ``-> (OK, next_round)`` (first round not committed).
ROUND = "round"
#: Lifetime records past a cursor: ``(RECORDS_AFTER, {tenant: count})``
#: -> ``(OK, {tenant: [records]})`` — the post-commit-pre-reply crash
#: reconciliation path.
RECORDS_AFTER = "records_after"
#: Migration out: ``(EVICT, [names])`` -> ``(OK, [tenant docs])``.
EVICT = "evict"
#: Migration in: ``(ADOPT, [names], [tenant docs])`` -> ``(OK, None)``.
ADOPT = "adopt"
#: Deterministic chaos: ``(ARM_KILL, site, index)`` — SIGKILL self at
#: the ``index``-th visit of WAL crash site ``site``.
ARM_KILL = "arm_kill"
#: Clean shutdown: ``-> (OK, None)``, then the worker exits.
STOP = "stop"

# -- reply tags (worker -> coordinator) ------------------------------------

OK = "ok"
ERR = "err"

#: Marker prefix on ERR messages caused by the bulk transport (torn
#: ring slot, unmappable descriptor).  The coordinator treats these as
#: "fall back to the pipe transport and re-send the round", not as a
#: refused request.
TRANSPORT_ERR = "transport: "


def encode_round(
    round_index: int,
    traces: Mapping[str, Sequence[BranchEvent]],
    chunk_events: int = 8192,
) -> List[bytes]:
    """One round's traces as TRACE_CHUNK payloads, in tenant order."""
    if chunk_events < 1:
        raise FleetError("chunk_events must be >= 1")
    payloads: List[bytes] = []
    for name, events in traces.items():
        if not len(events):
            continue
        for chunk_index, start in enumerate(
            range(0, len(events), chunk_events)
        ):
            payloads.append(
                encode_trace_chunk(
                    name,
                    round_index,
                    chunk_index,
                    events[start : start + chunk_events],
                )
            )
    return payloads


def decode_round(
    round_index: int, payloads: Sequence
) -> Dict[str, Tuple[BranchEvent, ...]]:
    """Reassemble a round's per-tenant traces from chunk payloads.

    ``payloads`` may be ``bytes`` or any buffer-protocol objects
    (e.g. memoryviews over a shared-memory ring) — the chunk codec
    maps columns with ``np.frombuffer`` either way, so the shm path
    materialises events without an intermediate copy.
    """
    pending: Dict[str, List[BranchEvent]] = {}
    for payload in payloads:
        chunk = decode_trace_chunk(payload)
        if chunk.round_index != round_index:
            raise FleetError(
                f"chunk for round {chunk.round_index} in a round-"
                f"{round_index} dispatch"
            )
        pending.setdefault(chunk.tenant, []).extend(chunk.events)
    return {
        name: tuple(events) for name, events in pending.items()
    }
