"""Sharded multi-process fleet for the SoC manager (docs/FLEET.md).

A :class:`~repro.fleet.coordinator.FleetCoordinator` shards tenants
across N worker processes — one :class:`~repro.soc.manager.SocManager`
(own modeled engine, own write-ahead journal) each — and supervises
them: heartbeat deadlines, bounded-jitter backoff restarts with
journal-replay recovery, and checkpoint-handoff migration of healthy
tenants away from crash-looping shards.  The coordinator speaks the
manager's own surface (``run_events`` / ``health`` / ``tenant`` /
``tenants``), so the serve front door and the eval harness run over a
fleet unchanged.
"""

from repro.fleet.coordinator import (
    FLEET_COUNTERS,
    FleetConfig,
    FleetCoordinator,
)
from repro.fleet.demo import demo_factory

__all__ = [
    "FLEET_COUNTERS",
    "FleetConfig",
    "FleetCoordinator",
    "demo_factory",
    "messages",
]
