"""Sharded multi-process fleet for the SoC manager (docs/FLEET.md).

A :class:`~repro.fleet.coordinator.FleetCoordinator` shards tenants
across N worker processes — one :class:`~repro.soc.manager.SocManager`
(own modeled engine, own write-ahead journal) each — and supervises
them: heartbeat deadlines, bounded-jitter backoff restarts with
journal-replay recovery, and checkpoint-handoff migration of healthy
tenants away from crash-looping shards.  The coordinator speaks the
manager's own surface (``run_events`` / ``health`` / ``tenant`` /
``tenants``), so the serve front door and the eval harness run over a
fleet unchanged.

Bulk round payloads cross the process boundary through a pluggable
transport (:mod:`repro.fleet.transport`): zero-copy shared-memory
rings by default, pickle-over-pipe as the universal fallback.  When
``FleetConfig.rebalance_ratio`` is set, placement is load-aware — the
coordinator migrates tenants between shards at round boundaries to
level the modeled makespan.
"""

from repro.fleet.coordinator import (
    FLEET_COUNTERS,
    PLACEMENT_COUNTERS,
    TRANSPORT_COUNTERS,
    FleetConfig,
    FleetCoordinator,
)
from repro.fleet.demo import demo_factory
from repro.fleet.transport import (
    ShmRing,
    TRANSPORT_NAMES,
)

__all__ = [
    "FLEET_COUNTERS",
    "PLACEMENT_COUNTERS",
    "TRANSPORT_COUNTERS",
    "TRANSPORT_NAMES",
    "FleetConfig",
    "FleetCoordinator",
    "ShmRing",
    "demo_factory",
    "messages",
]
