"""Picklable demo deployment factory for fleet workers.

:func:`demo_factory` is the named-tenant sibling of
:func:`repro.eval.metrics.build_demo_deployments`: the fleet places
arbitrary *subsets* of the tenant population on each shard (and moves
tenants between shards on migration), so the factory must build
deployments for an explicit name list rather than ``tenant0..N-1``,
and must accept an existing engine so adopted tenants join the
shard's live :class:`~repro.miaow.gpu.Gpu`.

It is a module-level function (picklable as required by
:class:`~repro.fleet.coordinator.FleetCoordinator`); parameterise it
with :func:`functools.partial`, which pickles fine too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.miaow.gpu import Gpu
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.soc.manager import Deployment
from repro.soc.rtad import RtadConfig


def demo_factory(
    tenant_names: Sequence[str],
    gpu: Optional[Gpu] = None,
    kind: str = "lstm",
    seed: int = 0,
    num_cus: int = 5,
    fifo_depth: int = 64,
    dataplane: str = "batched",
    fault_plans: Optional[Dict[str, FaultPlan]] = None,
    frontends: Optional[Dict[str, str]] = None,
) -> List[Deployment]:
    """Demo deployments for explicit tenant names around one engine.

    The per-process model cache (``repro.eval.metrics._DEMO_PARTS``)
    makes repeat calls cheap: the first call in a worker trains the
    tiny demo model once (or inherits it already warm under the fork
    start method), later calls — recovery rebuilds, adoptions — reuse
    it.  Tenants built from the same ``(kind, seed)`` are bit-for-bit
    equivalent regardless of which process builds them, which is what
    makes migration handoff and journal replay deterministic.
    """
    from repro.eval.metrics import _demo_parts

    parts = _demo_parts(kind, seed)
    engine = gpu or Gpu(num_cus=num_cus, name="ML-MIAOW")
    deployments = []
    for name in tenant_names:
        if kind == "elm":
            deployed = DeployedElm(
                parts["model"], parts["dictionary"], parts["window"]
            )
            converter = ProtocolConverter("elm", parts["dictionary"])
        else:
            deployed = DeployedLstm(parts["model"])
            converter = ProtocolConverter("lstm")
        deployments.append(
            Deployment(
                name=name,
                driver=MlMiaowDriver(
                    deployed, engine, execute_on_gpu=False
                ),
                converter=converter,
                monitored_addresses=parts["monitored"],
                detector=parts["detector"],
                config=RtadConfig(
                    model_kind=kind,
                    window=parts["window"],
                    fifo_depth=fifo_depth,
                    score_smoothing=parts["smoothing"],
                    fault_plan=(fault_plans or {}).get(name),
                    dataplane=dataplane,
                    frontend=(frontends or {}).get(name, "coresight"),
                ),
            )
        )
    return deployments
