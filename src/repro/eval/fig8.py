"""Fig. 8: anomaly detection latency per benchmark and model, on the
original MIAOW vs the trimmed ML-MIAOW engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.prep import get_bundle, make_miaow, make_ml_miaow
from repro.eval.report import format_table
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.profiles import profile_names

#: Fig. 8 averages from the paper (microseconds).
PAPER_LATENCY_US = {
    ("elm", "MIAOW"): 13.83,
    ("elm", "ML-MIAOW"): 4.21,
    ("lstm", "MIAOW"): 53.16,
    ("lstm", "ML-MIAOW"): 23.98,
}
PAPER_MEAN_SPEEDUP = 2.75

GADGET_LENGTH = 10
#: Cycles between gadget branches: an attacker sprinting through
#: reused code emits monitored branches far faster than the program.
GADGET_INTERVAL_US = 2.0
TRIAL_STREAM_LENGTH = 400


@dataclass
class Fig8Cell:
    """One benchmark x model x engine measurement."""

    benchmark: str
    model: str
    engine: str
    mean_latency_us: Optional[float]
    detected_trials: int
    total_trials: int
    overflowed: bool
    dropped_vectors: int


@dataclass
class Fig8Row:
    benchmark: str
    model: str
    miaow: Fig8Cell
    ml_miaow: Fig8Cell

    @property
    def speedup(self) -> Optional[float]:
        if (
            self.miaow.mean_latency_us is None
            or self.ml_miaow.mean_latency_us is None
            or self.ml_miaow.mean_latency_us <= 0
        ):
            return None
        return self.miaow.mean_latency_us / self.ml_miaow.mean_latency_us


def _run_cell(
    benchmark: str,
    model: str,
    engine_name: str,
    trials: int,
    seed: int,
) -> Fig8Cell:
    bundle = get_bundle(benchmark, model, seed)
    # Engine-independent trial sampling: both engines face the same
    # attack scenarios, so the speedup column is a paired comparison.
    rng = make_rng(derive_seed(seed, "fig8", benchmark, model))
    latencies: List[float] = []
    overflowed = False
    dropped = 0
    detected = 0
    for trial in range(trials):
        gpu = make_miaow() if engine_name == "MIAOW" else make_ml_miaow()
        soc = bundle.make_soc(gpu, execute_on_gpu=False)
        stream_start = int(
            rng.integers(0, max(1, len(bundle.normal_ids) - TRIAL_STREAM_LENGTH))
        )
        stream = bundle.normal_ids[
            stream_start:stream_start + TRIAL_STREAM_LENGTH
        ]
        onset = int(rng.integers(len(stream) // 3, 2 * len(stream) // 3))
        gadget = rng.choice(bundle.gadget_pool, size=GADGET_LENGTH)
        result = soc.run_attack_trial(
            normal_ids=stream,
            mean_interval_us=bundle.mean_interval_us,
            gadget_ids=[int(g) for g in gadget],
            onset_index=onset,
            gadget_interval_us=GADGET_INTERVAL_US,
            seed=derive_seed(seed, "trial", benchmark, model, trial),
        )
        overflowed = overflowed or result.overflowed
        dropped += result.dropped_vectors
        if result.detected:
            detected += 1
        if result.detection_latency_us is not None:
            latencies.append(result.detection_latency_us)
    return Fig8Cell(
        benchmark=benchmark,
        model=model,
        engine=engine_name,
        mean_latency_us=float(np.mean(latencies)) if latencies else None,
        detected_trials=detected,
        total_trials=trials,
        overflowed=overflowed,
        dropped_vectors=dropped,
    )


def run_fig8(
    benchmarks: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("elm", "lstm"),
    trials: int = 5,
    seed: int = 0,
) -> List[Fig8Row]:
    benchmarks = list(benchmarks) if benchmarks else profile_names()
    rows: List[Fig8Row] = []
    for benchmark in benchmarks:
        for model in models:
            miaow = _run_cell(benchmark, model, "MIAOW", trials, seed)
            ml_miaow = _run_cell(benchmark, model, "ML-MIAOW", trials, seed)
            rows.append(
                Fig8Row(
                    benchmark=benchmark, model=model,
                    miaow=miaow, ml_miaow=ml_miaow,
                )
            )
    return rows


def fig8_summary(rows: Sequence[Fig8Row]) -> Dict[str, float]:
    """Per-model mean latencies plus the overall mean speedup."""
    summary: Dict[str, float] = {}
    speedups: List[float] = []
    for model in ("elm", "lstm"):
        model_rows = [r for r in rows if r.model == model]
        if not model_rows:
            continue
        for engine_key, attr in (("MIAOW", "miaow"), ("ML-MIAOW", "ml_miaow")):
            values = [
                getattr(r, attr).mean_latency_us
                for r in model_rows
                if getattr(r, attr).mean_latency_us is not None
            ]
            if values:
                summary[f"{model}/{engine_key}"] = float(np.mean(values))
        model_speedups = [r.speedup for r in model_rows if r.speedup]
        if model_speedups:
            summary[f"{model}/speedup"] = float(np.mean(model_speedups))
            speedups.extend(model_speedups)
    if speedups:
        summary["mean_speedup"] = float(np.mean(speedups))
    return summary


def format_fig8(rows: Sequence[Fig8Row]) -> str:
    def fmt_latency(cell: Fig8Cell) -> str:
        if cell.mean_latency_us is None:
            return "n/d"
        flag = "*" if cell.overflowed else ""
        return f"{cell.mean_latency_us:.1f}{flag}"

    body = []
    for row in rows:
        body.append(
            (
                row.benchmark, row.model,
                fmt_latency(row.miaow), fmt_latency(row.ml_miaow),
                "-" if row.speedup is None else f"{row.speedup:.2f}x",
                f"{row.miaow.detected_trials}/{row.miaow.total_trials}",
                f"{row.ml_miaow.detected_trials}/{row.ml_miaow.total_trials}",
            )
        )
    summary = fig8_summary(rows)
    lines = [
        format_table(
            ["benchmark", "model", "MIAOW us", "ML-MIAOW us", "speedup",
             "det(M)", "det(ML)"],
            body,
            title=(
                "Fig. 8 — anomaly detection latency "
                "(* = MCM FIFO overflow observed)"
            ),
        )
    ]
    for model in ("elm", "lstm"):
        if f"{model}/MIAOW" in summary:
            lines.append(
                f"{model.upper()}: {summary[f'{model}/MIAOW']:.1f} -> "
                f"{summary.get(f'{model}/ML-MIAOW', float('nan')):.1f} us "
                f"(paper: {PAPER_LATENCY_US[(model, 'MIAOW')]} -> "
                f"{PAPER_LATENCY_US[(model, 'ML-MIAOW')]} us)"
            )
    if "mean_speedup" in summary:
        lines.append(
            f"mean speedup {summary['mean_speedup']:.2f}x "
            f"(paper: {PAPER_MEAN_SPEEDUP}x)"
        )
    return "\n".join(lines)
