"""Table II: trimming results of ML-MIAOW vs MIAOW2.0 vs MIAOW."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eval.coverage_runs import deployed_model_runs, single_model_runs
from repro.eval.report import format_table
from repro.miaow.trimming import TrimmingFlow, TrimResult

#: Table II of the paper (LUTs, FFs).
PAPER_TABLE2 = {
    "MIAOW": (180_902, 107_001),
    "MIAOW2.0": (97_222, 70_499),
    "ML-MIAOW": (36_743, 15_275),
}
PAPER_REDUCTIONS = {"MIAOW2.0": 42.0, "ML-MIAOW": 82.0}
PAPER_PERF_PER_AREA_VS_20 = 3.2


@dataclass
class Table2Row:
    variant: str
    luts: float
    ffs: float
    lut_ff_sum: float
    area_reduction_pct: Optional[float]
    paper_luts: int
    paper_ffs: int
    paper_reduction_pct: Optional[float]


def run_table2(seed: int = 0) -> TrimResult:
    """Execute the full trimming flow (simulate/merge/trim/verify)."""
    flow = TrimmingFlow()
    return flow.run(
        deployed_model_runs(seed),
        single_model_runs=single_model_runs(seed),
    )


def table2_rows(result: TrimResult) -> List[Table2Row]:
    full = result.full_area
    m20 = result.instruction_trimmed_area
    ours = result.trimmed_area
    rows = [
        Table2Row(
            "MIAOW", full.luts, full.ffs, full.lut_ff_sum, None,
            *PAPER_TABLE2["MIAOW"], None,
        ),
        Table2Row(
            "MIAOW2.0", m20.luts, m20.ffs, m20.lut_ff_sum,
            result.instruction_reduction_pct,
            *PAPER_TABLE2["MIAOW2.0"], PAPER_REDUCTIONS["MIAOW2.0"],
        ),
        Table2Row(
            "ML-MIAOW", ours.luts, ours.ffs, ours.lut_ff_sum,
            result.reduction_pct,
            *PAPER_TABLE2["ML-MIAOW"], PAPER_REDUCTIONS["ML-MIAOW"],
        ),
    ]
    return rows


def format_table2(result: TrimResult) -> str:
    rows = table2_rows(result)
    body = [
        (
            row.variant, row.luts, row.ffs, row.lut_ff_sum,
            "-" if row.area_reduction_pct is None
            else f"-{row.area_reduction_pct:.0f}%",
            row.paper_luts, row.paper_ffs,
            "-" if row.paper_reduction_pct is None
            else f"-{row.paper_reduction_pct:.0f}%",
        )
        for row in rows
    ]
    table = format_table(
        ["variant", "LUTs", "FFs", "sum", "area",
         "paper LUTs", "paper FFs", "paper area"],
        body,
        title="Table II — trimming results (measured vs paper)",
    )
    extras = (
        f"\nperf/area vs MIAOW:    {result.perf_per_area_vs_full:.1f}x "
        f"(paper: ~5x)"
        f"\nperf/area vs MIAOW2.0: {result.perf_per_area_vs_instruction:.1f}x "
        f"(paper: {PAPER_PERF_PER_AREA_VS_20:.1f}x)"
        f"\ncoverage: {len(result.report.covered)} points hit across runs "
        f"{result.report.runs}; verified={result.verified}"
    )
    return table + extras
