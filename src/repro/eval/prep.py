"""Shared experiment preparation: programs, trained models, deployments.

Training a model per benchmark is the expensive part of the Fig. 8
reproduction, so bundles are memoized per (benchmark, kind, seed);
every bundle carries enough to instantiate fresh SoCs against any
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.ml.lstm import LstmModel
from repro.soc.rtad import RtadConfig, RtadSoc
from repro.workloads.dataset import build_dataset
from repro.workloads.profiles import get_profile
from repro.workloads.program import SyntheticProgram
from repro.workloads.syscalls import SyscallSequenceModel

#: Deployment shapes (chosen to exercise multi-CU parallelism the way
#: the paper's models do: 4 parallel ELM workgroups, 4 parallel LSTM
#: gate workgroups plus a serial score/update tail).
ELM_HIDDEN = 256
ELM_WINDOW = 16
PATTERN_N = 3
#: Large enough to hold every trigram the syscall phases legitimately
#: produce (~900); anything outside lands in the unseen bin, which then
#: genuinely indicates out-of-context behaviour.  Dictionary size only
#: affects the ELM weight matrix (a sparse column gather on the GPU),
#: not the kernel's cycle count.
PATTERN_CAPACITY = 1023
#: Weight of the out-of-dictionary pattern bin (see PatternDictionary).
ELM_UNSEEN_GAIN = 3
LSTM_HIDDEN = 32
LSTM_TRAIN_WINDOW = 16
LSTM_MAPPER_SIZE = 48

#: Detector quantiles (per-window for ELM, per-smoothed-run for LSTM).
ELM_QUANTILE = 0.995
LSTM_QUANTILE = 0.995
#: Interrupt-manager accumulator: the LSTM judges the rolling mean of
#: this many per-branch surprisals (sequence scoring, as in [8]).
LSTM_SMOOTHING = 4


def _rare_half(
    ids: np.ndarray, legitimate: Optional[np.ndarray] = None
) -> np.ndarray:
    """Legitimate IDs that are rare in the observed stream.

    Code-reuse attacks chain through *rarely exercised* but legitimate
    code (a hot-path gadget would break the program).  ``legitimate``
    is the repertoire observed during normal execution (the training
    corpus — "branch addresses that can be observed during normal
    execution"); the pool is its less-frequent half with respect to
    the trial stream, so loop-dominated benchmarks whose trial stream
    collapses onto a couple of hot IDs still yield a usable pool.
    """
    ids = np.asarray(ids)
    if legitimate is None:
        legitimate = np.unique(ids)
    legitimate = np.unique(np.asarray(legitimate))
    if len(legitimate) < 4:
        return legitimate
    counts = {
        int(value): int(count)
        for value, count in zip(*np.unique(ids, return_counts=True))
    }
    order = sorted(legitimate, key=lambda v: counts.get(int(v), 0))
    return np.array(order[: max(2, len(legitimate) // 2)], dtype=np.int64)


@dataclass
class ModelBundle:
    """A trained model plus everything needed to deploy it."""

    kind: str
    program: SyntheticProgram
    monitored_addresses: List[int]
    detector: ThresholdDetector
    normal_ids: np.ndarray          # monitored-ID stream for trials
    gadget_pool: np.ndarray         # legitimate IDs attacks reuse
    mean_interval_us: float
    window: int
    score_smoothing: int = 1
    # model objects (deployments are built fresh per engine)
    elm: Optional[ExtremeLearningMachine] = None
    dictionary: Optional[PatternDictionary] = None
    lstm: Optional[LstmModel] = None

    def make_deployment(self):
        if self.kind == "elm":
            return DeployedElm(self.elm, self.dictionary, self.window)
        return DeployedLstm(self.lstm)

    def make_converter(self) -> ProtocolConverter:
        if self.kind == "elm":
            return ProtocolConverter("elm", self.dictionary)
        return ProtocolConverter("lstm")

    def make_soc(
        self,
        gpu: Gpu,
        execute_on_gpu: bool = False,
        fifo_depth: int = 16,
    ) -> RtadSoc:
        driver = MlMiaowDriver(
            self.make_deployment(), gpu, execute_on_gpu=execute_on_gpu
        )
        config = RtadConfig(
            model_kind=self.kind,
            window=self.window if self.kind == "elm" else 1,
            fifo_depth=fifo_depth,
            score_smoothing=self.score_smoothing,
        )
        return RtadSoc(
            program=self.program,
            driver=driver,
            converter=self.make_converter(),
            monitored_addresses=self.monitored_addresses,
            detector=self.detector,
            config=config,
        )


_BUNDLE_CACHE: Dict[Tuple[str, str, int], ModelBundle] = {}
_PROGRAM_CACHE: Dict[Tuple[str, int], SyntheticProgram] = {}


def get_program(benchmark: str, seed: int = 0) -> SyntheticProgram:
    profile = get_profile(benchmark)
    key = (profile.name, seed)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = SyntheticProgram(profile, seed=seed)
    return _PROGRAM_CACHE[key]


def get_bundle(benchmark: str, kind: str, seed: int = 0) -> ModelBundle:
    profile = get_profile(benchmark)
    key = (profile.name, kind, seed)
    if key not in _BUNDLE_CACHE:
        if kind == "elm":
            _BUNDLE_CACHE[key] = _prepare_elm(benchmark, seed)
        elif kind == "lstm":
            _BUNDLE_CACHE[key] = _prepare_lstm(benchmark, seed)
        else:
            raise ValueError(f"unknown model kind {kind!r}")
    return _BUNDLE_CACHE[key]


def make_miaow() -> Gpu:
    """The original MIAOW engine: one CU fits the fabric."""
    return Gpu(num_cus=1, name="MIAOW")


def make_ml_miaow(num_cus: int = 5) -> Gpu:
    """The trimmed engine: five CUs fit where one did."""
    return Gpu(num_cus=num_cus, name="ML-MIAOW")


# ---------------------------------------------------------------------------
# ELM bundle (syscall features)
# ---------------------------------------------------------------------------

def _prepare_elm(benchmark: str, seed: int) -> ModelBundle:
    program = get_program(benchmark, seed)
    dataset = build_dataset(
        program,
        feature="syscall",
        window=ELM_WINDOW,
        train_events=16_000,
        test_events=6_000,
        num_attacks=10,
        seed=seed,
    )
    dictionary = PatternDictionary(
        n=PATTERN_N, capacity=PATTERN_CAPACITY, unseen_gain=ELM_UNSEEN_GAIN
    )
    dictionary.fit(dataset.train_windows)
    features = dictionary.features(dataset.train_windows)
    model = ExtremeLearningMachine(
        input_dim=dictionary.size, hidden_dim=ELM_HIDDEN, seed=seed
    ).fit(features)
    syscall_model = SyscallSequenceModel(program.profile, seed=seed)
    # Calibrate the threshold on a held-out stream scored exactly the
    # deployed way (f32, sliding windows over a continuous sequence) —
    # the distribution the interrupt manager will actually see.
    calibration_ids = syscall_model.generate(3_000, run_label="calibrate")
    calibration_windows = np.lib.stride_tricks.sliding_window_view(
        calibration_ids + 1, ELM_WINDOW
    )
    calibration_scores = model.score_mahalanobis_f32(
        dictionary.features(calibration_windows)
    )
    detector = ThresholdDetector(ELM_QUANTILE).fit(calibration_scores)
    normal_ids = syscall_model.generate(4_000, run_label="trial") + 1
    return ModelBundle(
        kind="elm",
        program=program,
        monitored_addresses=program.syscall_targets(),
        detector=detector,
        normal_ids=normal_ids,
        gadget_pool=_rare_half(
            normal_ids, legitimate=np.unique(dataset.train_windows)
        ),
        mean_interval_us=program.profile.syscall_interval_us,
        window=ELM_WINDOW,
        elm=model,
        dictionary=dictionary,
    )


# ---------------------------------------------------------------------------
# LSTM bundle (general-branch features)
# ---------------------------------------------------------------------------

def _dynamic_call_targets(program: SyntheticProgram, count: int) -> List[int]:
    """The mapper table a user would actually configure: the function
    entries the program *dynamically* exercises the most.

    Static uniform sampling can land entirely on functions a
    loop-dominated walk never visits, collapsing the monitored stream
    to one hot ID; picking by observed usage keeps the vocabulary live
    while staying "critical API functions" in spirit.
    """
    from collections import Counter

    pilot = program.run(60_000, run_label="mapper-pilot")
    entries = set(program.cfg.call_targets)
    usage = Counter(
        event.target for event in pilot.events if event.target in entries
    )
    chosen = [address for address, _ in usage.most_common(count)]
    if len(chosen) < count:
        # pad with unvisited entries so the table size is stable
        for address in program.cfg.call_targets:
            if address not in usage:
                chosen.append(address)
            if len(chosen) == count:
                break
    return sorted(chosen)


def _prepare_lstm(benchmark: str, seed: int) -> ModelBundle:
    program = get_program(benchmark, seed)
    monitored = _dynamic_call_targets(program, LSTM_MAPPER_SIZE)
    dataset = build_dataset(
        program,
        feature="call",
        window=LSTM_TRAIN_WINDOW,
        train_events=180_000,
        test_events=60_000,
        num_attacks=10,
        seed=seed,
        monitored_addresses=monitored,
    )
    model = LstmModel(
        vocabulary_size=dataset.vocabulary.size,
        hidden_size=LSTM_HIDDEN,
        seed=seed,
    )
    train = dataset.train_windows
    if len(train) > 8_000:
        train = train[:8_000]
    model.fit(train, epochs=6, seed=seed)

    # Per-branch surprisal calibration over a held-out normal stream,
    # using the f32 deployment reference (what the GPU computes).
    normal_stream = dataset.test_normal[::LSTM_TRAIN_WINDOW].ravel()
    if len(normal_stream) > 3_000:
        normal_stream = normal_stream[:3_000]
    deployment = DeployedLstm(model)
    reference = deployment.make_reference()
    surprisals = np.array(
        [reference.infer(int(b)) for b in normal_stream]
    )
    # Calibrate on the same rolling mean the interrupt manager judges.
    kernel = np.ones(LSTM_SMOOTHING) / LSTM_SMOOTHING
    smoothed = np.convolve(surprisals, kernel, mode="valid")
    detector = ThresholdDetector(LSTM_QUANTILE).fit(smoothed)

    trial_stream = dataset.test_normal[1::LSTM_TRAIN_WINDOW].ravel()
    return ModelBundle(
        kind="lstm",
        program=program,
        monitored_addresses=monitored,
        detector=detector,
        normal_ids=trial_stream[:4_000],
        gadget_pool=_rare_half(
            trial_stream, legitimate=np.unique(dataset.train_windows)
        ),
        mean_interval_us=program.profile.monitored_call_interval_us,
        window=LSTM_TRAIN_WINDOW,
        score_smoothing=LSTM_SMOOTHING,
        lstm=model,
    )
