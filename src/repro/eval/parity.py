"""``python -m repro.eval parity`` — cross-frontend detection parity.

The frontend refactor's end-to-end gate: the same CFG-walker branch
stream, run once per trace grammar (CoreSight PTM/TPIU vs RISC-V
E-Trace/ETP), must reach *identical* detection — same inference
sequence numbers, same scores, same anomalous flags — and the IGM
must see the *identical* vector stream.  The two frontends differ
only in how branch events are serialized to bytes; the address
mapper and vector encoder downstream are shared, so any divergence
is a frontend bug, not noise.

Two comparisons per model kind:

1. **Verdict parity** — full ``RtadSoc.run_events`` per frontend on a
   shared demo stream; records compared by (sequence number, score,
   anomalous flag).
2. **Vector parity** — a bare trace pipeline (mapper + encoder + a
   capturing sink) per frontend on the same stream; the IGM vector
   sequence is digested (sequence number, trigger address/cycle,
   vector values) and compared byte-for-byte.

``python -m repro.eval parity`` exits non-zero on any mismatch.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.eval.report import format_table
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder

#: The grammars compared by default — every registered frontend.
DEFAULT_FRONTENDS = ("coresight", "etrace")


@dataclass
class FrontendRun:
    """One frontend's observable outputs on the shared stream."""

    frontend: str
    inferences: int
    anomalous: int
    verdict_digest: str
    vectors: int
    vector_digest: str
    #: MCM queue-pressure drops during the run.  Verdict parity is
    #: only defined for a drop-free workload: which vectors a busy
    #: MCM sheds depends on delivery *timestamps*, and those
    #: legitimately differ between grammars.
    dropped_vectors: int = 0


@dataclass
class ParityKindResult:
    """Parity comparison for one model kind."""

    kind: str
    events: int
    runs: List[FrontendRun] = field(default_factory=list)
    verdicts_match: bool = True
    vectors_match: bool = True

    @property
    def parity(self) -> bool:
        return self.verdicts_match and self.vectors_match


@dataclass
class ParityResult:
    seed: int
    events: int
    frontends: Sequence[str]
    kinds: List[ParityKindResult] = field(default_factory=list)

    @property
    def parity(self) -> bool:
        return all(kind.parity for kind in self.kinds)


def _digest(lines: Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for line in lines:
        hasher.update(line.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _vector_line(vector: InputVector) -> str:
    values = ",".join(f"{value:.9g}" for value in vector.values.tolist())
    return (
        f"{vector.sequence_number}:{vector.trigger_address:#x}:"
        f"{vector.trigger_cycle}:[{values}]"
    )


def _capture_vectors(
    frontend_name: str, soc, events
) -> List[InputVector]:
    """The IGM vector stream a bare pipeline produces for a frontend.

    Reuses the SoC's (stateless after load) address mapper with a
    fresh encoder, so the capture matches the detection run's mapper
    configuration exactly.
    """
    from repro.frontends import make_frontend
    from repro.pipeline import build_trace_pipeline

    encoder = VectorEncoder(
        mode=EncoderMode.SEQUENCE,
        window=soc.config.window,
        vocabulary_size=soc.mapper.size + 1,
    )
    captured: List[InputVector] = []
    pipeline = build_trace_pipeline(
        soc.mapper,
        encoder,
        lambda vector, _deliver_ns: captured.append(vector),
        frontend=make_frontend(frontend_name),
    )
    pipeline.run(events)
    return captured


def run_parity(
    kinds: Optional[Sequence[str]] = None,
    events: int = 4_000,
    seed: int = 0,
    frontends: Sequence[str] = DEFAULT_FRONTENDS,
) -> ParityResult:
    """Run the cross-frontend parity comparison.

    The default workload is sized to stay within MCM service
    capacity: under overload the MCM sheds vectors by arrival time,
    and arrival times legitimately differ between grammars, so
    verdict parity is undefined (the failure report says so
    explicitly rather than reporting a spurious divergence).
    """
    from repro.eval.metrics import DEMO_KINDS, build_demo_soc, demo_events

    result = ParityResult(
        seed=seed, events=events, frontends=tuple(frontends)
    )
    for kind in kinds or DEMO_KINDS:
        stream = demo_events(
            kind, seed, events, run_label=f"parity-{kind}"
        )
        kind_result = ParityKindResult(kind=kind, events=len(stream))
        verdict_digests = []
        vector_digests = []
        for name in frontends:
            soc = build_demo_soc(kind, seed=seed, frontend=name)
            records = soc.run_events(stream)
            verdict_lines = [
                f"{r.sequence_number}:{r.score:.9g}:{int(bool(r.anomalous))}"
                for r in records
            ]
            vectors = _capture_vectors(name, soc, stream)
            run = FrontendRun(
                frontend=name,
                inferences=len(records),
                anomalous=sum(1 for r in records if r.anomalous),
                verdict_digest=_digest(verdict_lines),
                vectors=len(vectors),
                vector_digest=_digest(
                    [_vector_line(v) for v in vectors]
                ),
                dropped_vectors=soc.mcm.dropped_vectors,
            )
            kind_result.runs.append(run)
            verdict_digests.append(run.verdict_digest)
            vector_digests.append(run.vector_digest)
        kind_result.verdicts_match = len(set(verdict_digests)) == 1
        kind_result.vectors_match = len(set(vector_digests)) == 1
        result.kinds.append(kind_result)
    return result


def parity_failures(result: ParityResult) -> List[str]:
    """Violated parity invariants, as human-readable strings."""
    failures: List[str] = []
    for kind in result.kinds:
        overloaded = [
            run for run in kind.runs if run.dropped_vectors > 0
        ]
        if overloaded:
            drops = ", ".join(
                f"{run.frontend}={run.dropped_vectors}"
                for run in overloaded
            )
            failures.append(
                f"{kind.kind}: workload overdrives the MCM "
                f"(dropped vectors: {drops}) — verdict parity is "
                "undefined under queue pressure, reduce --events"
            )
        elif not kind.verdicts_match:
            failures.append(
                f"{kind.kind}: detection verdicts diverge across "
                f"frontends {list(result.frontends)}"
            )
        if not kind.vectors_match:
            failures.append(
                f"{kind.kind}: IGM vector streams diverge across "
                f"frontends {list(result.frontends)}"
            )
        for run in kind.runs:
            if run.inferences == 0:
                failures.append(
                    f"{kind.kind}: frontend {run.frontend} produced "
                    "no inferences (parity would be vacuous)"
                )
    return failures


def format_parity(result: ParityResult) -> str:
    rows = []
    for kind in result.kinds:
        for run in kind.runs:
            rows.append(
                (
                    kind.kind,
                    run.frontend,
                    run.inferences,
                    run.anomalous,
                    run.dropped_vectors,
                    run.vectors,
                    run.verdict_digest[:12],
                    run.vector_digest[:12],
                )
            )
        rows.append(
            (
                kind.kind,
                "== parity",
                "",
                "",
                "",
                "",
                "yes" if kind.verdicts_match else "NO",
                "yes" if kind.vectors_match else "NO",
            )
        )
    return format_table(
        ["kind", "frontend", "inferences", "anomalous", "dropped",
         "vectors", "verdicts", "igm vectors"],
        rows,
        title=(
            f"parity: frontend detection equivalence "
            f"({result.events} events, seed {result.seed}, "
            f"parity: {'yes' if result.parity else 'NO'})"
        ),
    )


def parity_to_json(result: ParityResult) -> Dict[str, object]:
    """JSON document mirroring :func:`format_parity`."""
    return {
        "seed": result.seed,
        "events": result.events,
        "frontends": list(result.frontends),
        "kinds": [
            {
                **asdict(kind),
                "parity": kind.parity,
            }
            for kind in result.kinds
        ],
        "parity": result.parity,
        "failures": parity_failures(result),
    }
