"""``python -m repro.eval metrics`` — instrumented short-trace runs.

Runs a fixed-seed :class:`SyntheticProgram` through the *full*
``RtadSoc.run_events`` path with a live :class:`MetricsRegistry` and
reports the per-stage breakdown: counters for every pipeline stage
(PTM bytes/packets, TPIU frames, mapper hits/misses, vectors, MCM
inferences, kernel launches) and p50/p95/p99 latency histograms
mirroring Fig. 7's read/vectorize/copy decomposition.

The demo deployments are deliberately small (they train in seconds);
the same builders back ``tests/test_golden_trace.py``, so the metrics
command exercises exactly the configuration the golden regression
pins down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.prep import get_program
from repro.eval.report import format_snapshot, format_table
from repro.mcm.driver import MlMiaowDriver
from repro.mcm.engines import ProtocolConverter
from repro.miaow.gpu import Gpu
from repro.ml.detector import ThresholdDetector
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.ml.lstm import LstmModel
from repro.faults.plan import FaultPlan
from repro.obs import MetricsRegistry
from repro.soc.manager import Deployment, HealthPolicy, SocManager
from repro.soc.rtad import RtadConfig, RtadSoc
from repro.workloads.dataset import (
    Vocabulary,
    build_dataset,
    sliding_windows,
)

#: Fixed demo configuration — also pinned by the golden-trace test.
DEMO_BENCHMARK = "403.gcc"
DEMO_ELM_WINDOW = 16
DEMO_MAPPER_SIZE = 30
DEMO_KINDS = ("elm", "lstm")

#: Histograms worth surfacing in the condensed per-stage table.
_LATENCY_METRICS = (
    ("pipeline.read_ns", "(1) read (PTM FIFO batching)"),
    ("pipeline.vectorize_ns", "(2) vectorize (IGM)"),
    ("mcm.copy_ns", "(3) copy (TX burst)"),
    ("mcm.queue_ns", "MCM queue wait"),
    ("mcm.gpu_ns", "GPU kernel time"),
    ("mcm.service_ns", "MCM service total"),
    ("pipeline.e2e_ns", "end-to-end (branch -> judgment)"),
)

#: Robustness counters always reported (0 when nothing fired), so the
#: metrics output shape is stable whether or not faults are injected.
ROBUSTNESS_COUNTERS = (
    "faults.bytes.flipped",
    "faults.bytes.dropped",
    "faults.bytes.duplicated",
    "faults.bytes.desyncs",
    "faults.events.dropped",
    "faults.events.duplicated",
    "faults.events.corrupted",
    "faults.vectors.dropped",
    "faults.chunks.corrupted",
    "coresight.decoder.resyncs",
    "coresight.decoder.truncated",
    "coresight.decoder.hunt_bytes",
    "tpiu.frame_resyncs",
    "tpiu.bytes_discarded",
    "etrace.decoder.resyncs",
    "etrace.decoder.truncated",
    "etrace.decoder.hunt_bytes",
    "etrace.deframer.resyncs",
    "etrace.deframer.bytes_discarded",
    "pipeline.integrity.checks",
    "pipeline.integrity.crc_mismatches",
    "pipeline.integrity.gaps",
    "mcm.dropped_vectors",
    "mcm.cancelled",
    "mcm.dual_run.runs",
    "mcm.dual_run.divergences",
    "mcm.arbiter.watchdog.cancelled",
    "mcm.arbiter.hangs",
    "socmgr.crashes",
    "socmgr.health.quarantines",
    "socmgr.health.readmissions",
    "socmgr.health.degradations",
    "socmgr.recoveries",
    "socmgr.rounds_replayed",
    "durability.journal.appends",
    "durability.journal.bytes",
    "durability.journal.rolls",
    "durability.journal.torn_drops",
)

#: Fast-path counters always reported (0 when the engine never took
#: the compiled path — e.g. the calibrated demo mode, which dispatches
#: only the warm-up calibration inference), so the output shape is
#: stable across execution modes.
PERF_COUNTERS = (
    "miaow.compile.hits",
    "miaow.compile.misses",
    "miaow.compile.evictions",
    "miaow.fastpath.dispatches",
    "miaow.fastpath.interpreted",
    "miaow.fastpath.fallback.disabled",
    "miaow.fastpath.fallback.coverage",
    "miaow.fastpath.fallback.occupancy",
    "miaow.fastpath.fallback.unsupported",
    "miaow.batch.dispatches",
    "miaow.batch.requests",
    "miaow.batch.fallback.engine",
    "miaow.batch.fallback.unsupported",
    "miaow.batch.fallback.replayed",
)

_DEMO_PARTS: Dict[Tuple[str, int], dict] = {}


def _demo_parts(kind: str, seed: int) -> dict:
    """Train (once per process) the small demo model for ``kind``."""
    key = (kind, seed)
    if key in _DEMO_PARTS:
        return _DEMO_PARTS[key]
    program = get_program(DEMO_BENCHMARK, seed=seed)
    if kind == "elm":
        # Syscalls are far too sparse for a short full-path trace, so
        # the demo ELM scores n-gram patterns over monitored *call*
        # targets — same kernel, same dictionary machinery, but the
        # mapper hits often enough that a few-thousand-event trace
        # completes many windows.  Separate CFG walks land in
        # different phase behaviour, so training pools windows from
        # many walks and the detector is calibrated on *held-out*
        # walks (cross-walk variance, not same-walk residuals).
        monitored = program.monitored_call_targets(count=DEMO_MAPPER_SIZE)
        vocabulary = Vocabulary.from_addresses(monitored)

        def walk_windows(label: str) -> np.ndarray:
            trace = program.run(30_000, run_label=label)
            ids = vocabulary.encode_events(trace.events)
            return sliding_windows(ids, DEMO_ELM_WINDOW)

        train_windows = np.concatenate(
            [
                windows
                for index in range(20)
                if len(windows := walk_windows(f"elm-train-{index}"))
            ]
        )
        dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
        dictionary.fit(train_windows)
        model = ExtremeLearningMachine(
            input_dim=dictionary.size, hidden_dim=64, seed=seed + 7
        ).fit(dictionary.features(train_windows))
        calibration = np.concatenate(
            [
                windows
                for index in range(6)
                if len(windows := walk_windows(f"elm-cal-{index}"))
            ]
        )
        detector = ThresholdDetector(0.995).fit(
            model.score_mahalanobis_f32(dictionary.features(calibration))
        )
        parts = {
            "kind": kind,
            "program": program,
            "monitored": monitored,
            "model": model,
            "dictionary": dictionary,
            "detector": detector,
            "window": DEMO_ELM_WINDOW,
            "smoothing": 1,
        }
    elif kind == "lstm":
        dataset = build_dataset(
            program,
            feature="call",
            window=8,
            train_events=60_000,
            test_events=25_000,
            num_attacks=4,
            seed=seed,
            mapper_size=DEMO_MAPPER_SIZE,
        )
        model = LstmModel(
            vocabulary_size=dataset.vocabulary.size,
            hidden_size=16,
            seed=seed + 7,
        )
        model.fit(dataset.train_windows[:2500], epochs=4, seed=seed + 7)
        reference = DeployedLstm(model).make_reference()
        stream = dataset.test_normal[::8].ravel()[:600]
        detector = ThresholdDetector(0.99).fit(
            [reference.infer(int(b)) for b in stream]
        )
        parts = {
            "kind": kind,
            "program": program,
            "monitored": program.monitored_call_targets(
                count=DEMO_MAPPER_SIZE
            ),
            "model": model,
            "detector": detector,
            "window": 1,
            "smoothing": 1,
        }
    else:
        raise ValueError(f"unknown demo model kind {kind!r}")
    _DEMO_PARTS[key] = parts
    return parts


def build_demo_soc(
    kind: str = "lstm",
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    execute_on_gpu: bool = False,
    num_cus: int = 5,
    fifo_depth: int = 64,
    fault_plan: Optional[FaultPlan] = None,
    frontend: Optional[str] = None,
) -> RtadSoc:
    """A small, deterministic, fully assembled SoC for short traces.

    ``frontend`` selects the trace grammar (``"coresight"`` or
    ``"etrace"``).  When None it falls back to the ``REPRO_FRONTEND``
    environment variable, defaulting to CoreSight — so CI can re-run
    the whole demo surface under the other grammar without touching
    call sites.
    """
    if frontend is None:
        frontend = os.environ.get("REPRO_FRONTEND", "coresight")
    parts = _demo_parts(kind, seed)
    if kind == "elm":
        deployment = DeployedElm(
            parts["model"], parts["dictionary"], parts["window"]
        )
        converter = ProtocolConverter("elm", parts["dictionary"])
    else:
        deployment = DeployedLstm(parts["model"])
        converter = ProtocolConverter("lstm")
    driver = MlMiaowDriver(
        deployment,
        Gpu(num_cus=num_cus, name="ML-MIAOW"),
        execute_on_gpu=execute_on_gpu,
    )
    config = RtadConfig(
        model_kind=kind,
        window=parts["window"],
        fifo_depth=fifo_depth,
        score_smoothing=parts["smoothing"],
        fault_plan=fault_plan,
        frontend=frontend,
    )
    return RtadSoc(
        program=parts["program"],
        driver=driver,
        converter=converter,
        monitored_addresses=parts["monitored"],
        detector=parts["detector"],
        config=config,
        metrics=metrics,
    )


def demo_events(
    kind: str, seed: int, count: int, run_label: Optional[str] = None
):
    """The fixed branch-event stream the metrics run replays.

    ``run_label`` selects a different (deterministic) CFG walk of the
    *same* demo program — distinct traces that still hit the demo
    monitored addresses, which is what multi-tenant tests need.
    """
    program = _demo_parts(kind, seed)["program"]
    return program.run(
        count, run_label=run_label or f"metrics-{kind}"
    ).events


def build_demo_deployments(
    num_tenants: int = 4,
    kind: str = "lstm",
    seed: int = 0,
    num_cus: int = 5,
    fifo_depth: int = 64,
    fault_plans: Optional[Dict[str, FaultPlan]] = None,
    dataplane: str = "batched",
    dual_run: bool = False,
    execute_on_gpu: bool = False,
    frontends: Optional[Dict[str, str]] = None,
) -> List[Deployment]:
    """Fresh demo deployments sharing one engine (see build_demo_manager).

    Called a second time with the same arguments this returns an
    equivalent tenant set around a *new* Gpu — exactly what
    :meth:`SocManager.recover` needs to re-supply models and drivers
    after a simulated process crash.  ``execute_on_gpu=True`` builds
    exact-mode drivers (every inference really dispatches), the mode
    cross-tenant batched dispatch requires.
    """
    parts = _demo_parts(kind, seed)
    gpu = Gpu(num_cus=num_cus, name="ML-MIAOW")
    deployments = []
    for index in range(num_tenants):
        if kind == "elm":
            deployed = DeployedElm(
                parts["model"], parts["dictionary"], parts["window"]
            )
            converter = ProtocolConverter("elm", parts["dictionary"])
        else:
            deployed = DeployedLstm(parts["model"])
            converter = ProtocolConverter("lstm")
        driver = MlMiaowDriver(deployed, gpu, execute_on_gpu=execute_on_gpu)
        name = f"tenant{index}"
        deployments.append(
            Deployment(
                name=name,
                driver=driver,
                converter=converter,
                monitored_addresses=parts["monitored"],
                detector=parts["detector"],
                config=RtadConfig(
                    model_kind=kind,
                    window=parts["window"],
                    fifo_depth=fifo_depth,
                    score_smoothing=parts["smoothing"],
                    fault_plan=(fault_plans or {}).get(name),
                    dataplane=dataplane,
                    dual_run=dual_run,
                    frontend=(frontends or {}).get(name, "coresight"),
                ),
            )
        )
    return deployments


def build_demo_manager(
    num_tenants: int = 4,
    kind: str = "lstm",
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    num_cus: int = 5,
    fifo_depth: int = 64,
    fault_plans: Optional[Dict[str, FaultPlan]] = None,
    deadline_us: Optional[float] = None,
    health_policy: Optional[HealthPolicy] = None,
    dataplane: str = "batched",
    dual_run: bool = False,
    batch_limit: int = 1,
    execute_on_gpu: bool = False,
    frontends: Optional[Dict[str, str]] = None,
    journal=None,
    checkpoint_interval_events: Optional[int] = None,
    journal_chunk_events: int = 8192,
    crash_points=None,
) -> SocManager:
    """A multi-tenant manager: N demo deployments, one shared engine.

    Every tenant monitors the same demo program configuration (its own
    mapper/encoder/detector instances), and every driver wraps the
    *same* calibrated-mode Gpu — the arbitration configuration the
    SocManager tests exercise.
    """
    deployments = build_demo_deployments(
        num_tenants=num_tenants,
        kind=kind,
        seed=seed,
        num_cus=num_cus,
        fifo_depth=fifo_depth,
        fault_plans=fault_plans,
        dataplane=dataplane,
        dual_run=dual_run,
        execute_on_gpu=execute_on_gpu,
        frontends=frontends,
    )
    return SocManager(
        deployments,
        metrics=metrics,
        deadline_us=deadline_us,
        health_policy=health_policy,
        batch_limit=batch_limit,
        journal=journal,
        checkpoint_interval_events=checkpoint_interval_events,
        journal_chunk_events=journal_chunk_events,
        crash_points=crash_points,
    )


@dataclass
class MetricsRunResult:
    """One instrumented run plus its full registry snapshot."""

    kind: str
    events: int
    inferences: int
    interrupts: int
    dropped: int
    wall_s: float
    snapshot: Dict[str, object]


def run_metrics(
    kind: str = "lstm", events: int = 12_000, seed: int = 0
) -> MetricsRunResult:
    """Run one instrumented short trace and snapshot every stage."""
    registry = MetricsRegistry()
    soc = build_demo_soc(kind, seed=seed, metrics=registry)
    stream = demo_events(kind, seed, events)
    start = time.perf_counter()
    records = soc.run_events(stream)
    wall_s = time.perf_counter() - start
    return MetricsRunResult(
        kind=kind,
        events=len(stream),
        inferences=len(records),
        interrupts=soc.mcm.interrupts.count,
        dropped=soc.mcm.dropped_vectors,
        wall_s=wall_s,
        snapshot=registry.snapshot(),
    )


def run_metrics_all(
    kinds: Sequence[str] = DEMO_KINDS,
    events: int = 12_000,
    seed: int = 0,
) -> List[MetricsRunResult]:
    return [run_metrics(kind, events=events, seed=seed) for kind in kinds]


def stage_table(result: MetricsRunResult) -> str:
    histograms = result.snapshot["histograms"]
    rows = []
    for name, label in _LATENCY_METRICS:
        entry = histograms.get(name)
        if not entry or not entry["count"]:
            continue
        rows.append(
            (
                label,
                entry["count"],
                entry["p50"] / 1e3,
                entry["p95"] / 1e3,
                entry["p99"] / 1e3,
                entry["max"] / 1e3,
            )
        )
    return format_table(
        ["stage", "n", "p50 us", "p95 us", "p99 us", "max us"],
        rows,
        title=f"{result.kind}: per-stage latency breakdown "
              f"({result.events} events, {result.inferences} inferences, "
              f"{result.interrupts} interrupts, {result.dropped} dropped)",
    )


def robustness_counters(snapshot: Dict[str, object]) -> Dict[str, int]:
    """Loss/recovery counters from one registry snapshot.

    Every canonical fault/recovery counter is present (0 when it never
    fired), plus any per-port ``pipeline.port.*`` drop/stall counters
    that exist in this snapshot — the dataplane's own backpressure and
    loss accounting next to the injected-fault accounting.
    """
    counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore
    out = {name: int(counters.get(name, 0)) for name in ROBUSTNESS_COUNTERS}
    for name, value in sorted(counters.items()):
        if name.startswith("pipeline.port.") and name.endswith(
            (".drops", ".stalls")
        ):
            out[name] = int(value)
    return out


def perf_counters(snapshot: Dict[str, object]) -> Dict[str, int]:
    """Engine fast-path counters from one registry snapshot.

    Mirrors :func:`robustness_counters`: every canonical
    compiled-fast-path counter is present even when it reads zero.
    """
    counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore
    return {name: int(counters.get(name, 0)) for name in PERF_COUNTERS}


def serve_counters(snapshot: Dict[str, object]) -> Dict[str, int]:
    """Ingestion front-door counters from one registry snapshot.

    Mirrors :func:`robustness_counters`: every canonical ``serve.*``
    counter is present with a stable shape — all zeros when the
    snapshot came from an in-process run that never went through
    :class:`repro.serve.IngestServer`.
    """
    from repro.serve.server import SERVE_COUNTERS

    counters: Dict[str, int] = snapshot.get("counters", {})  # type: ignore
    return {name: int(counters.get(name, 0)) for name in SERVE_COUNTERS}


def serve_table(result: MetricsRunResult) -> str:
    rows = [
        (name, value)
        for name, value in serve_counters(result.snapshot).items()
    ]
    return format_table(
        ["counter", "count"],
        rows,
        title=f"{result.kind}: ingestion front door (admission / "
              "shed / breaker)",
    )


def perf_table(result: MetricsRunResult) -> str:
    rows = [
        (name, value)
        for name, value in perf_counters(result.snapshot).items()
    ]
    return format_table(
        ["counter", "count"],
        rows,
        title=f"{result.kind}: engine fast path (compile cache / "
              "dispatch routing)",
    )


def robustness_table(result: MetricsRunResult) -> str:
    rows = [
        (name, value)
        for name, value in robustness_counters(result.snapshot).items()
    ]
    return format_table(
        ["counter", "count"],
        rows,
        title=f"{result.kind}: robustness (drops / stalls / faults / "
              "recovery)",
    )


def format_metrics(results: Sequence[MetricsRunResult]) -> str:
    """Condensed stage tables plus the full instrument dump."""
    sections = []
    for result in results:
        sections.append(stage_table(result))
        sections.append(perf_table(result))
        sections.append(robustness_table(result))
        sections.append(serve_table(result))
        sections.append(
            format_snapshot(
                result.snapshot, title=f"{result.kind} full metrics"
            )
        )
    return "\n\n".join(sections)


def metrics_to_json(results: Sequence[MetricsRunResult]) -> Dict[str, object]:
    """JSON document: one entry per model kind."""
    return {
        result.kind: {
            "events": result.events,
            "inferences": result.inferences,
            "interrupts": result.interrupts,
            "dropped": result.dropped,
            "perf": perf_counters(result.snapshot),
            "robustness": robustness_counters(result.snapshot),
            "serve": serve_counters(result.snapshot),
            "metrics": result.snapshot,
        }
        for result in results
    }
