"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.export import snapshot_to_text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    table: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        table.append([_fmt(cell) for cell in row])
    widths = [
        max(len(table[r][c]) for r in range(len(table)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(separator)
    for row in table[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_snapshot(snapshot: Dict[str, object], title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text.

    The experiment harness's single entry point for metric dumps, so
    every ``python -m repro.eval`` surface renders them the same way.
    """
    return snapshot_to_text(snapshot, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
