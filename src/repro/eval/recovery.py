"""``python -m repro.eval recovery`` — kill-and-replay crash recovery.

The durability contract under test (docs/DURABILITY.md): a journaled
multi-tenant run that is killed at an arbitrary crash point and then
recovered via :meth:`SocManager.recover` must end with a per-tenant
inference-record log *byte-identical* to the uninterrupted run's.

The harness, per dataplane (``batched`` and ``loop``) and per seed:

1. runs a **baseline** manager with no journal at all — journaling
   must be behaviourally invisible, so this is the reference;
2. runs the same rounds journaled end-to-end with a *counting-only*
   crash injector, checks the records still match the baseline, and
   learns the total number of crash sites;
3. picks several **distinct kill points** by hashing the existing
   ``TENANT_CRASH`` fault channel, re-runs the journaled deployment
   until the injected :class:`~repro.errors.ProcessCrashError` fires,
   reopens the journal (torn tails are truncated on reopen), recovers,
   re-feeds the rounds from :attr:`SocManager.next_round`, and
   compares the final record logs against the baseline byte by byte;
4. flips single journal bytes (positions drawn from the ``BIT_FLIP``
   channel hash) and checks every flip is *detected* — surfaced as a
   :class:`~repro.errors.JournalCorruptionError` or as a truncated
   valid prefix, never silently replayed.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.durability.journal import FileJournal, MIN_RECORD_BYTES
from repro.errors import JournalCorruptionError, ProcessCrashError
from repro.eval.report import format_table
from repro.faults.crashpoints import CrashPointInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.mcm.mcm import InferenceRecord
from repro.obs import MetricsRegistry
from repro.soc.manager import SocManager

DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_KILLS_PER_SEED = 3
_DATAPLANES = ("batched", "loop")


def record_signature(record: InferenceRecord) -> str:
    """One record as a canonical JSON string (the byte-level unit of
    comparison — any drift in any field breaks equality)."""
    return json.dumps(
        {
            "seq": int(record.sequence_number),
            "trigger": int(record.trigger_cycle),
            "arrival": float(record.arrival_ns),
            "start": float(record.start_ns),
            "done": float(record.done_ns),
            "score": float(record.score),
            "anomalous": record.anomalous,
            "gpu_cycles": int(record.gpu_cycles),
            "divergent": record.divergent,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _record_log(manager: SocManager) -> Dict[str, List[str]]:
    """The lifetime per-tenant record log, serialized."""
    return {
        runtime.name: [
            record_signature(r) for r in runtime.mcm.records
        ]
        for runtime in manager.tenants
    }


@dataclass
class KillTrial:
    """One kill-and-replay round trip."""

    kill_at: int
    site: str
    crashed_round: int
    resumed_round: int
    identical: bool


@dataclass
class DataplaneRecoveryResult:
    """All trials for one (dataplane, seed) cell."""

    dataplane: str
    seed: int
    total_sites: int
    journaled_identical: bool
    trials: List[KillTrial] = field(default_factory=list)


@dataclass
class RecoveryResult:
    kind: str
    rounds: int
    events_per_round: int
    tenants: int
    seeds: Tuple[int, ...]
    runs: List[DataplaneRecoveryResult] = field(default_factory=list)
    flip_trials: int = 0
    flips_detected: int = 0


class _Scenario:
    """One deployment shape: fixed traces, rebuildable managers."""

    def __init__(
        self,
        kind: str,
        dataplane: str,
        seed: int,
        rounds: int,
        events_per_round: int,
        tenants: int,
        journal_chunk_events: int,
        checkpoint_interval_events: int,
    ) -> None:
        from repro.eval.metrics import build_demo_deployments, demo_events

        self._build = lambda: build_demo_deployments(
            num_tenants=tenants,
            kind=kind,
            dataplane=dataplane,
        )
        self.journal_chunk_events = journal_chunk_events
        self.checkpoint_interval_events = checkpoint_interval_events
        self.traces = [
            {
                f"tenant{index}": demo_events(
                    kind,
                    0,
                    events_per_round,
                    run_label=(
                        f"recovery-s{seed}-t{index}-r{round_index}"
                    ),
                )
                for index in range(tenants)
            }
            for round_index in range(rounds)
        ]

    def manager(self, journal=None, crash_points=None) -> SocManager:
        return SocManager(
            self._build(),
            metrics=MetricsRegistry(),
            journal=journal,
            checkpoint_interval_events=self.checkpoint_interval_events,
            journal_chunk_events=self.journal_chunk_events,
            crash_points=crash_points,
        )

    def recover(self, journal) -> SocManager:
        return SocManager.recover(
            journal,
            self._build(),
            metrics=MetricsRegistry(),
            checkpoint_interval_events=self.checkpoint_interval_events,
            journal_chunk_events=self.journal_chunk_events,
        )


def _pick_kill_points(
    seed: int, total_sites: int, count: int
) -> List[int]:
    """Distinct kill indexes from the TENANT_CRASH channel hash."""
    plan = FaultPlan(
        seed=seed, specs=(FaultSpec(FaultKind.TENANT_CRASH, rate=1.0),)
    )
    picks: List[int] = []
    draw = 0
    while len(picks) < min(count, total_sites):
        candidate = plan.value(FaultKind.TENANT_CRASH, draw) % total_sites
        draw += 1
        if candidate not in picks:
            picks.append(candidate)
    return picks


def _run_cell(
    scenario: _Scenario,
    dataplane: str,
    seed: int,
    baseline_log: Dict[str, List[str]],
    kills: int,
    workdir: str,
) -> Tuple[DataplaneRecoveryResult, Optional[str]]:
    """One (dataplane, seed) cell; returns the result plus the path of
    a completed journal directory kept for the byte-flip trials."""
    # Journaled, uninterrupted: journaling must be invisible.
    clean_dir = os.path.join(workdir, "clean")
    counting = CrashPointInjector(kill_at=None)
    manager = scenario.manager(
        journal=FileJournal(clean_dir), crash_points=counting
    )
    for traces in scenario.traces:
        manager.run_events(traces)
    result = DataplaneRecoveryResult(
        dataplane=dataplane,
        seed=seed,
        total_sites=counting.sites_reached,
        journaled_identical=_record_log(manager) == baseline_log,
    )
    for kill_at in _pick_kill_points(
        seed, counting.sites_reached, kills
    ):
        kill_dir = os.path.join(workdir, f"kill-{kill_at}")
        injector = CrashPointInjector(kill_at=kill_at)
        victim = scenario.manager(
            journal=FileJournal(kill_dir), crash_points=injector
        )
        crashed_round = -1
        try:
            for round_index, traces in enumerate(scenario.traces):
                victim.run_events(traces)
        except ProcessCrashError:
            crashed_round = round_index
        # Reopen (truncates any torn tail) and recover.
        recovered = scenario.recover(FileJournal(kill_dir))
        resumed = recovered.next_round
        for traces in scenario.traces[resumed:]:
            recovered.run_events(traces)
        result.trials.append(
            KillTrial(
                kill_at=kill_at,
                site=injector.fired_site or "(never fired)",
                crashed_round=crashed_round,
                resumed_round=resumed,
                identical=_record_log(recovered) == baseline_log,
            )
        )
    return result, clean_dir


def _flip_trials(
    journal_dir: str, seed: int, count: int, workdir: str
) -> Tuple[int, int]:
    """Flip single bytes of a completed journal; count detections.

    A flip is *detected* when the reopened scan either raises
    :class:`JournalCorruptionError` or returns strictly fewer records
    than the pristine journal (valid-prefix truncation).  A flip that
    goes unnoticed is a durability hole.
    """
    pristine = len(FileJournal(journal_dir).records())
    segments = sorted(
        name
        for name in os.listdir(journal_dir)
        if name.endswith(".wal")
        and os.path.getsize(os.path.join(journal_dir, name))
        >= MIN_RECORD_BYTES
    )
    if not segments:
        return 0, 0
    plan = FaultPlan(
        seed=seed, specs=(FaultSpec(FaultKind.BIT_FLIP, rate=1.0),)
    )
    detected = 0
    for trial in range(count):
        trial_dir = os.path.join(workdir, f"flip-{trial}")
        shutil.copytree(journal_dir, trial_dir)
        segment = segments[
            plan.value(FaultKind.BIT_FLIP, 2 * trial) % len(segments)
        ]
        path = os.path.join(trial_dir, segment)
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            position = plan.value(FaultKind.BIT_FLIP, 2 * trial + 1) % len(
                data
            )
            bit = 1 << (plan.value(FaultKind.BIT_FLIP, trial) % 8)
            data[position] ^= bit
            handle.seek(0)
            handle.write(data)
        try:
            survived = len(FileJournal(trial_dir).records())
        except JournalCorruptionError:
            detected += 1
        else:
            if survived < pristine:
                detected += 1
    return count, detected


def run_recovery(
    kind: str = "lstm",
    seeds: Sequence[int] = DEFAULT_SEEDS,
    rounds: int = 3,
    events_per_round: int = 1200,
    tenants: int = 2,
    kills_per_seed: int = DEFAULT_KILLS_PER_SEED,
    flip_trials: int = 6,
) -> RecoveryResult:
    """Run the full kill-and-replay matrix (both dataplanes)."""
    result = RecoveryResult(
        kind=kind,
        rounds=rounds,
        events_per_round=events_per_round,
        tenants=tenants,
        seeds=tuple(seeds),
    )
    # Checkpoint roughly every other round, so recoveries exercise
    # both checkpoint restore and multi-round replay.
    round_events = events_per_round * tenants
    checkpoint_interval = 2 * round_events
    flip_journal: Optional[str] = None
    root = tempfile.mkdtemp(prefix="rtad-recovery-")
    try:
        for dataplane in _DATAPLANES:
            for seed in seeds:
                scenario = _Scenario(
                    kind,
                    dataplane,
                    seed,
                    rounds,
                    events_per_round,
                    tenants,
                    journal_chunk_events=512,
                    checkpoint_interval_events=checkpoint_interval,
                )
                baseline = scenario.manager()
                for traces in scenario.traces:
                    baseline.run_events(traces)
                workdir = os.path.join(root, f"{dataplane}-s{seed}")
                cell, clean_dir = _run_cell(
                    scenario,
                    dataplane,
                    seed,
                    _record_log(baseline),
                    kills_per_seed,
                    workdir,
                )
                result.runs.append(cell)
                if flip_journal is None:
                    flip_journal = clean_dir
        if flip_journal is not None and flip_trials > 0:
            result.flip_trials, result.flips_detected = _flip_trials(
                flip_journal,
                seeds[0] if seeds else 0,
                flip_trials,
                os.path.join(root, "flips"),
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return result


def recovery_failures(result: RecoveryResult) -> List[str]:
    """Violated invariants, as human-readable strings (empty = pass)."""
    failures: List[str] = []
    for run in result.runs:
        where = f"{run.dataplane}/seed{run.seed}"
        if not run.journaled_identical:
            failures.append(
                f"{where}: journaling perturbed the record stream"
            )
        for trial in run.trials:
            if not trial.identical:
                failures.append(
                    f"{where}: kill at site {trial.kill_at} "
                    f"({trial.site}) recovered to a divergent record "
                    "log"
                )
    if result.flips_detected < result.flip_trials:
        failures.append(
            f"journal byte flips: only {result.flips_detected}/"
            f"{result.flip_trials} detected"
        )
    return failures


def format_recovery(result: RecoveryResult) -> str:
    rows = []
    for run in result.runs:
        for trial in run.trials:
            rows.append(
                (
                    run.dataplane,
                    run.seed,
                    f"{trial.kill_at}/{run.total_sites}",
                    trial.site,
                    trial.crashed_round,
                    trial.resumed_round,
                    "yes" if trial.identical else "NO",
                )
            )
    table = format_table(
        ["dataplane", "seed", "kill", "site", "crashed", "resumed",
         "identical"],
        rows,
        title=(
            f"recovery: kill-and-replay ({result.kind}, "
            f"{result.rounds} rounds x {result.events_per_round} events "
            f"x {result.tenants} tenants; journaled==baseline: "
            + (
                "yes"
                if all(r.journaled_identical for r in result.runs)
                else "NO"
            )
            + f"; byte flips detected: {result.flips_detected}/"
            f"{result.flip_trials})"
        ),
    )
    failures = recovery_failures(result)
    if failures:
        table += "\n\nFAILURES:\n" + "\n".join(
            f"  - {line}" for line in failures
        )
    return table


def recovery_to_json(result: RecoveryResult) -> Dict[str, object]:
    """JSON document mirroring :func:`format_recovery`."""
    return {
        "kind": result.kind,
        "rounds": result.rounds,
        "events_per_round": result.events_per_round,
        "tenants": result.tenants,
        "seeds": list(result.seeds),
        "runs": [asdict(run) for run in result.runs],
        "flip_trials": result.flip_trials,
        "flips_detected": result.flips_detected,
        "failures": recovery_failures(result),
    }
