"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning structured rows
plus a ``format_*`` helper that prints the same table the paper shows,
side by side with the paper's published numbers.  The benchmark suite
(``benchmarks/``) wraps these with pytest-benchmark.
"""

from repro.eval.report import format_table
from repro.eval.table1 import run_table1, format_table1
from repro.eval.table2 import run_table2, format_table2
from repro.eval.fig6 import run_fig6, format_fig6
from repro.eval.fig7 import run_fig7, format_fig7
from repro.eval.fig8 import run_fig8, format_fig8

__all__ = [
    "format_table",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
]
