"""``python -m repro.eval soak`` — front-door load and overload.

Four scenarios against the asyncio ingestion service
(:class:`repro.serve.IngestServer`), all on the in-memory transport so
a thousand-plus concurrent clients cost no file descriptors:

1. **steady** — ``--clients`` (default 1000) concurrent clients spread
   over both trace grammars and both ingest modes (raw byte streams
   decoded server-side, pre-decoded event batches) stream into a
   generously provisioned server.  Reports p50/p99/max ingest-to-
   verdict latency and checks conservation: every admitted event is
   either served in a round or shed as stale — and every frame got a
   visible answer.
2. **overload (deadline armed)** — clients outrun a deliberately
   slowed drain loop with a deadline configured: stale batches are
   shed at drain, doomed batches at the door, and the *admitted*
   requests keep a bounded tail.
3. **overload (unarmed)** — the identical offered load with no
   deadline: nothing sheds, the backlog drains eventually, and the
   admitted p99 balloons.  The armed-vs-unarmed p99 gap is the
   experiment's headline number.
4. **ratelimit** — a small client fleet against a per-tenant token
   bucket; refusals must come back as SHED frames with positive
   retry-after hints.

``soak_failures`` turns the scenario gates into exit-code-1 failures
(the CI smoke runs it with a reduced fleet).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.report import format_table
from repro.frontends import frontend_names, get_frontend
from repro.serve import IngestServer, ServeClient, ServeConfig
from repro.serve import protocol
from repro.workloads.cfg import BranchEvent

#: Steady-state fleet size (the acceptance bar: >= 1000 concurrent).
DEFAULT_CLIENTS = 1000

#: Tenants the fleets share (clients per tenant = clients / tenants).
SOAK_TENANTS = 4

#: Ingest deadline for the armed overload scenario.
OVERLOAD_DEADLINE_US = 30_000.0


@dataclass
class SoakScenario:
    """One scenario's aggregated outcome."""

    name: str
    clients: int
    frames_sent: int
    #: Data-frame responses by type (hello ACKs excluded).
    acks: int
    sheds: int
    errors: int
    admitted_events: int
    drained_events: int
    stale_events: int
    rounds: int
    p50_ms: float
    p99_ms: float
    max_ms: float
    latency_samples: int
    shed_counters: Dict[str, int] = field(default_factory=dict)
    breaker_trips: int = 0
    dataplane_crashes: int = 0
    min_retry_after_ms: float = 0.0
    wall_s: float = 0.0


@dataclass
class SoakResult:
    clients: int
    seed: int
    kind: str
    frontends: Tuple[str, ...]
    deadline_us: float
    steady: SoakScenario
    overload_armed: SoakScenario
    overload_unarmed: SoakScenario
    ratelimit: SoakScenario


def _percentile_ms(samples_ns: Sequence[int], q: float) -> float:
    if not samples_ns:
        return 0.0
    ordered = sorted(samples_ns)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index] / 1e6


@dataclass(frozen=True)
class _ClientSpec:
    tenant: str
    mode: str
    frontend: Optional[str]
    frames: Tuple[object, ...]  # event tuples (events mode) or bytes


def _raw_chunks(
    frontend_name: str,
    events: Sequence[BranchEvent],
    frames: int,
) -> Tuple[bytes, ...]:
    """One continuous encoded stream, split into per-frame chunks."""
    frontend = get_frontend(frontend_name)
    driver = frontend.create_driver()
    driver.enable()
    per_frame = max(1, len(events) // frames)
    chunks: List[bytes] = []
    for index in range(frames):
        start = index * per_frame
        stop = len(events) if index == frames - 1 else start + per_frame
        chunks.append(driver.trace_all(events[start:stop]))
    chunks[-1] += driver.flush()
    return tuple(chunks)


async def _drive_one(server: IngestServer, spec: _ClientSpec) -> ServeClient:
    client = ServeClient.local(server)
    await client.hello(spec.tenant, spec.mode, spec.frontend)
    for payload in spec.frames:
        if spec.mode == protocol.MODE_RAW:
            await client.send_raw(payload)  # type: ignore[arg-type]
        else:
            await client.send_events(payload)  # type: ignore[arg-type]
    await client.bye()
    return client


async def _run_fleet(
    name: str,
    server: IngestServer,
    specs: Sequence[_ClientSpec],
    settle_s: float = 0.0,
) -> SoakScenario:
    start_s = time.perf_counter()
    await server.start()
    clients = await asyncio.gather(
        *(_drive_one(server, spec) for spec in specs)
    )
    if settle_s:
        # Overload scenarios: let wall time pass with the backlog
        # still queued, so deadline/stale behaviour (or its absence)
        # is what the latency tail measures.
        await asyncio.sleep(settle_s)
    # Everything still queued gets its rounds before the books close.
    server.drain_all()
    await server.stop()
    wall_s = time.perf_counter() - start_s
    frames_sent = sum(len(spec.frames) for spec in specs)
    counts = server.counts
    # Each client's first ACK answered its HELLO, not a data frame.
    acks = sum(client.acks for client in clients) - len(clients)
    retries = [
        retry
        for client in clients
        for retry in client.retry_after_ms
    ]
    return SoakScenario(
        name=name,
        clients=len(specs),
        frames_sent=frames_sent,
        acks=acks,
        sheds=sum(client.sheds for client in clients),
        errors=sum(client.errors for client in clients),
        admitted_events=counts["serve.admitted.events"],
        drained_events=counts["serve.round.events"],
        stale_events=server.stale_events,
        rounds=counts["serve.rounds"],
        p50_ms=_percentile_ms(server.latencies_ns, 0.50),
        p99_ms=_percentile_ms(server.latencies_ns, 0.99),
        max_ms=_percentile_ms(server.latencies_ns, 1.0),
        latency_samples=len(server.latencies_ns),
        shed_counters={
            reason: counts[f"serve.shed.{reason}"]
            for reason in (
                "breaker_open", "sampled", "rate_limited",
                "queue_depth", "deadline", "buffer_full", "stale",
            )
        },
        breaker_trips=counts["serve.breaker.trips"],
        dataplane_crashes=len(server.drain_errors),
        min_retry_after_ms=min(retries) if retries else 0.0,
        wall_s=wall_s,
    )


def _steady_specs(
    tenants: Sequence[str],
    events: Sequence[BranchEvent],
    clients: int,
    frames_per_client: int,
    frontends: Sequence[str],
) -> List[_ClientSpec]:
    """Mix raw and events clients over both grammars, round-robin."""
    raw_chunks = {
        name: _raw_chunks(name, events, frames_per_client)
        for name in frontends
    }
    per_frame = max(1, len(events) // frames_per_client)
    event_frames = tuple(
        tuple(events[i * per_frame:(i + 1) * per_frame])
        for i in range(frames_per_client)
    )
    specs: List[_ClientSpec] = []
    for index in range(clients):
        tenant = tenants[index % len(tenants)]
        if index % 2 == 0:
            frontend = frontends[(index // 2) % len(frontends)]
            specs.append(
                _ClientSpec(
                    tenant, protocol.MODE_RAW, frontend,
                    raw_chunks[frontend],
                )
            )
        else:
            specs.append(
                _ClientSpec(tenant, protocol.MODE_EVENTS, None, event_frames)
            )
    return specs


def _events_specs(
    tenants: Sequence[str],
    events: Sequence[BranchEvent],
    clients: int,
    frames_per_client: int,
) -> List[_ClientSpec]:
    per_frame = max(1, len(events) // frames_per_client)
    event_frames = tuple(
        tuple(events[i * per_frame:(i + 1) * per_frame])
        for i in range(frames_per_client)
    )
    return [
        _ClientSpec(
            tenants[index % len(tenants)],
            protocol.MODE_EVENTS,
            None,
            event_frames,
        )
        for index in range(clients)
    ]


def run_soak(
    clients: int = DEFAULT_CLIENTS,
    seed: int = 0,
    kind: str = "lstm",
    frames_per_client: int = 3,
    events_per_frame: int = 48,
) -> SoakResult:
    """Run all four scenarios; see the module docstring."""
    from repro.eval.metrics import build_demo_manager, demo_events

    frontends = frontend_names()
    stream = demo_events(
        kind, seed, frames_per_client * events_per_frame,
        run_label="soak",
    )

    def fresh_server(config: ServeConfig) -> IngestServer:
        manager = build_demo_manager(SOAK_TENANTS, kind=kind, seed=seed)
        return IngestServer(manager, config)

    async def scenarios() -> Tuple[SoakScenario, ...]:
        server = fresh_server(
            ServeConfig(
                window_batches=1024,
                max_queued_events=1 << 20,
                round_max_events=1 << 15,
                drain_interval_s=0.002,
                drain_kick_events=1 << 13,
            )
        )
        tenants = [t.name for t in server.manager.tenants]
        steady = await _run_fleet(
            "steady",
            server,
            _steady_specs(
                tenants, stream, clients, frames_per_client, frontends
            ),
        )

        # Overload: the round budget is squeezed far below the offered
        # rate, so the backlog genuinely grows; armed vs unarmed
        # differ only in the deadline.
        overload_clients = max(100, clients // 5)
        def overload_config(deadline_us):
            return ServeConfig(
                deadline_us=deadline_us,
                window_batches=4096,
                max_queued_events=1 << 20,
                round_max_events=256,
                drain_interval_s=0.02,
                drain_kick_events=1 << 30,  # interval/age-driven only
            )

        armed_server = fresh_server(overload_config(OVERLOAD_DEADLINE_US))
        tenants = [t.name for t in armed_server.manager.tenants]
        settle_s = 3 * OVERLOAD_DEADLINE_US / 1e6
        armed = await _run_fleet(
            "overload-armed",
            armed_server,
            _events_specs(tenants, stream, overload_clients, frames_per_client),
            settle_s=settle_s,
        )
        unarmed_server = fresh_server(overload_config(None))
        unarmed = await _run_fleet(
            "overload-unarmed",
            unarmed_server,
            _events_specs(tenants, stream, overload_clients, frames_per_client),
            settle_s=settle_s,
        )

        # Rate limiting: a token bucket far below the offered rate.
        limited_server = fresh_server(
            ServeConfig(
                rate_limit_eps=100.0,
                rate_burst_events=events_per_frame * 2,
                max_queued_events=1 << 20,
            )
        )
        limited = await _run_fleet(
            "ratelimit",
            limited_server,
            _events_specs(tenants, stream, max(16, clients // 20), 4),
        )
        return steady, armed, unarmed, limited

    steady, armed, unarmed, limited = asyncio.run(scenarios())
    return SoakResult(
        clients=clients,
        seed=seed,
        kind=kind,
        frontends=frontends,
        deadline_us=OVERLOAD_DEADLINE_US,
        steady=steady,
        overload_armed=armed,
        overload_unarmed=unarmed,
        ratelimit=limited,
    )


def soak_failures(result: SoakResult) -> List[str]:
    """Violated soak invariants; empty means the run passed."""
    failures: List[str] = []
    scenarios = (
        result.steady,
        result.overload_armed,
        result.overload_unarmed,
        result.ratelimit,
    )
    for s in scenarios:
        if s.dataplane_crashes:
            failures.append(
                f"{s.name}: {s.dataplane_crashes} dataplane crashes"
            )
        answered = s.acks + s.sheds + s.errors
        if answered != s.frames_sent:
            failures.append(
                f"{s.name}: {answered} responses for {s.frames_sent} "
                "data frames (every frame must be answered)"
            )
        if s.admitted_events != s.drained_events + s.stale_events:
            failures.append(
                f"{s.name}: {s.admitted_events} admitted events != "
                f"{s.drained_events} drained + {s.stale_events} stale "
                "(shed work must be accounted, not lost)"
            )
    if result.steady.clients < result.clients:
        failures.append(
            f"steady: only {result.steady.clients} clients ran "
            f"(requested {result.clients})"
        )
    if result.steady.errors:
        failures.append(
            f"steady: {result.steady.errors} protocol errors on a "
            "clean fleet"
        )
    if result.steady.latency_samples == 0:
        failures.append("steady: no ingest-to-verdict latency samples")
    armed, unarmed = result.overload_armed, result.overload_unarmed
    deadline_sheds = (
        armed.shed_counters.get("deadline", 0)
        + armed.shed_counters.get("stale", 0)
    )
    if deadline_sheds == 0:
        failures.append(
            "overload-armed: deadline/stale shedding never fired"
        )
    deadline_ms = result.deadline_us / 1e3
    if armed.p99_ms > 2 * deadline_ms:
        failures.append(
            f"overload-armed: admitted p99 {armed.p99_ms:.1f} ms is "
            f"not bounded by the {deadline_ms:g} ms deadline"
        )
    if (
        unarmed.p99_ms > 2 * deadline_ms
        and armed.p99_ms > unarmed.p99_ms
    ):
        failures.append(
            f"overload: armed p99 {armed.p99_ms:.1f} ms exceeds "
            f"unarmed p99 {unarmed.p99_ms:.1f} ms — the deadline did "
            "not bound the admitted tail"
        )
    if result.ratelimit.shed_counters.get("rate_limited", 0) == 0:
        failures.append("ratelimit: the token bucket never refused")
    if (
        result.ratelimit.sheds
        and result.ratelimit.min_retry_after_ms <= 0
    ):
        failures.append(
            "ratelimit: SHED responses carried no positive retry-after"
        )
    return failures


def format_soak(result: SoakResult) -> str:
    rows = []
    for s in (
        result.steady,
        result.overload_armed,
        result.overload_unarmed,
        result.ratelimit,
    ):
        shed_bits = " ".join(
            f"{reason}={count}"
            for reason, count in s.shed_counters.items()
            if count
        )
        rows.append(
            (
                s.name,
                s.clients,
                s.frames_sent,
                s.acks,
                s.sheds,
                s.errors,
                s.admitted_events,
                s.rounds,
                f"{s.p50_ms:.2f}",
                f"{s.p99_ms:.2f}",
                f"{s.wall_s:.2f}",
                shed_bits or "-",
            )
        )
    table = format_table(
        ["scenario", "clients", "frames", "acks", "sheds", "errs",
         "events", "rounds", "p50 ms", "p99 ms", "wall s", "shed detail"],
        rows,
        title=(
            f"soak: {result.clients} clients, kind={result.kind}, "
            f"frontends={'/'.join(result.frontends)}, overload deadline "
            f"{result.deadline_us / 1e3:g} ms"
        ),
    )
    failures = soak_failures(result)
    verdict = (
        "soak: PASS"
        if not failures
        else "soak: FAIL\n" + "\n".join(f"  - {f}" for f in failures)
    )
    return f"{table}\n\n{verdict}"


def soak_to_json(result: SoakResult) -> Dict[str, object]:
    """JSON document mirroring :func:`format_soak`."""
    return {
        "clients": result.clients,
        "seed": result.seed,
        "kind": result.kind,
        "frontends": list(result.frontends),
        "deadline_us": result.deadline_us,
        "steady": asdict(result.steady),
        "overload_armed": asdict(result.overload_armed),
        "overload_unarmed": asdict(result.overload_unarmed),
        "ratelimit": asdict(result.ratelimit),
        "failures": soak_failures(result),
    }
