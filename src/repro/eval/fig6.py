"""Fig. 6: host performance overhead of RTAD vs software collection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.eval.report import format_table
from repro.soc.software_baseline import (
    RtadOverheadModel,
    SoftwareInstrumentationModel,
)
from repro.utils.stats import geometric_mean
from repro.workloads.profiles import SPEC_CINT2006, get_profile

#: Fig. 6 geometric means reported in the paper, in percent.
PAPER_GEOMEAN = {
    "RTAD": 0.052,
    "SW_SYS": 0.6,
    "SW_FUNC": 10.7,
    "SW_ALL": 43.4,
}


@dataclass
class Fig6Row:
    benchmark: str
    rtad_pct: float
    sw_sys_pct: float
    sw_func_pct: float
    sw_all_pct: float


def run_fig6(
    benchmarks: Optional[Sequence[str]] = None,
    instrumentation: Optional[SoftwareInstrumentationModel] = None,
    rtad: Optional[RtadOverheadModel] = None,
) -> List[Fig6Row]:
    instrumentation = instrumentation or SoftwareInstrumentationModel()
    rtad = rtad or RtadOverheadModel()
    profiles = (
        [get_profile(b) for b in benchmarks]
        if benchmarks is not None
        else list(SPEC_CINT2006)
    )
    rows = []
    for profile in profiles:
        rows.append(
            Fig6Row(
                benchmark=profile.name,
                rtad_pct=rtad.overhead(profile) * 100,
                sw_sys_pct=instrumentation.sw_sys_overhead(profile) * 100,
                sw_func_pct=instrumentation.sw_func_overhead(profile) * 100,
                sw_all_pct=instrumentation.sw_all_overhead(profile) * 100,
            )
        )
    return rows


def fig6_geomeans(rows: Sequence[Fig6Row]) -> dict:
    return {
        "RTAD": geometric_mean([r.rtad_pct for r in rows]),
        "SW_SYS": geometric_mean([r.sw_sys_pct for r in rows]),
        "SW_FUNC": geometric_mean([r.sw_func_pct for r in rows]),
        "SW_ALL": geometric_mean([r.sw_all_pct for r in rows]),
    }


def format_fig6(rows: Sequence[Fig6Row]) -> str:
    body = [
        (r.benchmark, r.rtad_pct, r.sw_sys_pct, r.sw_func_pct, r.sw_all_pct)
        for r in rows
    ]
    means = fig6_geomeans(rows)
    body.append(
        ("geomean", means["RTAD"], means["SW_SYS"],
         means["SW_FUNC"], means["SW_ALL"])
    )
    body.append(
        ("paper geomean", PAPER_GEOMEAN["RTAD"], PAPER_GEOMEAN["SW_SYS"],
         PAPER_GEOMEAN["SW_FUNC"], PAPER_GEOMEAN["SW_ALL"])
    )
    return format_table(
        ["benchmark", "RTAD %", "SW_SYS %", "SW_FUNC %", "SW_ALL %"],
        body,
        title="Fig. 6 — performance overhead of RTAD (percent slowdown)",
    )
