"""Table I: synthesized resources of the RTAD modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eval.coverage_runs import deployed_model_runs, single_model_runs
from repro.eval.report import format_table
from repro.miaow.trimming import TrimmingFlow, TrimResult
from repro.synthesis.area_model import rtad_module_areas
from repro.synthesis.library import AreaVector

#: Table I of the paper: (LUTs, FFs, BRAMs, gate count).
PAPER_TABLE1 = {
    ("IGM", "Trace Analyzer"): (11_962, 350, 0, 12_375),
    ("IGM", "P2S"): (686, 1_074, 0, 14_363),
    ("IGM", "Input Vector Generator"): (890, 1_067, 0, 10_430),
    ("MCM", "Internal FIFO"): (13, 33, 10, 262),
    ("MCM", "ML-MIAOW Driver"): (489, 265, 0, 5_971),
    ("MCM", "Control FSM"): (1_609, 1_698, 0, 16_977),
    ("MCM", "Interrupt Manager"): (42, 91, 0, 927),
    ("MCM", "ML-MIAOW (5 CUs)"): (183_715, 76_375, 140, 1_865_989),
    ("Total", ""): (199_406, 80_953, 150, 1_927_294),
}

ML_MIAOW_CUS = 5


@dataclass
class Table1Row:
    module: str
    submodule: str
    area: AreaVector
    paper: tuple


def run_table1(
    seed: int = 0, trim_result: Optional[TrimResult] = None
) -> List[Table1Row]:
    """Synthesize (account) every RTAD module.

    ``trim_result`` may be passed to reuse an existing trimming run;
    otherwise the flow executes here (ML-MIAOW's area is a product of
    the live coverage measurement, not a constant).
    """
    if trim_result is None:
        flow = TrimmingFlow()
        trim_result = flow.run(
            deployed_model_runs(seed),
            single_model_runs=single_model_runs(seed),
        )
    modules = rtad_module_areas()
    ml_miaow = trim_result.trimmed_area.times(ML_MIAOW_CUS).rounded()

    rows = [
        Table1Row("IGM", "Trace Analyzer", modules.trace_analyzer,
                  PAPER_TABLE1[("IGM", "Trace Analyzer")]),
        Table1Row("IGM", "P2S", modules.p2s, PAPER_TABLE1[("IGM", "P2S")]),
        Table1Row("IGM", "Input Vector Generator",
                  modules.input_vector_generator,
                  PAPER_TABLE1[("IGM", "Input Vector Generator")]),
        Table1Row("MCM", "Internal FIFO", modules.internal_fifo,
                  PAPER_TABLE1[("MCM", "Internal FIFO")]),
        Table1Row("MCM", "ML-MIAOW Driver", modules.ml_miaow_driver,
                  PAPER_TABLE1[("MCM", "ML-MIAOW Driver")]),
        Table1Row("MCM", "Control FSM", modules.control_fsm,
                  PAPER_TABLE1[("MCM", "Control FSM")]),
        Table1Row("MCM", "Interrupt Manager", modules.interrupt_manager,
                  PAPER_TABLE1[("MCM", "Interrupt Manager")]),
        Table1Row("MCM", f"ML-MIAOW ({ML_MIAOW_CUS} CUs)", ml_miaow,
                  PAPER_TABLE1[("MCM", "ML-MIAOW (5 CUs)")]),
    ]
    total = AreaVector()
    for row in rows:
        total = total + row.area
    rows.append(Table1Row("Total", "", total.rounded(),
                          PAPER_TABLE1[("Total", "")]))
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    body = [
        (
            row.module, row.submodule,
            int(row.area.luts), int(row.area.ffs),
            int(row.area.brams), int(row.area.gates),
            row.paper[0], row.paper[1], row.paper[2], row.paper[3],
        )
        for row in rows
    ]
    return format_table(
        ["module", "submodule", "LUTs", "FFs", "BRAMs", "gates",
         "pLUTs", "pFFs", "pBRAMs", "pgates"],
        body,
        title="Table I — synthesized results of RTAD (measured vs paper)",
    )
