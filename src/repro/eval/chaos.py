"""``python -m repro.eval chaos`` — fault-injection sweeps.

Three experiments, all seeded and fully deterministic:

1. **Decoder recovery** — a PTM packet stream is TPIU-framed, then
   byte-level faults (bit flips, byte drops, frame desyncs) are
   injected at each swept rate.  The resync-hunting deframer + decoder
   pair reads the corrupted stream and the experiment reports how much
   of the branch stream survives and how many re-locks that cost.
   The same sweep runs against the RISC-V E-Trace grammar (ETP-framed
   stream, :class:`~repro.frontends.etrace.EtraceDeframer` +
   :class:`~repro.frontends.etrace.EtraceDecoder`), with an extra
   truncated-tail decode per point — the byte-fault channels are
   frontend-neutral and both grammars must recover.
2. **Dataplane degradation** — the demo SoC runs the same trace under
   event-drop / event-corrupt / FIFO-overflow plans at each rate; the
   anomaly judgments of surviving inferences are compared one-to-one
   (by sequence number) against the fault-free baseline.
3. **Quarantine isolation** — a three-tenant SoC where one tenant's
   services stall past the arbiter watchdog deadline.  The faulty
   tenant trips the watchdog, is quarantined, sits out probation, and
   is re-admitted; on quarantined rounds the healthy tenants' records
   are compared *exactly* (scores, timestamps) against a fault-free
   reference manager running without the quarantined neighbour.

The rate=0 points double as no-op proofs: a plan whose channels all
have rate 0 must leave every output identical to no plan at all.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coresight.decoder import DecodedBranch, PftDecoder
from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import DEFAULT_SOURCE_ID, Tpiu, TpiuDeframer
from repro.eval.report import format_table
from repro.faults.injectors import StreamFaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.mcm.mcm import InferenceRecord
from repro.obs import MetricsRegistry
from repro.soc.manager import HealthPolicy

#: Default fault-rate sweep (per byte / event / vector).
DEFAULT_RATES = (0.0, 0.0005, 0.002, 0.01)

#: Quarantine-scenario shape.
_QUARANTINE_TENANTS = 3
_QUARANTINE_ROUNDS = 4
_FAULTY_TENANT = "tenant1"


# ----------------------------------------------------------------------
# Experiment 1: decoder recovery under byte corruption
# ----------------------------------------------------------------------


@dataclass
class DecoderChaosPoint:
    rate: float
    stream_bytes: int
    clean_branches: int
    recovered_branches: int
    recovered_fraction: float
    bytes_flipped: int
    bytes_dropped: int
    desyncs: int
    frame_resyncs: int
    decoder_resyncs: int
    truncated: int


def _framed_demo_stream(
    events: int, seed: int
) -> Tuple[bytes, int]:
    """A framed PTM stream plus its clean-decode branch count."""
    from repro.eval.metrics import demo_events

    ptm = Ptm(PtmConfig(sync_interval_bytes=128))
    tpiu = Tpiu(sync_period=4)
    stream = bytearray()
    for event in demo_events("lstm", seed, events, run_label="chaos-decoder"):
        stream += tpiu.push(ptm.feed(event))
    stream += tpiu.push(ptm.flush())
    stream += tpiu.flush()
    framed = bytes(stream)
    clean = _decode_framed(framed)
    return framed, clean.recovered_branches


def _decode_framed(framed: bytes) -> "DecoderChaosPoint":
    """Run the resync-hunting receiver pair over a framed stream."""
    deframer = TpiuDeframer(
        expected_source_id=DEFAULT_SOURCE_ID, resync_hunt=True
    )
    decoder = PftDecoder(strict=False, resync_hunt=True)
    payload = deframer.push(framed)
    items = list(decoder.feed(payload))
    items += decoder.finish()
    branches = sum(1 for i in items if isinstance(i, DecodedBranch))
    return DecoderChaosPoint(
        rate=0.0,
        stream_bytes=len(framed),
        clean_branches=0,
        recovered_branches=branches,
        recovered_fraction=0.0,
        bytes_flipped=0,
        bytes_dropped=0,
        desyncs=0,
        frame_resyncs=deframer.frame_resyncs,
        decoder_resyncs=decoder.resyncs,
        truncated=decoder.truncated,
    )


@dataclass
class EtraceDecoderChaosPoint(DecoderChaosPoint):
    """E-Trace sweep point: adds a torn-tail decode of the same
    corrupted stream (last ``torn_tail_bytes`` chopped off) — the
    deframer/decoder must absorb the truncation as a counted
    :class:`~repro.frontends.etrace.EtraceTruncation`, never an
    exception."""

    torn_tail_bytes: int = 0
    torn_recovered_branches: int = 0
    torn_truncated: int = 0


#: Bytes chopped off for the E-Trace torn-tail decode: enough to cut
#: inside an ETP frame *and* inside the packet it carries.
_ETRACE_TORN_TAIL = 9


def _framed_etrace_stream(events: int, seed: int) -> Tuple[bytes, int]:
    """A framed E-Trace stream plus its clean-decode branch count."""
    from repro.eval.metrics import demo_events
    from repro.frontends.etrace import (
        EtraceConfig,
        EtraceEncoder,
        EtraceFramer,
    )

    encoder = EtraceEncoder(EtraceConfig(sync_interval_bytes=128))
    framer = EtraceFramer(sync_period=4)
    stream = bytearray()
    for event in demo_events(
        "lstm", seed, events, run_label="chaos-decoder"
    ):
        stream += framer.push(encoder.feed(event))
    stream += framer.push(encoder.flush())
    stream += framer.flush()
    framed = bytes(stream)
    clean = _decode_etrace(framed)
    return framed, clean.recovered_branches


def _decode_etrace(framed: bytes) -> "EtraceDecoderChaosPoint":
    """Run the resync-hunting E-Trace receiver pair over a stream."""
    from repro.frontends.etrace import (
        EtraceBranch,
        EtraceDecoder,
        EtraceDeframer,
    )

    deframer = EtraceDeframer(resync_hunt=True)
    decoder = EtraceDecoder(strict=False, resync_hunt=True)
    payload = deframer.push(framed)
    items = list(decoder.feed(payload))
    items += decoder.finish()
    branches = sum(1 for i in items if isinstance(i, EtraceBranch))
    return EtraceDecoderChaosPoint(
        rate=0.0,
        stream_bytes=len(framed),
        clean_branches=0,
        recovered_branches=branches,
        recovered_fraction=0.0,
        bytes_flipped=0,
        bytes_dropped=0,
        desyncs=0,
        frame_resyncs=deframer.frame_resyncs,
        decoder_resyncs=decoder.resyncs,
        truncated=decoder.truncated,
    )


def run_etrace_decoder_sweep(
    rates: Sequence[float], events: int, seed: int
) -> List[EtraceDecoderChaosPoint]:
    """The decoder-recovery sweep, E-Trace grammar.

    Same byte-fault plan as the CoreSight sweep; each point also
    decodes the corrupted stream with its tail torn off to prove the
    truncation path is a counted event, not a crash.
    """
    framed, clean_branches = _framed_etrace_stream(events, seed)
    points = []
    for rate in rates:
        injector = StreamFaultInjector(byte_fault_plan(rate, seed))
        corrupted = injector.feed(framed)
        point = _decode_etrace(corrupted)
        point.rate = rate
        point.clean_branches = clean_branches
        point.recovered_fraction = (
            point.recovered_branches / clean_branches
            if clean_branches
            else 1.0
        )
        point.bytes_flipped = injector.flipped
        point.bytes_dropped = injector.dropped
        point.desyncs = injector.desyncs
        torn = _decode_etrace(corrupted[:-_ETRACE_TORN_TAIL])
        point.torn_tail_bytes = _ETRACE_TORN_TAIL
        point.torn_recovered_branches = torn.recovered_branches
        point.torn_truncated = torn.truncated
        points.append(point)
    return points


def byte_fault_plan(rate: float, seed: int) -> FaultPlan:
    """The byte-level channel mix the decoder sweep injects."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(FaultKind.BIT_FLIP, rate=rate),
            FaultSpec(FaultKind.BYTE_DROP, rate=rate),
            FaultSpec(
                FaultKind.FRAME_DESYNC, rate=rate / 8.0, desync_bytes=7
            ),
        ),
    )


def run_decoder_sweep(
    rates: Sequence[float], events: int, seed: int
) -> List[DecoderChaosPoint]:
    framed, clean_branches = _framed_demo_stream(events, seed)
    points = []
    for rate in rates:
        injector = StreamFaultInjector(byte_fault_plan(rate, seed))
        corrupted = injector.feed(framed)
        point = _decode_framed(corrupted)
        point.rate = rate
        point.clean_branches = clean_branches
        point.recovered_fraction = (
            point.recovered_branches / clean_branches
            if clean_branches
            else 1.0
        )
        point.bytes_flipped = injector.flipped
        point.bytes_dropped = injector.dropped
        point.desyncs = injector.desyncs
        points.append(point)
    return points


# ----------------------------------------------------------------------
# Experiment 2: dataplane degradation (detection under injected loss)
# ----------------------------------------------------------------------


@dataclass
class DataplaneChaosPoint:
    rate: float
    inferences: int
    baseline_inferences: int
    matched: int
    flag_agreement: float
    interrupts: int
    events_dropped: int
    events_duplicated: int
    events_corrupted: int
    vectors_dropped: int


def dataplane_fault_plan(rate: float, seed: int) -> FaultPlan:
    """The event/vector channel mix the dataplane sweep injects."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(FaultKind.EVENT_DROP, rate=rate),
            FaultSpec(FaultKind.EVENT_CORRUPT, rate=rate),
            FaultSpec(FaultKind.FIFO_OVERFLOW, rate=rate / 4.0, burst=8),
        ),
    )


def _flag_map(records: Sequence[InferenceRecord]) -> Dict[int, bool]:
    return {
        r.sequence_number: bool(r.anomalous)
        for r in records
        if r.anomalous is not None
    }


def run_dataplane_sweep(
    rates: Sequence[float], events: int, seed: int, kind: str = "lstm"
) -> List[DataplaneChaosPoint]:
    from repro.eval.metrics import build_demo_soc, demo_events

    stream = demo_events(kind, seed, events, run_label="chaos-dataplane")
    baseline_soc = build_demo_soc(kind, seed=seed)
    baseline = list(baseline_soc.run_events(stream))
    baseline_flags = _flag_map(baseline)
    points = []
    for rate in rates:
        registry = MetricsRegistry()
        soc = build_demo_soc(
            kind,
            seed=seed,
            metrics=registry,
            fault_plan=dataplane_fault_plan(rate, seed),
        )
        records = list(soc.run_events(stream))
        flags = _flag_map(records)
        matched = [s for s in flags if s in baseline_flags]
        agree = sum(1 for s in matched if flags[s] == baseline_flags[s])
        counters = registry.snapshot()["counters"]
        points.append(
            DataplaneChaosPoint(
                rate=rate,
                inferences=len(records),
                baseline_inferences=len(baseline),
                matched=len(matched),
                flag_agreement=(
                    agree / len(matched) if matched else 1.0
                ),
                interrupts=soc.mcm.interrupts.count,
                events_dropped=int(
                    counters.get("faults.events.dropped", 0)
                ),
                events_duplicated=int(
                    counters.get("faults.events.duplicated", 0)
                ),
                events_corrupted=int(
                    counters.get("faults.events.corrupted", 0)
                ),
                vectors_dropped=int(
                    counters.get("faults.vectors.dropped", 0)
                ),
            )
        )
    return points


# ----------------------------------------------------------------------
# Experiment 3: watchdog quarantine + healthy-tenant isolation
# ----------------------------------------------------------------------


@dataclass
class QuarantineRound:
    round: int
    health: Dict[str, str]
    records: Dict[str, int]
    watchdog_trips: int
    skipped: bool
    healthy_identical: Optional[bool]


@dataclass
class QuarantineChaosResult:
    faulty_tenant: str
    stall_rate: float
    deadline_us: float
    rounds: List[QuarantineRound] = field(default_factory=list)
    quarantines: int = 0
    readmissions: int = 0
    cancelled: int = 0
    healthy_always_identical: bool = True


def _record_key(record: InferenceRecord) -> Tuple:
    return (
        record.sequence_number,
        record.arrival_ns,
        record.start_ns,
        record.done_ns,
        record.score,
        record.anomalous,
    )


def run_quarantine_scenario(
    events: int,
    seed: int,
    kind: str = "lstm",
    stall_rate: float = 0.25,
    stall_us: float = 5_000.0,
    deadline_us: float = 500.0,
    frontend: str = "coresight",
) -> QuarantineChaosResult:
    from repro.eval.metrics import build_demo_manager, demo_events

    per_round = max(200, events // _QUARANTINE_ROUNDS)
    registry = MetricsRegistry()
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                FaultKind.MCM_STALL, rate=stall_rate, stall_us=stall_us
            ),
        ),
    )
    frontends = {
        f"tenant{index}": frontend
        for index in range(_QUARANTINE_TENANTS)
    }
    manager = build_demo_manager(
        _QUARANTINE_TENANTS,
        kind=kind,
        seed=seed,
        metrics=registry,
        fault_plans={_FAULTY_TENANT: plan},
        deadline_us=deadline_us,
        health_policy=HealthPolicy(
            probation_rounds=1, recover_rounds=1
        ),
        frontends=frontends,
    )
    reference = build_demo_manager(
        _QUARANTINE_TENANTS, kind=kind, seed=seed, frontends=frontends
    )
    names = [runtime.name for runtime in manager.tenants]
    result = QuarantineChaosResult(
        faulty_tenant=_FAULTY_TENANT,
        stall_rate=stall_rate,
        deadline_us=deadline_us,
    )
    for round_index in range(_QUARANTINE_ROUNDS):
        traces = {
            name: demo_events(
                kind,
                seed,
                per_round,
                run_label=f"chaos-{name}-r{round_index}",
            )
            for name in names
        }
        skips_before = int(
            registry.snapshot()["counters"].get(
                "socmgr.health.skipped_rounds", 0
            )
        )
        records = manager.run_events(traces)
        skips_after = int(
            registry.snapshot()["counters"].get(
                "socmgr.health.skipped_rounds", 0
            )
        )
        skipped = skips_after > skips_before
        healthy_identical: Optional[bool] = None
        if skipped:
            # The invariant under test: a quarantined neighbour is
            # indistinguishable from an absent one.  The reference
            # manager (fault-free) runs this round without the faulty
            # tenant's trace; healthy records must match exactly.
            ref_traces = dict(traces)
            ref_traces[_FAULTY_TENANT] = []
            ref_records = reference.run_events(ref_traces)
            healthy_identical = all(
                [_record_key(r) for r in records[name]]
                == [_record_key(r) for r in ref_records[name]]
                for name in names
                if name != _FAULTY_TENANT
            )
            result.healthy_always_identical &= healthy_identical
        faulty_index = manager.tenant(_FAULTY_TENANT).index
        result.rounds.append(
            QuarantineRound(
                round=round_index,
                health={
                    name: health.value
                    for name, health in manager.health().items()
                },
                records={
                    name: len(recs) for name, recs in records.items()
                },
                watchdog_trips=manager.arbiter.watchdog_trips[
                    faulty_index
                ],
                skipped=skipped,
                healthy_identical=healthy_identical,
            )
        )
    counters = registry.snapshot()["counters"]
    result.quarantines = int(
        counters.get("socmgr.health.quarantines", 0)
    )
    result.readmissions = int(
        counters.get("socmgr.health.readmissions", 0)
    )
    result.cancelled = int(
        counters.get("mcm.arbiter.watchdog.cancelled", 0)
    )
    return result


# ----------------------------------------------------------------------
# Experiment 4: connection-level faults at the ingestion front door
# ----------------------------------------------------------------------


@dataclass
class ConnectionChaosResult:
    """One deterministic run of the front-door connection sweep.

    Five tenants share one :class:`~repro.serve.IngestServer`; four of
    their clients are wired through seeded
    :class:`~repro.faults.connection.ConnectionFaultInjector` channels
    (slow-loris over raw CoreSight bytes, mid-frame disconnects over
    raw E-Trace bytes, corrupt frames, burst floods) while the fifth
    stays clean.  Round grouping is driven manually (``drain_once``
    per round, frozen server clock), so the healthy tenant's verdict
    flags can be compared exactly against a solo fault-free reference
    manager — the "no poisoning" invariant.
    """

    rounds: int
    recovery_rounds: int
    fault_rate: float
    tenants: Dict[str, str] = field(default_factory=dict)
    #: Client-side channel counts (what the injectors actually did).
    slow_frames: int = 0
    disconnects: int = 0
    corrupted_frames: int = 0
    flood_frames: int = 0
    #: Server-side accounting.
    server_counters: Dict[str, int] = field(default_factory=dict)
    breaker_states: Dict[str, str] = field(default_factory=dict)
    breaker_trips: int = 0
    #: Flood channel: responses seen by the client (ACK/SHED/ERR, one
    #: per *delivered* copy) vs logical frames it meant to send.
    flood_responses: int = 0
    flood_logical_frames: int = 0
    #: Clean tenant: every frame it sends must come back as an ACK.
    healthy_acks: int = 0
    healthy_frames: int = 0
    dataplane_crashes: int = 0
    healthy_round_flags: List[bool] = field(default_factory=list)
    healthy_always_identical: bool = True
    recovered_clean: bool = True


_CONN_TENANTS = 5
_CONN_HEALTHY = "tenant0"
_CONN_CHANNELS: Dict[str, FaultKind] = {
    "tenant1": FaultKind.CONN_SLOW_LORIS,
    "tenant2": FaultKind.CONN_DISCONNECT,
    "tenant3": FaultKind.CONN_CORRUPT,
    "tenant4": FaultKind.CONN_FLOOD,
}
#: Raw-byte-stream sessions (grammar decoded server-side); the rest
#: send pre-decoded event batches.
_CONN_RAW_MODES = {"tenant1": "coresight", "tenant2": "etrace"}


def run_connection_chaos(
    events: int,
    seed: int,
    kind: str = "lstm",
    rounds: int = 8,
    recovery_rounds: int = 2,
    fault_rate: float = 0.6,
) -> ConnectionChaosResult:
    """Drive the front door through seeded connection faults.

    Fully deterministic: the server clock is frozen (no staleness, no
    rate limiting, no opportunistic drains), rounds are drained
    manually, and every fault decision is a counter hash.
    """
    import asyncio

    from repro.eval.metrics import build_demo_manager, demo_events
    from repro.faults.connection import ConnectionFaultInjector
    from repro.faults.plan import FaultSpec
    from repro.errors import ServeError
    from repro.serve import (
        IngestServer,
        ServeConfig,
        SimulatedClient,
    )
    from repro.frontends import get_frontend

    per_round = max(100, events // (rounds + recovery_rounds) // 4)
    manager = build_demo_manager(_CONN_TENANTS, kind=kind, seed=seed)
    reference = build_demo_manager(1, kind=kind, seed=seed)
    # With the clock frozen the token bucket never refills, so the
    # burst is a whole-run event budget per tenant: sized to cover
    # every clean tenant's logical traffic with ~30% headroom, which
    # the flood channel's duplicated copies blow straight through —
    # that is what trips its breaker while neighbours stay CLOSED.
    burst = int(per_round * (rounds + recovery_rounds) * 1.3)
    server = IngestServer(
        manager,
        ServeConfig(
            max_queued_events=1 << 20,
            window_batches=256,
            rate_limit_eps=1.0,
            rate_burst_events=burst,
        ),
        clock_ns=lambda: 0,
    )
    names = [runtime.name for runtime in manager.tenants]
    injectors = {
        name: ConnectionFaultInjector(
            FaultPlan(
                seed=seed,
                specs=(FaultSpec(kindspec, rate=fault_rate),),
            ),
            client_index=index,
        )
        for index, (name, kindspec) in enumerate(
            _CONN_CHANNELS.items(), start=1
        )
    }
    result = ConnectionChaosResult(
        rounds=rounds,
        recovery_rounds=recovery_rounds,
        fault_rate=fault_rate,
        tenants={
            name: (
                "clean"
                if name == _CONN_HEALTHY
                else _CONN_CHANNELS[name].value
            )
            for name in names
        },
    )

    drivers = {
        name: get_frontend(frontend).create_driver()
        for name, frontend in _CONN_RAW_MODES.items()
    }
    for driver in drivers.values():
        driver.enable()

    #: Per-tenant response tallies, aggregated across reconnects.
    agg_acks = {name: 0 for name in names}
    agg_responses = {name: 0 for name in names}
    hellos = {name: 0 for name in names}

    async def scenario() -> None:
        clients: Dict[str, SimulatedClient] = {}

        def retire(name: str) -> None:
            client = clients.pop(name, None)
            if client is None:
                return
            agg_acks[name] += client.acks
            agg_responses[name] += (
                client.acks + client.sheds + client.errors
            )
            client.close()

        async def attach(name: str, faulty: bool) -> SimulatedClient:
            client = SimulatedClient.local_faulty(
                server, injectors.get(name) if faulty else None
            )
            await client.hello(
                name,
                mode="raw" if name in _CONN_RAW_MODES else "events",
                frontend=_CONN_RAW_MODES.get(name),
            )
            hellos[name] += 1
            return client

        async def send_round(name: str, round_index: int, faulty: bool):
            stream = demo_events(
                kind, seed, per_round,
                run_label=f"conn-{name}-r{round_index}",
            )
            try:
                if name not in clients:
                    clients[name] = await attach(name, faulty)
                client = clients[name]
                if name in _CONN_RAW_MODES:
                    chunk = drivers[name].trace_all(stream)
                    chunk += drivers[name].flush()
                    await client.send_raw(chunk)
                else:
                    await client.send_events(stream)
            except ServeError:
                # The injector hit this tenant's session itself —
                # mid-frame disconnect, or a corrupted HELLO the
                # server refused.  Drop the session; a fresh one
                # (fresh raw decoder) picks up next round.  The
                # injector object persists, so frame numbering — and
                # the seeded fates — stay aligned.
                retire(name)
            return stream

        total = rounds + recovery_rounds
        for round_index in range(total):
            recovery = round_index >= rounds
            if recovery:
                # Recovery rounds send clean traffic: drop any session
                # still wired through an injector so a fault-free
                # client reattaches.
                for name in list(clients):
                    if clients[name].injector is not None:
                        retire(name)
            healthy_stream = None
            for name in names:
                faulty = name != _CONN_HEALTHY and not recovery
                stream = await send_round(name, round_index, faulty)
                if name == _CONN_HEALTHY:
                    healthy_stream = stream
            try:
                server.drain_once()
            except Exception:
                result.dataplane_crashes += 1
                break
            # Healthy-isolation invariant: tenant0's flags this round
            # must match a solo fault-free run of the same events.
            ref_records = reference.run_events(
                {_CONN_HEALTHY: healthy_stream}
            )
            live = _flag_map(
                server.last_records.get(_CONN_HEALTHY, [])
            )
            ref = _flag_map(ref_records[_CONN_HEALTHY])
            identical = live == ref
            result.healthy_round_flags.append(identical)
            result.healthy_always_identical &= identical
            if recovery and not identical:
                result.recovered_clean = False

        for name in list(clients):
            try:
                await clients[name].bye()
            except Exception:
                pass
            retire(name)
        try:
            await server.stop()
        except Exception:
            result.dataplane_crashes += 1

    asyncio.run(scenario())

    result.slow_frames = injectors["tenant1"].slow
    result.disconnects = injectors["tenant2"].disconnects
    result.corrupted_frames = injectors["tenant3"].corrupted
    result.flood_frames = injectors["tenant4"].floods
    total = rounds + recovery_rounds
    result.healthy_frames = total
    result.healthy_acks = agg_acks[_CONN_HEALTHY] - hellos[_CONN_HEALTHY]
    result.flood_logical_frames = total
    result.flood_responses = (
        agg_responses["tenant4"] - hellos["tenant4"]
    )
    result.server_counters = {
        name: count for name, count in server.counts.items() if count
    }
    result.breaker_states = {
        name: breaker.state.value
        for name, breaker in server.breakers.items()
    }
    result.breaker_trips = server.counts["serve.breaker.trips"]
    result.dataplane_crashes += len(server.drain_errors)
    return result


# ----------------------------------------------------------------------
# Driver + reporting
# ----------------------------------------------------------------------


@dataclass
class ChaosResult:
    rates: Tuple[float, ...]
    events: int
    seed: int
    decoder: List[DecoderChaosPoint]
    dataplane: List[DataplaneChaosPoint]
    quarantine: QuarantineChaosResult
    decoder_etrace: List[EtraceDecoderChaosPoint] = field(
        default_factory=list
    )
    quarantine_etrace: Optional[QuarantineChaosResult] = None
    connection: Optional[ConnectionChaosResult] = None
    fleet: Optional["FleetChaosResult"] = None


def run_chaos(
    rates: Sequence[float] = DEFAULT_RATES,
    events: int = 6_000,
    seed: int = 0,
    kind: str = "lstm",
) -> ChaosResult:
    """Run all the chaos experiments over the rate sweep.

    The decoder sweep and the quarantine scenario each run twice —
    once per trace grammar — so the recovery and isolation invariants
    are demonstrated for CoreSight and E-Trace side by side.  The
    fleet experiment (:mod:`repro.eval.fleet`) kills a worker process
    with a real ``kill -9`` mid-round and proves the supervisor's
    recovery lost and perturbed nothing.
    """
    from repro.eval.fleet import run_fleet_chaos

    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    return ChaosResult(
        rates=tuple(rates),
        events=events,
        seed=seed,
        decoder=run_decoder_sweep(rates, events, seed),
        dataplane=run_dataplane_sweep(rates, events, seed, kind=kind),
        quarantine=run_quarantine_scenario(events, seed, kind=kind),
        decoder_etrace=run_etrace_decoder_sweep(rates, events, seed),
        quarantine_etrace=run_quarantine_scenario(
            events, seed, kind=kind, frontend="etrace"
        ),
        connection=run_connection_chaos(events, seed, kind=kind),
        fleet=run_fleet_chaos(events, seed, kind=kind),
    )


def format_chaos(result: ChaosResult) -> str:
    decoder = format_table(
        ["rate", "flip", "drop", "desync", "branches", "recovered",
         "frame rs", "dec rs", "trunc"],
        [
            (
                f"{p.rate:g}",
                p.bytes_flipped,
                p.bytes_dropped,
                p.desyncs,
                f"{p.recovered_branches}/{p.clean_branches}",
                f"{p.recovered_fraction:.3f}",
                p.frame_resyncs,
                p.decoder_resyncs,
                p.truncated,
            )
            for p in result.decoder
        ],
        title="chaos: decoder recovery under byte corruption (coresight)",
    )
    decoder_etrace = format_table(
        ["rate", "flip", "drop", "desync", "branches", "recovered",
         "frame rs", "dec rs", "trunc", "torn rec", "torn trunc"],
        [
            (
                f"{p.rate:g}",
                p.bytes_flipped,
                p.bytes_dropped,
                p.desyncs,
                f"{p.recovered_branches}/{p.clean_branches}",
                f"{p.recovered_fraction:.3f}",
                p.frame_resyncs,
                p.decoder_resyncs,
                p.truncated,
                p.torn_recovered_branches,
                p.torn_truncated,
            )
            for p in result.decoder_etrace
        ],
        title="chaos: decoder recovery under byte corruption (etrace)",
    )
    dataplane = format_table(
        ["rate", "inferences", "baseline", "matched", "agreement",
         "ev drop", "ev dup", "ev corr", "vec drop"],
        [
            (
                f"{p.rate:g}",
                p.inferences,
                p.baseline_inferences,
                p.matched,
                f"{p.flag_agreement:.3f}",
                p.events_dropped,
                p.events_duplicated,
                p.events_corrupted,
                p.vectors_dropped,
            )
            for p in result.dataplane
        ],
        title="chaos: detection degradation under dataplane faults",
    )
    sections = [decoder, decoder_etrace, dataplane]
    sections.append(
        _format_quarantine(result.quarantine, "coresight")
    )
    if result.quarantine_etrace is not None:
        sections.append(
            _format_quarantine(result.quarantine_etrace, "etrace")
        )
    if result.connection is not None:
        sections.append(_format_connection(result.connection))
    if result.fleet is not None:
        from repro.eval.fleet import format_fleet_chaos

        sections.append(format_fleet_chaos(result.fleet))
    return "\n\n".join(sections)


def _format_connection(c: ConnectionChaosResult) -> str:
    counters = c.server_counters
    rows = [
        ("slow-loris frames (tenant1, raw coresight)", c.slow_frames),
        ("mid-frame disconnects (tenant2, raw etrace)", c.disconnects),
        ("corrupted frames (tenant3)", c.corrupted_frames),
        ("burst floods (tenant4)", c.flood_frames),
        ("server: midframe disconnects seen",
         counters.get("serve.clients.disconnected_midframe", 0)),
        ("server: decode errors (CRC)",
         counters.get("serve.decode.errors", 0)),
        ("server: frames shed (rate_limited)",
         counters.get("serve.shed.rate_limited", 0)),
        ("server: frames shed (sampled)",
         counters.get("serve.shed.sampled", 0)),
        ("server: breaker trips", c.breaker_trips),
        ("flood responses / logical frames",
         f"{c.flood_responses}/{c.flood_logical_frames}"),
        ("healthy acks / frames",
         f"{c.healthy_acks}/{c.healthy_frames}"),
        ("dataplane crashes", c.dataplane_crashes),
    ]
    return format_table(
        ["channel / invariant", "count"],
        rows,
        title=(
            f"chaos: connection faults at the front door "
            f"(rate {c.fault_rate:g}, {c.rounds}+{c.recovery_rounds} "
            f"rounds; healthy identical: "
            f"{'yes' if c.healthy_always_identical else 'NO'}, "
            f"recovered clean: "
            f"{'yes' if c.recovered_clean else 'NO'})"
        ),
    )


def _format_quarantine(
    q: QuarantineChaosResult, frontend: str
) -> str:
    return format_table(
        ["round", "health", "records", "trips", "skipped", "identical"],
        [
            (
                r.round,
                " ".join(
                    f"{name}={state}" for name, state in r.health.items()
                ),
                " ".join(
                    f"{name}={count}"
                    for name, count in r.records.items()
                ),
                r.watchdog_trips,
                "yes" if r.skipped else "no",
                "-" if r.healthy_identical is None
                else ("yes" if r.healthy_identical else "NO"),
            )
            for r in q.rounds
        ],
        title=(
            f"chaos: quarantine of {q.faulty_tenant} ({frontend}) "
            f"(stall rate {q.stall_rate:g}, deadline {q.deadline_us:g} us; "
            f"{q.quarantines} quarantines, {q.readmissions} readmissions, "
            f"{q.cancelled} watchdog cancels, healthy identical: "
            f"{'yes' if q.healthy_always_identical else 'NO'})"
        ),
    )


def chaos_failures(result: ChaosResult) -> List[str]:
    """Violated sweep invariants, as human-readable strings.

    An empty list means the sweep passed.  The invariants are the ones
    the experiments exist to demonstrate: rate-0 points are no-op
    proofs (perfect recovery, byte-identical detection, zero injected
    faults), and quarantine must both fire and leave healthy tenants'
    records untouched.  ``python -m repro.eval chaos`` exits non-zero
    when any of these fail.
    """
    failures: List[str] = []
    for point in result.decoder:
        if point.rate == 0.0 and (
            point.recovered_branches != point.clean_branches
        ):
            failures.append(
                "decoder: rate-0 run recovered "
                f"{point.recovered_branches}/{point.clean_branches} "
                "branches (must be all)"
            )
    for point in result.decoder_etrace:
        if point.rate == 0.0 and (
            point.recovered_branches != point.clean_branches
        ):
            failures.append(
                "decoder[etrace]: rate-0 run recovered "
                f"{point.recovered_branches}/{point.clean_branches} "
                "branches (must be all)"
            )
        if point.torn_recovered_branches > point.recovered_branches:
            failures.append(
                "decoder[etrace]: torn-tail decode recovered more "
                "branches than the full stream"
            )
    for point in result.dataplane:
        if point.rate != 0.0:
            continue
        if point.inferences != point.baseline_inferences:
            failures.append(
                "dataplane: rate-0 run produced "
                f"{point.inferences} inferences vs baseline "
                f"{point.baseline_inferences}"
            )
        if point.flag_agreement != 1.0:
            failures.append(
                "dataplane: rate-0 run disagreed with baseline flags "
                f"(agreement {point.flag_agreement:.3f})"
            )
        injected = (
            point.events_dropped
            + point.events_duplicated
            + point.events_corrupted
            + point.vectors_dropped
        )
        if injected:
            failures.append(
                f"dataplane: rate-0 run injected {injected} faults"
            )
    scenarios = [("quarantine", result.quarantine)]
    if result.quarantine_etrace is not None:
        scenarios.append(
            ("quarantine[etrace]", result.quarantine_etrace)
        )
    for label, q in scenarios:
        if not q.healthy_always_identical:
            failures.append(
                f"{label}: healthy tenants' records diverged from the "
                "fault-free reference"
            )
        if q.quarantines < 1:
            failures.append(
                f"{label}: the faulty tenant was never quarantined"
            )
        if q.readmissions < 1:
            failures.append(
                f"{label}: the quarantined tenant was never re-admitted"
            )
    if result.connection is not None:
        failures.extend(_connection_failures(result.connection))
    if result.fleet is not None:
        from repro.eval.fleet import fleet_chaos_failures

        failures.extend(fleet_chaos_failures(result.fleet))
    return failures


def _connection_failures(c: ConnectionChaosResult) -> List[str]:
    failures: List[str] = []
    if not c.healthy_always_identical:
        failures.append(
            "connection: the clean tenant's verdict flags diverged "
            "from the fault-free reference"
        )
    if not c.recovered_clean:
        failures.append(
            "connection: a recovery round (clean traffic everywhere) "
            "still diverged from the reference"
        )
    if c.dataplane_crashes:
        failures.append(
            f"connection: {c.dataplane_crashes} dataplane crash(es) "
            "during drain"
        )
    for label, count in (
        ("slow-loris", c.slow_frames),
        ("disconnect", c.disconnects),
        ("corrupt", c.corrupted_frames),
        ("flood", c.flood_frames),
    ):
        if count < 1:
            failures.append(
                f"connection: the {label} channel never fired"
            )
    counters = c.server_counters
    if counters.get("serve.clients.disconnected_midframe", 0) < 1:
        failures.append(
            "connection: the server never observed a mid-frame "
            "disconnect"
        )
    if counters.get("serve.decode.errors", 0) < 1:
        failures.append(
            "connection: corrupted frames never reached the server's "
            "CRC check"
        )
    if c.breaker_trips < 1:
        failures.append(
            "connection: no circuit breaker ever tripped under the "
            "flood"
        )
    if c.healthy_acks != c.healthy_frames:
        failures.append(
            "connection: the clean tenant saw "
            f"{c.healthy_acks} acks for {c.healthy_frames} frames "
            "(must be acked 1:1 — overload collateral)"
        )
    return failures


def chaos_to_json(result: ChaosResult) -> Dict[str, object]:
    """JSON document mirroring :func:`format_chaos`."""
    return {
        "rates": list(result.rates),
        "events": result.events,
        "seed": result.seed,
        "decoder": [asdict(p) for p in result.decoder],
        "decoder_etrace": [asdict(p) for p in result.decoder_etrace],
        "dataplane": [asdict(p) for p in result.dataplane],
        "quarantine": asdict(result.quarantine),
        "quarantine_etrace": (
            asdict(result.quarantine_etrace)
            if result.quarantine_etrace is not None
            else None
        ),
        "connection": (
            asdict(result.connection)
            if result.connection is not None
            else None
        ),
        "fleet": (
            asdict(result.fleet) if result.fleet is not None else None
        ),
        "failures": chaos_failures(result),
    }
