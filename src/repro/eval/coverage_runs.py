"""Representative model runs for the trimming flow.

The paper merges the coverage of every deployed model (Section III:
"simultaneous trimming for multiple applications by merging the
minimum required logics of several different ML models").  These run
functions exercise each deployment end-to-end on a given GPU and
return its numeric outputs, so the same callables drive both coverage
collection (step 1) and trimmed-vs-original verification (step 4).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.eval.prep import get_bundle
from repro.miaow.gpu import Gpu

#: Benchmark whose trained models stand in for "the deployed models"
#: during trimming (any benchmark covers the same opcodes — kernel
#: structure, not data, determines coverage).
COVERAGE_BENCHMARK = "403.gcc"

#: Inferences per run — enough to take every kernel branch direction.
INFERENCES_PER_RUN = 4


def elm_run(seed: int = 0) -> Tuple[str, Callable[[Gpu], np.ndarray]]:
    bundle = get_bundle(COVERAGE_BENCHMARK, "elm", seed)

    def run(gpu: Gpu) -> np.ndarray:
        deployment = bundle.make_deployment()
        deployment.load(gpu)
        scores = []
        for index in range(INFERENCES_PER_RUN):
            window = bundle.normal_ids[
                index * bundle.window:(index + 1) * bundle.window
            ]
            scores.append(deployment.infer(window).score)
        return np.array(scores, dtype=np.float64)

    return ("elm", run)


def lstm_run(seed: int = 0) -> Tuple[str, Callable[[Gpu], np.ndarray]]:
    bundle = get_bundle(COVERAGE_BENCHMARK, "lstm", seed)

    def run(gpu: Gpu) -> np.ndarray:
        deployment = bundle.make_deployment()
        deployment.load(gpu)
        surprisals = []
        for branch_id in bundle.normal_ids[:INFERENCES_PER_RUN]:
            surprisals.append(deployment.infer(int(branch_id)).surprisal)
        return np.array(surprisals, dtype=np.float64)

    return ("lstm", run)


def deployed_model_runs(seed: int = 0) -> List[Tuple[str, Callable]]:
    """Both deployed models — the merged-coverage input (ours)."""
    return [elm_run(seed), lstm_run(seed)]


def single_model_runs(seed: int = 0) -> List[Tuple[str, Callable]]:
    """The LSTM alone — the MIAOW2.0 comparison deploys one model."""
    return [lstm_run(seed)]
