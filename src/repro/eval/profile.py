"""``python -m repro.eval profile`` — cProfile hotspot report.

Profiles the exact-mode MCM hot path (every kernel really dispatched
on the GPU simulator, compiled fast path enabled) plus the demo SoC
pipeline, and reports the top functions by cumulative time.  This is
the tool that motivated the trace-compiled executors: before the fast
path, the per-instruction interpreter dominated every profile; after
it, the remaining cost concentrates in the generated kernel runners
and numpy itself.

Output is a per-kind table of hotspots (text) or one JSON document
with ``--json``; ``--events`` scales how many inferences are profiled.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.report import format_table
from repro.mcm.driver import MlMiaowDriver
from repro.miaow.gpu import Gpu
from repro.ml.elm import ExtremeLearningMachine
from repro.ml.features import PatternDictionary
from repro.ml.kernels import DeployedElm, DeployedLstm
from repro.ml.lstm import LstmModel

PROFILE_KINDS = ("elm", "lstm")
DEFAULT_INFERENCES = 200
DEFAULT_TOP = 20

_WINDOW = 16
_NUM_CUS = 5


@dataclass
class Hotspot:
    """One row of the profile: a function and its aggregate cost."""

    function: str
    module: str
    calls: int
    tottime_s: float
    cumtime_s: float


@dataclass
class ProfileResult:
    kind: str
    inferences: int
    wall_s: float
    hotspots: List[Hotspot]
    fastpath: Dict[str, int]


def _make_runner(kind: str, seed: int):
    """Build an exact-mode driver and a zero-arg inference thunk."""
    rng = np.random.default_rng(seed)
    if kind == "elm":
        windows = rng.integers(0, 12, size=(200, _WINDOW))
        dictionary = PatternDictionary(n=2, capacity=255, unseen_gain=2)
        dictionary.fit(windows)
        model = ExtremeLearningMachine(
            input_dim=dictionary.size, seed=seed
        ).fit(dictionary.features(windows))
        driver = MlMiaowDriver(
            DeployedElm(model, dictionary, _WINDOW),
            Gpu(num_cus=_NUM_CUS),
            execute_on_gpu=True,
        )
        indices = dictionary.indices(windows[0])
        return driver, lambda: driver.run_inference(indices)
    if kind == "lstm":
        model = LstmModel(vocabulary_size=64, seed=seed)
        driver = MlMiaowDriver(
            DeployedLstm(model), Gpu(num_cus=_NUM_CUS),
            execute_on_gpu=True,
        )
        return driver, lambda: driver.run_inference(3)
    raise ValueError(f"unknown profile kind {kind!r}")


def _top_hotspots(stats: pstats.Stats, top: int) -> List[Hotspot]:
    rows = []
    for (filename, line, name), entry in stats.stats.items():  # type: ignore[attr-defined]
        calls, _, tottime, cumtime, _ = entry
        if filename == "~":  # builtins
            module = "<builtin>"
            function = name
        else:
            module = filename.rsplit("/", 1)[-1]
            function = f"{name}:{line}"
        rows.append(
            Hotspot(
                function=function,
                module=module,
                calls=int(calls),
                tottime_s=float(tottime),
                cumtime_s=float(cumtime),
            )
        )
    rows.sort(key=lambda h: h.tottime_s, reverse=True)
    return rows[:top]


def run_profile(
    kinds: Sequence[str] = PROFILE_KINDS,
    inferences: int = DEFAULT_INFERENCES,
    seed: int = 0,
    top: int = DEFAULT_TOP,
) -> List[ProfileResult]:
    """Profile ``inferences`` exact-mode inferences per model kind."""
    results = []
    for kind in kinds:
        driver, run_once = _make_runner(kind, seed)
        run_once()  # warm the compile cache; profile steady state
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(inferences):
            run_once()
        profiler.disable()
        stats = pstats.Stats(profiler)
        results.append(
            ProfileResult(
                kind=kind,
                inferences=inferences,
                wall_s=float(stats.total_tt),  # type: ignore[attr-defined]
                hotspots=_top_hotspots(stats, top),
                fastpath=driver.fastpath_stats(),
            )
        )
    return results


def format_profile(results: Sequence[ProfileResult]) -> str:
    sections = []
    for result in results:
        per_inference_us = result.wall_s / result.inferences * 1e6
        rows = [
            (
                spot.module,
                spot.function,
                spot.calls,
                f"{spot.tottime_s * 1e3:.1f}",
                f"{spot.cumtime_s * 1e3:.1f}",
            )
            for spot in result.hotspots
        ]
        sections.append(
            format_table(
                ["module", "function", "calls", "self ms", "cum ms"],
                rows,
                title=(
                    f"{result.kind}: top {len(rows)} hotspots "
                    f"({result.inferences} exact-mode inferences, "
                    f"{result.wall_s:.2f}s total, "
                    f"{per_inference_us:.0f}us/inference)"
                ),
            )
        )
    return "\n\n".join(sections)


def profile_to_json(
    results: Sequence[ProfileResult],
) -> Dict[str, object]:
    return {
        result.kind: {
            "inferences": result.inferences,
            "wall_s": round(result.wall_s, 4),
            "fastpath": result.fastpath,
            "hotspots": [
                {
                    "module": spot.module,
                    "function": spot.function,
                    "calls": spot.calls,
                    "tottime_s": round(spot.tottime_s, 6),
                    "cumtime_s": round(spot.cumtime_s, 6),
                }
                for spot in result.hotspots
            ],
        }
        for result in results
    }
