"""Fleet experiments for the eval harness (docs/FLEET.md).

Two entry points, both deterministic:

- :func:`run_fleet_chaos` — the fleet-chaos experiment wired into
  ``python -m repro.eval chaos``: a worker shard is killed with a real
  ``kill -9`` mid-round (deterministically, at a named WAL crash site
  via :class:`~repro.faults.crashpoints.SigkillInjector`), the
  supervisor restarts it, the fresh worker recovers from its journal,
  and the coordinator re-feeds the interrupted round.  The invariants:
  surviving tenants' verdict flags are bit-identical to a solo
  fault-free reference, and the killed shard's tenants resume with
  **zero lost admitted rounds**.

- :func:`run_fleet_metrics` — the fleet section of
  ``python -m repro.eval metrics``: a short fleet run reporting the
  merged ``fleet.*`` counter namespace, per-shard liveness (shard id,
  pid, restarts, tenants hosted), and the counter conservation law
  ``fleet.rounds.admitted == sum(per-shard fresh rounds) +
  fleet.rounds.replayed`` — violated conservation is a non-zero exit.
"""

from __future__ import annotations

import tempfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.eval.report import format_table

#: Fleet-experiment shape: 4 demo tenants over 2 shards.
FLEET_TENANTS = 4
FLEET_SHARDS = 2

#: The WAL site the chaos kill is armed at: the round's inputs are
#: fully journaled but the ROUND_COMMIT has not been written, so the
#: recovered worker must discard the tail and accept a re-feed.
KILL_SITE = "wal.chunk.done"


def _tenant_names(count: int) -> List[str]:
    return [f"tenant{index}" for index in range(count)]


def _flags(records) -> List[tuple]:
    """Verdict flags of one tenant-round, in record order: the
    bit-level unit the chaos invariants compare (anomalous flag and
    exact float score).  Sequence numbers and timestamps are
    engine-local (a shard's private engine numbers its dispatches
    differently than the solo reference's shared engine), so they are
    deliberately not part of the verdict."""
    return [(bool(r.anomalous), float(r.score)) for r in records]


# ----------------------------------------------------------------------
# Fleet chaos: kill -9 a worker mid-round
# ----------------------------------------------------------------------


@dataclass
class FleetChaosResult:
    shards: int
    tenants: int
    rounds: int
    kill_round: int
    kill_site: str
    killed_shard: int
    killed_tenants: List[str] = field(default_factory=list)
    surviving_tenants: List[str] = field(default_factory=list)
    restarts: int = 0
    workers_spawned: int = 0
    heartbeat_misses: int = 0
    rounds_refed: int = 0
    rounds_reconciled: int = 0
    rounds_replayed: int = 0
    rounds_admitted: int = 0
    shard_rounds: int = 0
    conservation_ok: bool = True
    #: Per-tenant rounds whose verdict flags diverged from (or never
    #: reached) the solo fault-free reference.  All-zero == no loss.
    lost_rounds: Dict[str, int] = field(default_factory=dict)
    survivors_identical: bool = True
    killed_resumed_identical: bool = True


def run_fleet_chaos(
    events: int = 6_000,
    seed: int = 0,
    kind: str = "lstm",
    shards: int = FLEET_SHARDS,
    rounds: int = 3,
    kill_round: int = 1,
    killed_shard: int = 0,
    kill_site: str = KILL_SITE,
) -> FleetChaosResult:
    """Kill a worker mid-round; prove nothing was lost or perturbed.

    Fully deterministic: the kill is armed at a WAL crash site (same
    site index dies on every run), rounds are fixed-seed CFG walks,
    and every comparison is exact — no timers, no races.
    """
    from repro.eval.metrics import build_demo_manager, demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = _tenant_names(FLEET_TENANTS)
    per_round = max(200, events // rounds // FLEET_TENANTS)

    def round_traces(round_index: int) -> Dict[str, tuple]:
        return {
            name: demo_events(
                kind,
                seed,
                per_round,
                run_label=f"fleet-chaos-{name}-r{round_index}",
            )
            for name in names
        }

    # Solo fault-free reference: one manager, all tenants, no fleet,
    # no kill.  Verdict flags (sequence, anomalous, score) are
    # engine-topology independent, so this is the reference the
    # surviving AND recovered tenants must match bit-for-bit.
    reference = build_demo_manager(FLEET_TENANTS, kind=kind, seed=seed)
    ref_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    for round_index in range(rounds):
        ref_records = reference.run_events(round_traces(round_index))
        for name in names:
            ref_flags[name].append(_flags(ref_records.get(name, [])))

    journal_root = tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    live_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    with FleetCoordinator(
        demo_factory,
        names,
        journal_root,
        FleetConfig(num_shards=shards),
    ) as fleet:
        killed = list(fleet.shards[killed_shard].tenants)
        survivors = [n for n in names if n not in killed]
        for round_index in range(rounds):
            if round_index == kill_round:
                fleet.arm_kill(killed_shard, kill_site, 0)
            records = fleet.run_events(round_traces(round_index))
            for name in names:
                live_flags[name].append(_flags(records.get(name, [])))
        counters = fleet.counters()

    result = FleetChaosResult(
        shards=shards,
        tenants=FLEET_TENANTS,
        rounds=rounds,
        kill_round=kill_round,
        kill_site=kill_site,
        killed_shard=killed_shard,
        killed_tenants=killed,
        surviving_tenants=survivors,
        restarts=int(counters.get("fleet.restarts", 0)),
        workers_spawned=int(counters.get("fleet.workers.spawned", 0)),
        heartbeat_misses=int(
            counters.get("fleet.heartbeat.misses", 0)
        ),
        rounds_refed=int(counters.get("fleet.rounds.refed", 0)),
        rounds_reconciled=int(
            counters.get("fleet.rounds.reconciled", 0)
        ),
        rounds_replayed=int(counters.get("fleet.rounds.replayed", 0)),
        rounds_admitted=int(counters.get("fleet.rounds.admitted", 0)),
        shard_rounds=sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        ),
    )
    result.conservation_ok = (
        result.rounds_admitted
        == result.shard_rounds + result.rounds_replayed
    )
    for name in names:
        lost = sum(
            1
            for round_index in range(rounds)
            if live_flags[name][round_index]
            != ref_flags[name][round_index]
        )
        result.lost_rounds[name] = lost
        if lost:
            if name in survivors:
                result.survivors_identical = False
            else:
                result.killed_resumed_identical = False
    return result


def format_fleet_chaos(result: FleetChaosResult) -> str:
    rows = [
        ("workers spawned", result.workers_spawned),
        ("restarts", result.restarts),
        ("heartbeat misses", result.heartbeat_misses),
        ("rounds re-fed", result.rounds_refed),
        ("rounds reconciled", result.rounds_reconciled),
        ("rounds replayed (WAL)", result.rounds_replayed),
        ("rounds admitted", result.rounds_admitted),
        ("per-shard fresh rounds", result.shard_rounds),
        (
            "conservation (admitted == fresh + replayed)",
            "yes" if result.conservation_ok else "NO",
        ),
        (
            "lost rounds",
            " ".join(
                f"{name}={count}"
                for name, count in result.lost_rounds.items()
            ),
        ),
    ]
    return format_table(
        ["supervision event / invariant", "value"],
        rows,
        title=(
            f"chaos: fleet kill -9 of shard {result.killed_shard} at "
            f"{result.kill_site!r} in round {result.kill_round} "
            f"({result.shards} shards, {result.tenants} tenants; "
            f"survivors identical: "
            f"{'yes' if result.survivors_identical else 'NO'}, "
            f"killed resumed identical: "
            f"{'yes' if result.killed_resumed_identical else 'NO'})"
        ),
    )


def fleet_chaos_failures(result: FleetChaosResult) -> List[str]:
    failures: List[str] = []
    if result.restarts < 1:
        failures.append(
            "fleet: the killed worker was never restarted"
        )
    if not result.survivors_identical:
        failures.append(
            "fleet: surviving tenants' verdict flags diverged from "
            "the solo fault-free reference"
        )
    if not result.killed_resumed_identical:
        failures.append(
            "fleet: the killed shard's tenants lost admitted rounds "
            f"({result.lost_rounds})"
        )
    if not result.conservation_ok:
        failures.append(
            "fleet: counter conservation violated — "
            f"admitted {result.rounds_admitted} != fresh "
            f"{result.shard_rounds} + replayed {result.rounds_replayed}"
        )
    if result.rounds_refed + result.rounds_reconciled < 1:
        failures.append(
            "fleet: the interrupted round was neither re-fed nor "
            "reconciled"
        )
    return failures


# ----------------------------------------------------------------------
# Fleet metrics: merged counters + per-shard liveness
# ----------------------------------------------------------------------


@dataclass
class FleetMetricsResult:
    shards: int
    tenants: int
    rounds: int
    events: int
    verdicts: int
    counters: Dict[str, int] = field(default_factory=dict)
    liveness: List[Dict[str, object]] = field(default_factory=list)
    health: Dict[str, str] = field(default_factory=dict)
    rounds_admitted: int = 0
    shard_rounds: int = 0
    rounds_replayed: int = 0
    conservation_ok: bool = True


def run_fleet_metrics(
    events: int = 4_000,
    seed: int = 0,
    kind: str = "lstm",
    shards: int = FLEET_SHARDS,
    rounds: int = 2,
) -> FleetMetricsResult:
    """A short fault-free fleet run for the metrics report."""
    from repro.eval.metrics import demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = _tenant_names(FLEET_TENANTS)
    per_round = max(200, events // rounds // FLEET_TENANTS)
    journal_root = tempfile.mkdtemp(prefix="repro-fleet-metrics-")
    verdicts = 0
    with FleetCoordinator(
        demo_factory,
        names,
        journal_root,
        FleetConfig(num_shards=shards),
    ) as fleet:
        for round_index in range(rounds):
            records = fleet.run_events(
                {
                    name: demo_events(
                        kind,
                        seed,
                        per_round,
                        run_label=f"fleet-metrics-{name}-r{round_index}",
                    )
                    for name in names
                }
            )
            verdicts += sum(len(r) for r in records.values())
        counters = fleet.counters()
        liveness = fleet.liveness()
        health = {
            name: state.value for name, state in fleet.health().items()
        }
    result = FleetMetricsResult(
        shards=shards,
        tenants=FLEET_TENANTS,
        rounds=rounds,
        events=per_round * FLEET_TENANTS * rounds,
        verdicts=verdicts,
        counters={name: int(v) for name, v in sorted(counters.items())},
        liveness=liveness,
        health=health,
        rounds_admitted=int(counters.get("fleet.rounds.admitted", 0)),
        shard_rounds=sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        ),
        rounds_replayed=int(
            counters.get("fleet.rounds.replayed", 0)
        ),
    )
    result.conservation_ok = (
        result.rounds_admitted
        == result.shard_rounds + result.rounds_replayed
    )
    return result


def format_fleet_metrics(result: FleetMetricsResult) -> str:
    liveness = format_table(
        ["shard", "pid", "alive", "restarts", "tenants hosted"],
        [
            (
                row["shard"],
                row["pid"],
                "yes" if row["alive"] else "NO",
                row["restarts"],
                " ".join(row["tenants"]),
            )
            for row in result.liveness
        ],
        title=(
            f"fleet: per-shard liveness ({result.shards} shards, "
            f"{result.tenants} tenants, {result.rounds} rounds, "
            f"{result.events} events, {result.verdicts} verdicts; "
            "conservation admitted == fresh + replayed: "
            f"{result.rounds_admitted} == {result.shard_rounds} + "
            f"{result.rounds_replayed}: "
            f"{'yes' if result.conservation_ok else 'NO'})"
        ),
    )
    fleet_rows = [
        (name, value)
        for name, value in result.counters.items()
        if name.startswith("fleet.")
    ]
    merged = format_table(
        ["counter", "count"],
        fleet_rows,
        title="fleet: merged fleet.* counters (coordinator + workers)",
    )
    return "\n\n".join([liveness, merged])


def fleet_metrics_failures(result: FleetMetricsResult) -> List[str]:
    failures: List[str] = []
    if not result.conservation_ok:
        failures.append(
            "fleet: counter conservation violated — admitted "
            f"{result.rounds_admitted} != fresh {result.shard_rounds} "
            f"+ replayed {result.rounds_replayed}"
        )
    dead = [row for row in result.liveness if not row["alive"]]
    if dead:
        failures.append(
            f"fleet: {len(dead)} shard(s) not alive at report time"
        )
    return failures


def fleet_metrics_to_json(
    result: FleetMetricsResult,
) -> Dict[str, object]:
    document = asdict(result)
    document["failures"] = fleet_metrics_failures(result)
    return document
