"""Fleet experiments for the eval harness (docs/FLEET.md).

Two entry points, both deterministic:

- :func:`run_fleet_chaos` — the fleet-chaos experiment wired into
  ``python -m repro.eval chaos``: a worker shard is killed with a real
  ``kill -9`` mid-round (deterministically, at a named WAL crash site
  via :class:`~repro.faults.crashpoints.SigkillInjector`), the
  supervisor restarts it, the fresh worker recovers from its journal,
  and the coordinator re-feeds the interrupted round.  The invariants:
  surviving tenants' verdict flags are bit-identical to a solo
  fault-free reference, and the killed shard's tenants resume with
  **zero lost admitted rounds**.

- :func:`run_fleet_metrics` — the fleet section of
  ``python -m repro.eval metrics``: a short fleet run reporting the
  merged ``fleet.*`` counter namespace, per-shard liveness (shard id,
  pid, restarts, tenants hosted), and the counter conservation law
  ``fleet.rounds.admitted == sum(per-shard fresh rounds) +
  fleet.rounds.replayed`` — violated conservation is a non-zero exit.
"""

from __future__ import annotations

import tempfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.eval.report import format_table

#: Fleet-experiment shape: 4 demo tenants over 2 shards.
FLEET_TENANTS = 4
FLEET_SHARDS = 2

#: The WAL site the chaos kill is armed at: the round's inputs are
#: fully journaled but the ROUND_COMMIT has not been written, so the
#: recovered worker must discard the tail and accept a re-feed.
KILL_SITE = "wal.chunk.done"


def _tenant_names(count: int) -> List[str]:
    return [f"tenant{index}" for index in range(count)]


def _flags(records) -> List[tuple]:
    """Verdict flags of one tenant-round, in record order: the
    bit-level unit the chaos invariants compare (anomalous flag and
    exact float score).  Sequence numbers and timestamps are
    engine-local (a shard's private engine numbers its dispatches
    differently than the solo reference's shared engine), so they are
    deliberately not part of the verdict."""
    return [(bool(r.anomalous), float(r.score)) for r in records]


# ----------------------------------------------------------------------
# Fleet chaos: kill -9 a worker mid-round
# ----------------------------------------------------------------------


@dataclass
class FleetChaosResult:
    shards: int
    tenants: int
    rounds: int
    kill_round: int
    kill_site: str
    killed_shard: int
    killed_tenants: List[str] = field(default_factory=list)
    surviving_tenants: List[str] = field(default_factory=list)
    restarts: int = 0
    workers_spawned: int = 0
    heartbeat_misses: int = 0
    rounds_refed: int = 0
    rounds_reconciled: int = 0
    rounds_replayed: int = 0
    rounds_admitted: int = 0
    shard_rounds: int = 0
    conservation_ok: bool = True
    #: Per-tenant rounds whose verdict flags diverged from (or never
    #: reached) the solo fault-free reference.  All-zero == no loss.
    lost_rounds: Dict[str, int] = field(default_factory=dict)
    survivors_identical: bool = True
    killed_resumed_identical: bool = True
    #: Transport state across the kill: the armed shard dies while a
    #: shm slot is in flight, so the dispatch's bytes are discarded,
    #: the respawned worker re-attaches a fresh ring generation, and
    #: the byte conservation law must survive the crash.
    transports: Dict[int, str] = field(default_factory=dict)
    transport_bytes_staged: int = 0
    transport_bytes_consumed: int = 0
    transport_bytes_discarded: int = 0
    transport_conservation_ok: bool = True
    ring_reinits: int = 0
    #: Load-aware placement leg: an imbalanced fleet with rebalancing
    #: enabled must migrate at least one tenant and still produce
    #: verdicts bit-identical to the solo fault-free reference.
    rebalances: int = 0
    rebalance_tenants_moved: int = 0
    rebalance_identical: bool = True


def run_fleet_chaos(
    events: int = 6_000,
    seed: int = 0,
    kind: str = "lstm",
    shards: int = FLEET_SHARDS,
    rounds: int = 3,
    kill_round: int = 1,
    killed_shard: int = 0,
    kill_site: str = KILL_SITE,
) -> FleetChaosResult:
    """Kill a worker mid-round; prove nothing was lost or perturbed.

    Fully deterministic: the kill is armed at a WAL crash site (same
    site index dies on every run), rounds are fixed-seed CFG walks,
    and every comparison is exact — no timers, no races.
    """
    from repro.eval.metrics import build_demo_manager, demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = _tenant_names(FLEET_TENANTS)
    per_round = max(200, events // rounds // FLEET_TENANTS)

    def round_traces(round_index: int) -> Dict[str, tuple]:
        return {
            name: demo_events(
                kind,
                seed,
                per_round,
                run_label=f"fleet-chaos-{name}-r{round_index}",
            )
            for name in names
        }

    # Solo fault-free reference: one manager, all tenants, no fleet,
    # no kill.  Verdict flags (sequence, anomalous, score) are
    # engine-topology independent, so this is the reference the
    # surviving AND recovered tenants must match bit-for-bit.
    reference = build_demo_manager(FLEET_TENANTS, kind=kind, seed=seed)
    ref_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    for round_index in range(rounds):
        ref_records = reference.run_events(round_traces(round_index))
        for name in names:
            ref_flags[name].append(_flags(ref_records.get(name, [])))

    journal_root = tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    live_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    with FleetCoordinator(
        demo_factory,
        names,
        journal_root,
        FleetConfig(num_shards=shards),
    ) as fleet:
        killed = list(fleet.shards[killed_shard].tenants)
        survivors = [n for n in names if n not in killed]
        for round_index in range(rounds):
            if round_index == kill_round:
                fleet.arm_kill(killed_shard, kill_site, 0)
            records = fleet.run_events(round_traces(round_index))
            for name in names:
                live_flags[name].append(_flags(records.get(name, [])))
        counters = fleet.counters()
        transport_stats = fleet.transport_stats()
        transports = fleet.transport_names()

    result = FleetChaosResult(
        shards=shards,
        tenants=FLEET_TENANTS,
        rounds=rounds,
        kill_round=kill_round,
        kill_site=kill_site,
        killed_shard=killed_shard,
        killed_tenants=killed,
        surviving_tenants=survivors,
        restarts=int(counters.get("fleet.restarts", 0)),
        workers_spawned=int(counters.get("fleet.workers.spawned", 0)),
        heartbeat_misses=int(
            counters.get("fleet.heartbeat.misses", 0)
        ),
        rounds_refed=int(counters.get("fleet.rounds.refed", 0)),
        rounds_reconciled=int(
            counters.get("fleet.rounds.reconciled", 0)
        ),
        rounds_replayed=int(counters.get("fleet.rounds.replayed", 0)),
        rounds_admitted=int(counters.get("fleet.rounds.admitted", 0)),
        shard_rounds=sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        ),
    )
    result.conservation_ok = (
        result.rounds_admitted
        == result.shard_rounds + result.rounds_replayed
    )
    result.transports = transports
    result.transport_bytes_staged = int(
        transport_stats.get("fleet.transport.bytes.staged", 0)
    )
    result.transport_bytes_consumed = int(
        transport_stats.get("fleet.transport.bytes.consumed", 0)
    )
    result.transport_bytes_discarded = int(
        transport_stats.get("fleet.transport.bytes.discarded", 0)
    )
    result.transport_conservation_ok = (
        result.transport_bytes_staged
        == result.transport_bytes_consumed
        + result.transport_bytes_discarded
    )
    result.ring_reinits = int(
        transport_stats.get("fleet.transport.shm.reinits", 0)
    )
    for name in names:
        lost = sum(
            1
            for round_index in range(rounds)
            if live_flags[name][round_index]
            != ref_flags[name][round_index]
        )
        result.lost_rounds[name] = lost
        if lost:
            if name in survivors:
                result.survivors_identical = False
            else:
                result.killed_resumed_identical = False
    _run_rebalance_leg(result, seed=seed, kind=kind, shards=shards)
    return result


def _run_rebalance_leg(
    result: FleetChaosResult,
    seed: int,
    kind: str,
    shards: int,
    rounds: int = 4,
    base_events: int = 300,
) -> None:
    """Load-aware placement under deliberately imbalanced load.

    ``tenant0`` offers 4x the events of its peers, so its shard's
    modeled-makespan EWMA exceeds the coldest shard's by far more than
    the rebalance ratio once warm-up passes; the placer must migrate a
    tenant at a round boundary via the same checkpoint handoff the
    crash path uses — and the verdict flags of *every* tenant must
    stay bit-identical to a solo fault-free reference fed the same
    traces.
    """
    from repro.eval.metrics import build_demo_manager, demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = _tenant_names(FLEET_TENANTS)

    def round_traces(round_index: int) -> Dict[str, tuple]:
        return {
            name: demo_events(
                kind,
                seed,
                base_events * (4 if name == names[0] else 1),
                run_label=f"fleet-rebalance-{name}-r{round_index}",
            )
            for name in names
        }

    reference = build_demo_manager(FLEET_TENANTS, kind=kind, seed=seed)
    ref_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    for round_index in range(rounds):
        ref_records = reference.run_events(round_traces(round_index))
        for name in names:
            ref_flags[name].append(_flags(ref_records.get(name, [])))

    journal_root = tempfile.mkdtemp(prefix="repro-fleet-rebalance-")
    live_flags: Dict[str, List[List[tuple]]] = {n: [] for n in names}
    with FleetCoordinator(
        demo_factory,
        names,
        journal_root,
        FleetConfig(
            num_shards=shards,
            rebalance_ratio=1.2,
            rebalance_warmup_rounds=1,
            rebalance_cooldown_rounds=1,
        ),
    ) as fleet:
        for round_index in range(rounds):
            records = fleet.run_events(round_traces(round_index))
            for name in names:
                live_flags[name].append(_flags(records.get(name, [])))
        counters = fleet.counters()
    result.rebalances = int(
        counters.get("fleet.placement.rebalances", 0)
    )
    result.rebalance_tenants_moved = int(
        counters.get("fleet.placement.tenants_moved", 0)
    )
    result.rebalance_identical = live_flags == ref_flags


def format_fleet_chaos(result: FleetChaosResult) -> str:
    rows = [
        ("workers spawned", result.workers_spawned),
        ("restarts", result.restarts),
        ("heartbeat misses", result.heartbeat_misses),
        ("rounds re-fed", result.rounds_refed),
        ("rounds reconciled", result.rounds_reconciled),
        ("rounds replayed (WAL)", result.rounds_replayed),
        ("rounds admitted", result.rounds_admitted),
        ("per-shard fresh rounds", result.shard_rounds),
        (
            "conservation (admitted == fresh + replayed)",
            "yes" if result.conservation_ok else "NO",
        ),
        (
            "lost rounds",
            " ".join(
                f"{name}={count}"
                for name, count in result.lost_rounds.items()
            ),
        ),
        (
            "transports after recovery",
            " ".join(
                f"shard{shard}={name}"
                for shard, name in sorted(result.transports.items())
            ),
        ),
        (
            "transport bytes staged/consumed/discarded",
            f"{result.transport_bytes_staged}/"
            f"{result.transport_bytes_consumed}/"
            f"{result.transport_bytes_discarded}",
        ),
        (
            "transport conservation (staged == consumed + discarded)",
            "yes" if result.transport_conservation_ok else "NO",
        ),
        ("shm rings re-initialized", result.ring_reinits),
        ("load rebalances (imbalanced leg)", result.rebalances),
        (
            "tenants moved by the placer",
            result.rebalance_tenants_moved,
        ),
        (
            "rebalanced verdicts identical to solo",
            "yes" if result.rebalance_identical else "NO",
        ),
    ]
    return format_table(
        ["supervision event / invariant", "value"],
        rows,
        title=(
            f"chaos: fleet kill -9 of shard {result.killed_shard} at "
            f"{result.kill_site!r} in round {result.kill_round} "
            f"({result.shards} shards, {result.tenants} tenants; "
            f"survivors identical: "
            f"{'yes' if result.survivors_identical else 'NO'}, "
            f"killed resumed identical: "
            f"{'yes' if result.killed_resumed_identical else 'NO'})"
        ),
    )


def fleet_chaos_failures(result: FleetChaosResult) -> List[str]:
    failures: List[str] = []
    if result.restarts < 1:
        failures.append(
            "fleet: the killed worker was never restarted"
        )
    if not result.survivors_identical:
        failures.append(
            "fleet: surviving tenants' verdict flags diverged from "
            "the solo fault-free reference"
        )
    if not result.killed_resumed_identical:
        failures.append(
            "fleet: the killed shard's tenants lost admitted rounds "
            f"({result.lost_rounds})"
        )
    if not result.conservation_ok:
        failures.append(
            "fleet: counter conservation violated — "
            f"admitted {result.rounds_admitted} != fresh "
            f"{result.shard_rounds} + replayed {result.rounds_replayed}"
        )
    if result.rounds_refed + result.rounds_reconciled < 1:
        failures.append(
            "fleet: the interrupted round was neither re-fed nor "
            "reconciled"
        )
    if not result.transport_conservation_ok:
        failures.append(
            "fleet: transport byte conservation violated across the "
            f"kill — staged {result.transport_bytes_staged} != "
            f"consumed {result.transport_bytes_consumed} + discarded "
            f"{result.transport_bytes_discarded}"
        )
    if "shm" in result.transports.values():
        if result.ring_reinits < 1:
            failures.append(
                "fleet: the killed shard's shm ring was never "
                "re-initialized after recovery"
            )
        if result.transport_bytes_discarded < 1:
            failures.append(
                "fleet: the mid-round kill discarded no staged bytes "
                "(the in-flight shm slot was not accounted)"
            )
    if result.rebalances < 1:
        failures.append(
            "fleet: the load-aware placer never rebalanced the "
            "imbalanced leg"
        )
    if not result.rebalance_identical:
        failures.append(
            "fleet: rebalanced verdict flags diverged from the solo "
            "fault-free reference"
        )
    return failures


# ----------------------------------------------------------------------
# Fleet metrics: merged counters + per-shard liveness
# ----------------------------------------------------------------------


@dataclass
class FleetMetricsResult:
    shards: int
    tenants: int
    rounds: int
    events: int
    verdicts: int
    counters: Dict[str, int] = field(default_factory=dict)
    liveness: List[Dict[str, object]] = field(default_factory=list)
    health: Dict[str, str] = field(default_factory=dict)
    rounds_admitted: int = 0
    shard_rounds: int = 0
    rounds_replayed: int = 0
    conservation_ok: bool = True
    #: Per-shard active transport and the transport byte ledger
    #: (includes the wall-clock ``fleet.transport.*ns`` counters the
    #: merged byte-identity snapshot deliberately omits).
    transports: Dict[int, str] = field(default_factory=dict)
    transport_stats: Dict[str, int] = field(default_factory=dict)
    transport_conservation_ok: bool = True
    #: Load-aware placement surface: the sticky tenant->shard routing
    #: table and its epoch at report time.
    routing: Dict[str, int] = field(default_factory=dict)
    placement_epoch: int = 0


def run_fleet_metrics(
    events: int = 4_000,
    seed: int = 0,
    kind: str = "lstm",
    shards: int = FLEET_SHARDS,
    rounds: int = 2,
) -> FleetMetricsResult:
    """A short fault-free fleet run for the metrics report."""
    from repro.eval.metrics import demo_events
    from repro.fleet import FleetConfig, FleetCoordinator, demo_factory

    names = _tenant_names(FLEET_TENANTS)
    per_round = max(200, events // rounds // FLEET_TENANTS)
    journal_root = tempfile.mkdtemp(prefix="repro-fleet-metrics-")
    verdicts = 0
    with FleetCoordinator(
        demo_factory,
        names,
        journal_root,
        FleetConfig(num_shards=shards),
    ) as fleet:
        for round_index in range(rounds):
            records = fleet.run_events(
                {
                    name: demo_events(
                        kind,
                        seed,
                        per_round,
                        run_label=f"fleet-metrics-{name}-r{round_index}",
                    )
                    for name in names
                }
            )
            verdicts += sum(len(r) for r in records.values())
        counters = fleet.counters()
        liveness = fleet.liveness()
        health = {
            name: state.value for name, state in fleet.health().items()
        }
        transport_stats = {
            name: int(value)
            for name, value in sorted(fleet.transport_stats().items())
        }
        transports = fleet.transport_names()
        routing = dict(fleet.routing_table())
        placement_epoch = fleet.placement_epoch
    result = FleetMetricsResult(
        shards=shards,
        tenants=FLEET_TENANTS,
        rounds=rounds,
        events=per_round * FLEET_TENANTS * rounds,
        verdicts=verdicts,
        counters={name: int(v) for name, v in sorted(counters.items())},
        liveness=liveness,
        health=health,
        rounds_admitted=int(counters.get("fleet.rounds.admitted", 0)),
        shard_rounds=sum(
            value
            for name, value in counters.items()
            if name.startswith("fleet.shard.")
            and name.endswith(".rounds")
        ),
        rounds_replayed=int(
            counters.get("fleet.rounds.replayed", 0)
        ),
        transports=transports,
        transport_stats=transport_stats,
        routing=routing,
        placement_epoch=placement_epoch,
    )
    result.conservation_ok = (
        result.rounds_admitted
        == result.shard_rounds + result.rounds_replayed
    )
    result.transport_conservation_ok = transport_stats.get(
        "fleet.transport.bytes.staged", 0
    ) == transport_stats.get(
        "fleet.transport.bytes.consumed", 0
    ) + transport_stats.get(
        "fleet.transport.bytes.discarded", 0
    )
    return result


def format_fleet_metrics(result: FleetMetricsResult) -> str:
    liveness = format_table(
        ["shard", "pid", "alive", "restarts", "tenants hosted"],
        [
            (
                row["shard"],
                row["pid"],
                "yes" if row["alive"] else "NO",
                row["restarts"],
                " ".join(row["tenants"]),
            )
            for row in result.liveness
        ],
        title=(
            f"fleet: per-shard liveness ({result.shards} shards, "
            f"{result.tenants} tenants, {result.rounds} rounds, "
            f"{result.events} events, {result.verdicts} verdicts; "
            "conservation admitted == fresh + replayed: "
            f"{result.rounds_admitted} == {result.shard_rounds} + "
            f"{result.rounds_replayed}: "
            f"{'yes' if result.conservation_ok else 'NO'})"
        ),
    )
    fleet_rows = [
        (name, value)
        for name, value in result.counters.items()
        if name.startswith("fleet.")
    ]
    merged = format_table(
        ["counter", "count"],
        fleet_rows,
        title="fleet: merged fleet.* counters (coordinator + workers)",
    )
    staged = result.transport_stats.get(
        "fleet.transport.bytes.staged", 0
    )
    consumed = result.transport_stats.get(
        "fleet.transport.bytes.consumed", 0
    )
    discarded = result.transport_stats.get(
        "fleet.transport.bytes.discarded", 0
    )
    transport = format_table(
        ["transport counter", "value"],
        list(result.transport_stats.items()),
        title=(
            "fleet: transport ledger ("
            + " ".join(
                f"shard{shard}={name}"
                for shard, name in sorted(result.transports.items())
            )
            + f"; conservation {staged} == {consumed} + {discarded}: "
            f"{'yes' if result.transport_conservation_ok else 'NO'})"
        ),
    )
    routing = format_table(
        ["tenant", "shard"],
        sorted(result.routing.items()),
        title=(
            "fleet: sticky routing table "
            f"(placement epoch {result.placement_epoch})"
        ),
    )
    return "\n\n".join([liveness, merged, transport, routing])


def fleet_metrics_failures(result: FleetMetricsResult) -> List[str]:
    failures: List[str] = []
    if not result.conservation_ok:
        failures.append(
            "fleet: counter conservation violated — admitted "
            f"{result.rounds_admitted} != fresh {result.shard_rounds} "
            f"+ replayed {result.rounds_replayed}"
        )
    dead = [row for row in result.liveness if not row["alive"]]
    if dead:
        failures.append(
            f"fleet: {len(dead)} shard(s) not alive at report time"
        )
    if not result.transport_conservation_ok:
        staged = result.transport_stats.get(
            "fleet.transport.bytes.staged", 0
        )
        consumed = result.transport_stats.get(
            "fleet.transport.bytes.consumed", 0
        )
        discarded = result.transport_stats.get(
            "fleet.transport.bytes.discarded", 0
        )
        failures.append(
            "fleet: transport byte conservation violated — staged "
            f"{staged} != consumed {consumed} + discarded {discarded}"
        )
    return failures


def fleet_metrics_to_json(
    result: FleetMetricsResult,
) -> Dict[str, object]:
    document = asdict(result)
    document["failures"] = fleet_metrics_failures(result)
    return document
