"""Fig. 7: data transfer latency, software path vs RTAD path."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.report import format_table
from repro.soc.metrics import (
    TransferBreakdown,
    rtad_transfer_breakdown,
    sw_transfer_breakdown,
)
from repro.workloads.profiles import SPEC_CINT2006

#: Fig. 7 values from the paper (microseconds).
PAPER_SW = TransferBreakdown(read_us=1.12, vectorize_us=7.38, copy_us=11.5)
PAPER_RTAD = TransferBreakdown(read_us=2.82, vectorize_us=0.016, copy_us=0.78)


@dataclass
class Fig7Result:
    sw: TransferBreakdown
    rtad: TransferBreakdown

    @property
    def rtad_advantage_us(self) -> float:
        """How much earlier RTAD can drive the MCM (paper: 16.4 us)."""
        return self.sw.total_us - self.rtad.total_us


def run_fig7(window: int = 16) -> Fig7Result:
    """Average the benchmark-dependent PTM-buffering term over the
    suite (the paper reports a single averaged bar)."""
    sw = sw_transfer_breakdown(window=window)
    per_bench = [
        rtad_transfer_breakdown(profile, window=window)
        for profile in SPEC_CINT2006
    ]
    rtad = TransferBreakdown(
        read_us=float(np.mean([b.read_us for b in per_bench])),
        vectorize_us=float(np.mean([b.vectorize_us for b in per_bench])),
        copy_us=float(np.mean([b.copy_us for b in per_bench])),
    )
    return Fig7Result(sw=sw, rtad=rtad)


def format_fig7(result: Fig7Result) -> str:
    body = [
        ("SW", result.sw.read_us, result.sw.vectorize_us,
         result.sw.copy_us, result.sw.total_us),
        ("RTAD", result.rtad.read_us, result.rtad.vectorize_us,
         result.rtad.copy_us, result.rtad.total_us),
        ("paper SW", PAPER_SW.read_us, PAPER_SW.vectorize_us,
         PAPER_SW.copy_us, PAPER_SW.total_us),
        ("paper RTAD", PAPER_RTAD.read_us, PAPER_RTAD.vectorize_us,
         PAPER_RTAD.copy_us, PAPER_RTAD.total_us),
    ]
    table = format_table(
        ["path", "(1) read us", "(2) vectorize us", "(3) copy us",
         "total us"],
        body,
        title="Fig. 7 — data transfer latency (measured vs paper)",
    )
    return table + (
        f"\nRTAD drives MCM {result.rtad_advantage_us:.1f} us earlier "
        f"than SW (paper: 16.4 us)"
    )
