"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.eval                    # everything (minutes)
    python -m repro.eval table1 table2      # a subset
    python -m repro.eval fig8 --trials 3 --benchmarks gcc omnetpp
    python -m repro.eval metrics            # instrumented pipeline run
    python -m repro.eval metrics --json --models lstm --events 6000
    python -m repro.eval chaos --json       # fault-rate sweep (exit 1
    python -m repro.eval recovery --json    # kill-and-replay) on any
                                            # violated invariant
    python -m repro.eval parity --json      # cross-frontend detection
                                            # equivalence gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.eval.chaos import (
    DEFAULT_RATES,
    chaos_failures,
    chaos_to_json,
    format_chaos,
    run_chaos,
)
from repro.eval.fig6 import format_fig6, run_fig6
from repro.eval.fleet import (
    fleet_metrics_failures,
    fleet_metrics_to_json,
    format_fleet_metrics,
    run_fleet_metrics,
)
from repro.eval.fig7 import format_fig7, run_fig7
from repro.eval.fig8 import format_fig8, run_fig8
from repro.eval.metrics import (
    DEMO_KINDS,
    format_metrics,
    metrics_to_json,
    run_metrics_all,
)
from repro.eval.parity import (
    DEFAULT_FRONTENDS,
    format_parity,
    parity_failures,
    parity_to_json,
    run_parity,
)
from repro.eval.profile import (
    DEFAULT_INFERENCES,
    format_profile,
    profile_to_json,
    run_profile,
)
from repro.eval.recovery import (
    recovery_failures,
    recovery_to_json,
    format_recovery,
    run_recovery,
)
from repro.eval.soak import (
    DEFAULT_CLIENTS,
    format_soak,
    run_soak,
    soak_failures,
    soak_to_json,
)
from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2

EXPERIMENTS = (
    "table1", "table2", "fig6", "fig7", "fig8", "metrics", "chaos",
    "recovery", "profile", "parity", "soak",
)

#: Experiments whose --json output must stay one valid JSON document.
_JSON_EXPERIMENTS = (
    "metrics", "chaos", "recovery", "profile", "parity", "soak",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the RTAD paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)} "
             "(default: all)",
    )
    parser.add_argument(
        "--trials", type=int, default=5,
        help="attack trials per Fig. 8 cell (default 5)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="benchmark subset for Fig. 8 (default: all twelve)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed"
    )
    parser.add_argument(
        "--events", type=int, default=None,
        help="branch events per run (default 12000; parity defaults "
             "to 4000 — its workload must stay within MCM capacity)",
    )
    parser.add_argument(
        "--models", nargs="*", default=None, choices=DEMO_KINDS,
        help="model kinds for the metrics run (default: elm lstm)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the metrics/chaos output as JSON instead of text",
    )
    parser.add_argument(
        "--rates", nargs="*", type=float, default=None,
        help="fault-rate sweep for the chaos experiment "
             f"(default: {' '.join(str(r) for r in DEFAULT_RATES)})",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="monitoring rounds per recovery run (default 3)",
    )
    parser.add_argument(
        "--kills", type=int, default=3,
        help="kill points per recovery seed (default 3)",
    )
    parser.add_argument(
        "--seeds", nargs="*", type=int, default=None,
        help="seed list for the recovery experiment (default: 0 1 2)",
    )
    parser.add_argument(
        "--inferences", type=int, default=DEFAULT_INFERENCES,
        help="exact-mode inferences per profiled model "
             f"(default {DEFAULT_INFERENCES})",
    )
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_CLIENTS,
        help="concurrent simulated clients for the soak experiment "
             f"(default {DEFAULT_CLIENTS})",
    )
    args = parser.parse_args(argv)
    if args.events is not None and args.events < 0:
        parser.error("--events must be non-negative")
    if args.clients < 1:
        parser.error("--clients must be positive")
    events = 12_000 if args.events is None else args.events
    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choose from {EXPERIMENTS}"
        )

    failures = []
    for name in selected:
        start = time.perf_counter()
        if name == "table1":
            output = format_table1(run_table1(seed=args.seed))
        elif name == "table2":
            output = format_table2(run_table2(seed=args.seed))
        elif name == "fig6":
            output = format_fig6(run_fig6())
        elif name == "fig7":
            output = format_fig7(run_fig7())
        elif name == "metrics":
            results = run_metrics_all(
                kinds=tuple(args.models or DEMO_KINDS),
                events=events,
                seed=args.seed,
            )
            fleet = run_fleet_metrics(
                events=events, seed=args.seed
            )
            failures += [
                f"metrics: {line}"
                for line in fleet_metrics_failures(fleet)
            ]
            if args.json:
                document = metrics_to_json(results)
                document["fleet"] = fleet_metrics_to_json(fleet)
                output = json.dumps(
                    document, indent=2, sort_keys=True
                )
            else:
                output = "\n\n".join(
                    [format_metrics(results), format_fleet_metrics(fleet)]
                )
        elif name == "chaos":
            chaos = run_chaos(
                rates=tuple(
                    args.rates if args.rates else DEFAULT_RATES
                ),
                events=events,
                seed=args.seed,
            )
            failures += [
                f"chaos: {line}" for line in chaos_failures(chaos)
            ]
            if args.json:
                output = json.dumps(
                    chaos_to_json(chaos), indent=2, sort_keys=True
                )
            else:
                output = format_chaos(chaos)
        elif name == "recovery":
            recovery = run_recovery(
                seeds=tuple(
                    args.seeds if args.seeds is not None else (0, 1, 2)
                ),
                rounds=args.rounds,
                kills_per_seed=args.kills,
            )
            failures += [
                f"recovery: {line}"
                for line in recovery_failures(recovery)
            ]
            if args.json:
                output = json.dumps(
                    recovery_to_json(recovery), indent=2, sort_keys=True
                )
            else:
                output = format_recovery(recovery)
        elif name == "parity":
            parity = run_parity(
                kinds=tuple(args.models) if args.models else None,
                events=4_000 if args.events is None else args.events,
                seed=args.seed,
                frontends=DEFAULT_FRONTENDS,
            )
            failures += [
                f"parity: {line}" for line in parity_failures(parity)
            ]
            if args.json:
                output = json.dumps(
                    parity_to_json(parity), indent=2, sort_keys=True
                )
            else:
                output = format_parity(parity)
        elif name == "soak":
            soak = run_soak(
                clients=args.clients,
                seed=args.seed,
                kind=(args.models or ["lstm"])[0],
            )
            failures += [
                f"soak: {line}" for line in soak_failures(soak)
            ]
            if args.json:
                output = json.dumps(
                    soak_to_json(soak), indent=2, sort_keys=True
                )
            else:
                output = format_soak(soak)
        elif name == "profile":
            profiled = run_profile(
                kinds=tuple(args.models or ("elm", "lstm")),
                inferences=args.inferences,
                seed=args.seed,
            )
            if args.json:
                output = json.dumps(
                    profile_to_json(profiled), indent=2, sort_keys=True
                )
            else:
                output = format_profile(profiled)
        else:
            output = format_fig8(
                run_fig8(
                    benchmarks=args.benchmarks,
                    trials=args.trials,
                    seed=args.seed,
                )
            )
        elapsed = time.perf_counter() - start
        print(output)
        if not (name in _JSON_EXPERIMENTS and args.json):
            # Keep --json output a single valid JSON document.
            print(f"[{name}: {elapsed:.1f}s]\n")
    if failures:
        for line in failures:
            print(f"INVARIANT FAILED - {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
