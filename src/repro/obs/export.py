"""Text and JSON exporters over registry snapshots.

Both exporters consume the JSON-native dict from
:meth:`MetricsRegistry.snapshot`, so ``json.loads(to_json(registry))``
round-trips to exactly ``registry.snapshot()``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["to_json", "to_text", "snapshot_to_text"]


def to_json(registry: MetricsRegistry, indent: Optional[int] = None) -> str:
    """Serialize every instrument to a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def to_text(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Human-readable breakdown of every instrument."""
    return snapshot_to_text(registry.snapshot(), title=title)


def _rows(rows, header):
    widths = [
        max(len(str(row[column])) for row in [header, *rows])
        for column in range(len(header))
    ]
    lines = [
        "  " + "  ".join(
            str(cell).ljust(width) if index == 0 else str(cell).rjust(width)
            for index, (cell, width) in enumerate(zip(row, widths))
        ).rstrip()
        for row in [header, *rows]
    ]
    return lines


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def snapshot_to_text(snapshot: Dict[str, object], title: str = "metrics") -> str:
    """Render a snapshot dict (see ``MetricsRegistry.snapshot``)."""
    lines = [f"== {title} =="]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        lines += _rows(
            [(name, _num(value)) for name, value in counters.items()],
            ("name", "value"),
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        lines += _rows(
            [
                (name, _num(entry["value"]), _num(entry["high_water"]))
                for name, entry in gauges.items()
            ],
            ("name", "value", "high-water"),
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        lines += _rows(
            [
                (
                    name,
                    _num(entry["count"]),
                    _num(entry["mean"]),
                    _num(entry["p50"]),
                    _num(entry["p95"]),
                    _num(entry["p99"]),
                    _num(entry["max"]),
                )
                for name, entry in histograms.items()
            ],
            ("name", "count", "mean", "p50", "p95", "p99", "max"),
        )
    spans = snapshot.get("spans", {})
    if spans.get("recorded") or spans.get("dropped"):
        lines.append(
            f"spans: {spans.get('recorded', 0)} recorded, "
            f"{spans.get('dropped', 0)} dropped"
        )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
