"""Nested pipeline tracing: ``Span`` objects opened via
``registry.trace(name)``.

A span measures wall time on the monotonic clock
(:func:`time.perf_counter_ns`).  Spans nest through the registry's
span stack: a span opened while another is active gets a ``/``-joined
path (``soc.run_events/mcm.finalize``), and every completed span both

- appends a :class:`SpanRecord` to ``registry.spans`` (capped at
  ``registry.max_spans`` — overflow is counted, not silently lost) and
- observes its duration into the ``span.<path>`` histogram, which is
  what the exporters and percentile queries read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "SpanRecord", "NULL_SPAN"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    path: str
    depth: int
    start_ns: int
    duration_ns: int
    annotations: Dict[str, object] = field(default_factory=dict)


class Span:
    """Context manager for one traced section."""

    __slots__ = ("registry", "name", "annotations", "path", "depth", "_start")

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.annotations: Dict[str, object] = dict(annotations or {})
        self.path = name
        self.depth = 0
        self._start = 0

    def annotate(self, **values) -> "Span":
        """Attach key/value context to the span record."""
        self.annotations.update(values)
        return self

    def __enter__(self) -> "Span":
        stack = self.registry.span_stack
        self.depth = len(stack)
        self.path = (
            "/".join((*stack, self.name)) if stack else self.name
        )
        stack.append(self.name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter_ns() - self._start
        self.registry.span_stack.pop()
        registry = self.registry
        registry.histogram(f"span.{self.path}").observe(float(duration))
        if len(registry.spans) < registry.max_spans:
            registry.spans.append(
                SpanRecord(
                    name=self.name,
                    path=self.path,
                    depth=self.depth,
                    start_ns=self._start,
                    duration_ns=duration,
                    annotations=dict(self.annotations),
                )
            )
        else:
            registry.spans_dropped += 1
        return False


class _NullSpan:
    """Reusable no-op span handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def annotate(self, **values) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
