"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is the single object threaded through the pipeline.
Every stage asks it for named instruments **once** (at construction)
and then updates those handles on the hot path, so the per-event cost
is one attribute load plus one method call.  The :class:`NullRegistry`
hands out shared no-op instruments — an uninstrumented pipeline
allocates nothing and records nothing, which is what lets the metrics
parameters default on everywhere without a measurable tax.

Design constraints (see docs/OBSERVABILITY.md):

- zero dependencies (pure stdlib; no numpy),
- deterministic snapshots (plain dicts, insertion-ordered),
- fixed-bucket histograms so memory stays bounded on long runs while
  p50/p95/p99 remain accurate to within one bucket.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]


def _latency_buckets() -> Tuple[float, ...]:
    """1-2-5 series from 10 ns to 100 s — wide enough for both real
    wall-clock spans and simulated pipeline latencies in ns."""
    bounds: List[float] = []
    magnitude = 10.0
    while magnitude <= 1e11:
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(mantissa * magnitude)
        magnitude *= 10.0
    return tuple(bounds)


#: Default histogram bucket upper bounds (nanoseconds).
DEFAULT_BUCKETS: Tuple[float, ...] = _latency_buckets()


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time level with a high-water mark (e.g. FIFO depth)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Buckets are upper bounds; a final implicit +inf bucket catches
    overflow.  Percentiles interpolate linearly inside the bucket the
    target rank falls in, then clamp to the observed [min, max], so a
    single observation reports itself exactly.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "total", "min", "max",
    )

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Linear scan is fine: bucket lists are short and the common
        # latency values land in the first few comparisons.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else self.max
            )
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            lower = upper
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instrument store + span stack for nested tracing."""

    enabled = True

    #: Completed-span records kept for tree rendering; aggregation into
    #: ``span.*`` histograms is unbounded regardless of this cap.
    max_spans = 10_000

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.spans: List[object] = []   # SpanRecord, import-cycle-free
        self.span_stack: List[str] = []
        self.spans_dropped = 0

    # ------------------------------------------------------------------
    # Instrument factories (memoized by name)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def trace(self, name: str, **annotations):
        """Open a :class:`repro.obs.span.Span` context manager."""
        from repro.obs.span import Span

        return Span(self, name, annotations)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-native view of every instrument (sorted by name)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": gauge.value,
                    "high_water": gauge.high_water,
                }
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                    "mean": hist.mean,
                    "p50": hist.p50,
                    "p95": hist.p95,
                    "p99": hist.p99,
                }
                for name, hist in sorted(self._histograms.items())
            },
            "spans": {
                "recorded": len(self.spans),
                "dropped": self.spans_dropped,
            },
        }


    # ------------------------------------------------------------------
    # Durability (checkpoint/restore) — full-fidelity state transfer
    # ------------------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Lossless instrument state for checkpointing.

        Unlike :meth:`snapshot` (a human/JSON report), this keeps raw
        histogram bucket counts so :meth:`restore_state` reproduces
        percentiles exactly.  Span records are not carried across a
        restart — only the drop count.
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: [gauge.value, gauge.high_water]
                for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: {
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                }
                for name, hist in self._histograms.items()
            },
            "spans_dropped": self.spans_dropped,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite instruments from :meth:`export_state` output.

        Mutates existing instrument objects in place — stages cache
        their handles at construction, so replacing the objects would
        silently disconnect them.
        """
        for name, value in state["counters"].items():
            self.counter(name).value = value
        for name, (value, high_water) in state["gauges"].items():
            gauge = self.gauge(name)
            gauge.value = value
            gauge.high_water = high_water
        for name, doc in state["histograms"].items():
            hist = self.histogram(name, doc["bounds"])
            hist.counts = list(doc["counts"])
            hist.count = doc["count"]
            hist.total = doc["total"]
            hist.min = doc["min"]
            hist.max = doc["max"]
        self.spans_dropped = state.get("spans_dropped", 0)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: the default when observability is off.

    All factories return shared singletons whose update methods do
    nothing, so the instrumented hot path costs one no-op call and the
    registry never accumulates state.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._null_histogram

    def trace(self, name: str, **annotations):
        from repro.obs.span import NULL_SPAN

        return NULL_SPAN

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {"recorded": 0, "dropped": 0},
        }

    def export_state(self) -> Dict[str, object]:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans_dropped": 0,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        pass


#: Shared default: pass this (or None, which resolves to it) wherever a
#: stage takes a ``metrics`` argument and observability is not wanted.
NULL_REGISTRY = NullRegistry()
