"""Pipeline observability: counters, gauges, latency histograms, spans.

Usage::

    from repro.obs import MetricsRegistry
    from repro.obs.export import to_text

    metrics = MetricsRegistry()
    soc = RtadSoc(..., metrics=metrics)
    soc.run_events(events)
    print(to_text(metrics))

Every pipeline stage takes an optional ``metrics`` registry and
defaults to the shared :data:`NULL_REGISTRY`, whose instruments are
no-ops — disabled observability costs one empty method call per
update.  See docs/OBSERVABILITY.md for the metric catalogue.
"""

from repro.obs.export import snapshot_to_text, to_json, to_text
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.span import NULL_SPAN, Span, SpanRecord

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "snapshot_to_text",
    "to_json",
    "to_text",
]
