"""Synthesis accounting: FPGA (LUT/FF/BRAM) and ASIC (gate-equivalent)
area models for every RTAD module.

The paper reports two syntheses — Vivado mapping onto the ZC706 fabric
(Table I/II LUT+FF+BRAM columns) and Synopsys Design Compiler on a
commercial 45 nm library (gate counts).  We cannot run either tool, so
this subpackage reproduces the *accounting*: a structural estimator
whose per-block constants are calibrated against the paper's totals,
combined with the live coverage results of the trimming flow.
"""

from repro.synthesis.library import AreaVector, GateLibrary, DEFAULT_LIBRARY
from repro.synthesis.area_model import (
    CuAreaModel,
    ModuleAreas,
    rtad_module_areas,
    FULL_CU_LUTS,
    FULL_CU_FFS,
    REFERENCE_COVERAGE,
)
from repro.synthesis.power import EnergyReport, PowerModel

__all__ = [
    "AreaVector",
    "GateLibrary",
    "DEFAULT_LIBRARY",
    "CuAreaModel",
    "ModuleAreas",
    "rtad_module_areas",
    "FULL_CU_LUTS",
    "FULL_CU_FFS",
    "REFERENCE_COVERAGE",
    "EnergyReport",
    "PowerModel",
]
