"""Area bookkeeping primitives and the 45 nm gate-equivalent library."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaVector:
    """FPGA resources plus ASIC gate equivalents for one block."""

    luts: float = 0.0
    ffs: float = 0.0
    brams: float = 0.0
    gates: float = 0.0

    def __add__(self, other: "AreaVector") -> "AreaVector":
        return AreaVector(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            gates=self.gates + other.gates,
        )

    def scaled(self, lut_scale: float, ff_scale: float) -> "AreaVector":
        return AreaVector(
            luts=self.luts * lut_scale,
            ffs=self.ffs * ff_scale,
            brams=self.brams,
            gates=self.gates,
        )

    def times(self, factor: float) -> "AreaVector":
        return AreaVector(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            brams=self.brams * factor,
            gates=self.gates * factor,
        )

    @property
    def lut_ff_sum(self) -> float:
        """The LUT+FF figure Table II uses as the area proxy."""
        return self.luts + self.ffs

    def rounded(self) -> "AreaVector":
        return AreaVector(
            luts=round(self.luts),
            ffs=round(self.ffs),
            brams=round(self.brams),
            gates=round(self.gates),
        )


ZERO_AREA = AreaVector()


@dataclass(frozen=True)
class GateLibrary:
    """Gate-equivalent conversion for the 45 nm ASIC estimate.

    1 GE = the area of a 2-input NAND.  The per-primitive factors are
    calibrated so the converted ML-MIAOW matches the paper's Design
    Compiler figure (1,865,989 GE for 183,715 LUTs + 76,375 FFs +
    140 BRAMs): datapath LUTs map to roughly 9 GEs of combinational
    logic, a flip-flop with its mux costs ~2.5 GEs, and an 18 kb BRAM
    converted to SRAM macros amortizes to ~127 GEs of periphery
    (the bit cells themselves are counted separately by DC and the
    paper's table footnote says gate counts are logic GEs).
    """

    ge_per_lut: float = 9.0
    ge_per_ff: float = 2.55
    ge_per_bram: float = 127.13

    def gates_for(self, luts: float, ffs: float, brams: float = 0.0) -> float:
        return (
            luts * self.ge_per_lut
            + ffs * self.ge_per_ff
            + brams * self.ge_per_bram
        )

    def convert(self, area: AreaVector) -> AreaVector:
        return AreaVector(
            luts=area.luts,
            ffs=area.ffs,
            brams=area.brams,
            gates=self.gates_for(area.luts, area.ffs, area.brams),
        )


DEFAULT_LIBRARY = GateLibrary()
