"""Power and energy accounting (extension).

Section III: "This area saving can bring not only power efficiency but
also more computation power..." — the paper asserts the power half of
the trade without numbers.  This model quantifies it on our substrate:

- **static power** scales with the powered silicon (LUT+FF area after
  trimming) — the direct dividend of removing logic;
- **dynamic energy** scales with work actually done: instructions
  retired, weighted per functional-unit class (a 64-lane VALU op
  toggles far more capacitance than an SALU op).

Constants are representative 45 nm figures (order-of-magnitude, like
any pre-layout estimate); the *ratios* between engines are the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import RtadError
from repro.miaow.gpu import Gpu
from repro.miaow.isa import OPCODES
from repro.synthesis.library import AreaVector

#: Dynamic energy per retired instruction, picojoules, by unit class.
#: VALU-class ops pay for 64 lanes; transcendentals iterate; memory
#: ops drive long wires.
DYNAMIC_ENERGY_PJ: Dict[str, float] = {
    "salu": 6.0,
    "valu": 180.0,
    "vtrans": 420.0,
    "lds": 95.0,
    "vmem": 260.0,
    "smem": 40.0,
    "branch": 8.0,
    "special": 4.0,
}

#: Static (leakage) power per LUT+FF at 45 nm, microwatts.
STATIC_UW_PER_LUTFF = 0.55


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for a measured engine run."""

    engine: str
    elapsed_cycles: int
    clock_hz: float
    dynamic_pj: float
    static_area_lutff: float

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_cycles / self.clock_hz

    @property
    def static_uw(self) -> float:
        return self.static_area_lutff * STATIC_UW_PER_LUTFF

    @property
    def static_pj(self) -> float:
        return self.static_uw * 1e-6 * self.elapsed_s * 1e12

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def __str__(self) -> str:
        return (
            f"{self.engine}: {self.total_uj:.3f} uJ "
            f"(dynamic {self.dynamic_pj / 1e6:.3f} uJ, "
            f"static {self.static_pj / 1e6:.3f} uJ over "
            f"{self.elapsed_s * 1e6:.1f} us)"
        )


class PowerModel:
    """Estimates inference energy for an engine configuration."""

    def __init__(
        self,
        engine_area: AreaVector,
        clock_hz: float = 50e6,
        dynamic_energy_pj: Optional[Dict[str, float]] = None,
    ) -> None:
        if clock_hz <= 0:
            raise RtadError("clock must be positive")
        self.engine_area = engine_area
        self.clock_hz = clock_hz
        self.dynamic_energy_pj = dict(
            dynamic_energy_pj or DYNAMIC_ENERGY_PJ
        )

    def energy_of_run(
        self,
        gpu: Gpu,
        elapsed_cycles: int,
        opcode_counts: Optional[Dict[str, int]] = None,
    ) -> EnergyReport:
        """Energy for a run of ``elapsed_cycles`` on ``gpu``.

        ``opcode_counts`` maps opcode name to retired count; when
        omitted, per-unit totals are taken from a coverage collector
        attached to the GPU (``hits`` carries exact retire counts).
        """
        if opcode_counts is None:
            if gpu.coverage is None:
                raise RtadError(
                    "need opcode_counts or a coverage-enabled GPU"
                )
            opcode_counts = {
                point.split(".", 1)[1]: count
                for point, count in gpu.coverage.hits.items()
                if point.startswith("decode.")
            }
        dynamic = 0.0
        for opcode, count in opcode_counts.items():
            info = OPCODES.get(opcode)
            if info is None:
                raise RtadError(f"unknown opcode in counts: {opcode!r}")
            dynamic += self.dynamic_energy_pj[info.unit] * count
        return EnergyReport(
            engine=gpu.name,
            elapsed_cycles=elapsed_cycles,
            clock_hz=self.clock_hz,
            dynamic_pj=dynamic,
            static_area_lutff=self.engine_area.lut_ff_sum,
        )
