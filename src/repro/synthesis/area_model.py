"""Structural area model of MIAOW and the RTAD peripheral modules.

Two roles:

1. **CU model** (:class:`CuAreaModel`) — an inventory of the compute
   unit's RTL: an untrimmable core (fetch / wavepool / issue / register
   files), per-block shared overheads, and per-opcode decode+datapath
   slices, plus the *phantom* blocks of the full Southern Islands
   feature set (image/buffer formats, export, interpolation, f64,
   atomics ...) that exist in MIAOW but can never be exercised by ML
   kernels.  Phantom and non-ALU blocks are exactly what coverage-based
   trimming removes and instruction-analysis trimming (MIAOW2.0 /
   SCRATCH) cannot — the mechanism behind Table II.

   Raw weights are structural estimates; a calibration step rescales
   them so the full CU matches the paper's synthesis of MIAOW
   (180,902 LUTs / 107,001 FFs) and the two trimmed variants match
   their published areas given the actual coverage sets produced by
   simulating the deployed models.  Calibration failures (a coverage
   set inconsistent with the published totals) raise rather than
   silently extrapolate.

2. **Peripheral modules** (:func:`rtad_module_areas`) — structural
   estimators for the IGM/MCM blocks of Table I, parameterized by
   their configuration (TA unit count, FIFO depth, ...), with
   constants calibrated to the paper's numbers at the paper's
   configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import RtadError
from repro.miaow.isa import OPCODES
from repro.synthesis.library import AreaVector, DEFAULT_LIBRARY, GateLibrary

#: Table II, MIAOW row — the full single-CU synthesis on the ZC706.
FULL_CU_LUTS = 180_902
FULL_CU_FFS = 107_001

#: Table II targets used for calibration.
ML_MIAOW_LUTS = 36_743
ML_MIAOW_FFS = 15_275
MIAOW20_LUTS = 97_222
MIAOW20_FFS = 70_499

#: BRAMs per CU (Table I: 140 BRAMs for 5 trimmed CUs).  Register files
#: and LDS keep their BRAMs through trimming.
CU_BRAMS = 28


class CalibrationError(RtadError):
    """The published totals cannot be reproduced from this coverage."""


#: Coverage recorded by simulating the two deployed models (merged ELM
#: + LSTM kernels) on the instrumented engine — the coverage set the
#: published ML-MIAOW corresponds to.  The LSTM kernels are a strict
#: superset of the ELM's, so the single-model (MIAOW2.0 comparison)
#: reference coincides with the merged one.  ``benchmarks/
#: bench_table2_trimming.py`` asserts the live coverage still equals
#: this frozen set, so kernel changes cannot silently drift from it.
REFERENCE_COVERAGE: frozenset = frozenset({
    "block.branch_unit", "block.lds_swizzle", "block.lds_unit",
    "block.salu_arith", "block.salu_cmp", "block.salu_move",
    "block.salu_mul", "block.salu_shift", "block.sequencer",
    "block.smrd", "block.valu_fadd", "block.valu_fmac",
    "block.valu_fminmax", "block.valu_fmul", "block.valu_iadd",
    "block.valu_icmp", "block.valu_iminmax", "block.valu_imul",
    "block.valu_move", "block.valu_select", "block.valu_shift",
    "block.valu_trans_exp", "block.valu_trans_log",
    "block.valu_trans_rcp", "block.vmem_unit",
    "decode.ds_read_b32", "decode.ds_swizzle_b32",
    "decode.flat_load_dword", "decode.flat_store_dword",
    "decode.s_add_i32", "decode.s_branch", "decode.s_cbranch_scc1",
    "decode.s_cmp_eq_i32", "decode.s_cmp_lt_i32", "decode.s_endpgm",
    "decode.s_load_dword", "decode.s_lshl_b32", "decode.s_mov_b32",
    "decode.s_mul_i32", "decode.v_add_f32", "decode.v_add_i32",
    "decode.v_cmp_eq_i32", "decode.v_cndmask_b32", "decode.v_exp_f32",
    "decode.v_log_f32", "decode.v_lshlrev_b32", "decode.v_mac_f32",
    "decode.v_max_f32", "decode.v_min_f32", "decode.v_min_i32",
    "decode.v_mov_b32", "decode.v_mul_f32", "decode.v_mul_lo_i32",
    "decode.v_rcp_f32", "decode.v_sub_f32", "decode.v_sub_i32",
})


@dataclass(frozen=True)
class _Item:
    """One inventory entry: raw (pre-calibration) weights."""

    name: str
    luts: float
    ffs: float
    category: str  # "core" | "overhead" | "slice" | "phantom"
    alu_class: bool = False  # within MIAOW2.0's trimming scope


def _build_inventory() -> List[_Item]:
    items: List[_Item] = []

    def core(name, luts, ffs):
        items.append(_Item(f"core.{name}", luts, ffs, "core"))

    def overhead(name, luts, ffs, alu=False):
        items.append(_Item(f"block.{name}", luts, ffs, "overhead", alu))

    def phantom(name, luts, ffs):
        items.append(_Item(f"phantom.{name}", luts, ffs, "phantom"))

    # --- untrimmable core -------------------------------------------------
    core("fetch", 3200, 2400)
    core("wavepool", 2600, 3400)
    core("issue", 2400, 1600)
    core("sgpr_file", 1100, 2600)
    core("vgpr_file", 5200, 800)
    core("pipeline", 2100, 1900)

    # --- shared block overheads (from the live opcode table) ---------------
    _BLOCK_OVERHEADS = {
        "salu_move": (150, 80), "salu_arith": (300, 150),
        "salu_mul": (800, 200), "salu_logic": (220, 100),
        "salu_shift": (260, 110), "salu_minmax": (180, 90),
        "salu_cmp": (240, 100), "salu_bitcount": (350, 120),
        "valu_move": (500, 200), "valu_fadd": (2400, 600),
        "valu_fmul": (2800, 500), "valu_fmac": (3400, 700),
        "valu_fminmax": (900, 250), "valu_iadd": (1100, 300),
        "valu_imul": (2600, 400), "valu_logic": (700, 250),
        "valu_shift": (1000, 300), "valu_select": (500, 200),
        "valu_iminmax": (800, 240), "valu_bitfield": (1300, 320),
        "valu_cvt": (1400, 350), "valu_fcmp": (900, 280),
        "valu_icmp": (700, 220), "valu_lane": (350, 150),
        "valu_cmpx": (950, 300), "exec_mask_unit": (600, 320),
        "valu_trans_exp": (5200, 900), "valu_trans_log": (5200, 900),
        "valu_trans_rcp": (4300, 800), "valu_trans_rsq": (4600, 850),
        "valu_trans_sqrt": (4400, 800),
        "lds_unit": (3200, 1500), "lds_swizzle": (900, 300),
        "lds_atomic": (1500, 450),
        "vmem_unit": (21000, 9000), "smrd": (2600, 1300),
        "branch_unit": (1400, 700), "sync_unit": (500, 400),
        "sequencer": (600, 500),
    }
    live_blocks = {info.block for info in OPCODES.values()}
    for block in sorted(live_blocks):
        try:
            luts, ffs = _BLOCK_OVERHEADS[block]
        except KeyError:
            raise RtadError(f"no area estimate for block {block!r}") from None
        alu = block.startswith(("valu", "salu"))
        overhead(block, luts, ffs, alu=alu)

    # --- phantom SI features present in MIAOW, unreachable by ML code -----
    phantom("mtbuf_unit", 9500, 4200)
    phantom("mimg_unit", 14000, 6500)
    phantom("export_unit", 6200, 2800)
    phantom("interp_unit", 5200, 2400)
    phantom("f64_datapath", 16000, 5200)
    phantom("atomic_unit", 5600, 2600)
    phantom("msg_unit", 1200, 600)
    phantom("gds_unit", 3800, 1700)
    phantom("scalar_cache", 4800, 3800)
    phantom("texture_sampler", 12000, 5400)

    # --- per-opcode decode + datapath slices -------------------------------
    _SLICE_COST = {
        "salu": (190, 65), "valu": (760, 200), "vtrans": (2360, 420),
        "lds": (520, 190), "vmem": (860, 320), "smem": (360, 150),
        "branch": (160, 60), "special": (90, 35),
    }
    for name, info in sorted(OPCODES.items()):
        luts, ffs = _SLICE_COST[info.unit]
        alu = info.block.startswith(("valu", "salu"))
        items.append(_Item(f"decode.{name}", luts, ffs, "slice", alu))
    return items


def _slice_opcode(item_name: str) -> Optional[str]:
    if item_name.startswith("decode."):
        return item_name.split(".", 1)[1]
    return None


class CuAreaModel:
    """Calibrated area accounting for one compute unit.

    ``covered_ours`` is the merged coverage of every deployed model
    (the paper merges ELM + LSTM runs); ``covered_single`` is the
    single-model coverage used for the MIAOW2.0 comparison (the paper
    deploys the LSTM there).  Calibration solves three scale factors
    per resource so the published MIAOW / MIAOW2.0 / ML-MIAOW areas
    are reproduced exactly at these coverage sets; other coverage sets
    interpolate through the same scales.
    """

    def __init__(
        self,
        covered_ours: Optional[Set[str]] = None,
        covered_single: Optional[Set[str]] = None,
        library: GateLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.library = library
        self.items = _build_inventory()
        if covered_ours is None:
            covered_ours = set(REFERENCE_COVERAGE)
        self.covered_ours = set(covered_ours)
        self.covered_single = set(
            covered_single if covered_single is not None else covered_ours
        )
        self._lut_scales = self._solve_scales("luts")
        self._ff_scales = self._solve_scales("ffs")

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _is_kept_by_coverage(self, item: _Item, covered: Set[str]) -> bool:
        """Would coverage-based trimming keep this item?"""
        if item.category == "core":
            return True
        if item.category == "phantom":
            return False
        return item.name in covered

    def _is_kept_by_instruction_flow(
        self, item: _Item, covered: Set[str]
    ) -> bool:
        """Would MIAOW2.0's instruction-analysis trimming keep it?

        It only removes per-opcode logic inside ALU sub-blocks and the
        instruction decoder; shared overheads, phantom features and
        non-ALU units all stay.
        """
        if item.category == "slice" and item.alu_class:
            return item.name in covered
        return True

    def _solve_scales(self, resource: str) -> Dict[str, float]:
        full = FULL_CU_LUTS if resource == "luts" else FULL_CU_FFS
        ml_target = ML_MIAOW_LUTS if resource == "luts" else ML_MIAOW_FFS
        m20_target = MIAOW20_LUTS if resource == "luts" else MIAOW20_FFS

        core = kept = 0.0
        # uncovered split: what the instruction flow can also remove
        # (uncovered ALU slices, per single-model coverage) vs what only
        # the coverage flow removes.
        removable_both = removable_ours_only = 0.0
        for item in self.items:
            weight = getattr(item, resource)
            if item.category == "core":
                core += weight
            elif self._is_kept_by_coverage(item, self.covered_ours):
                kept += weight
            elif not self._is_kept_by_instruction_flow(
                item, self.covered_single
            ):
                removable_both += weight
            else:
                removable_ours_only += weight

        if kept <= 0 or removable_both <= 0 or removable_ours_only <= 0:
            raise CalibrationError(
                f"degenerate inventory split for {resource}: "
                f"kept={kept} both={removable_both} ours={removable_ours_only}"
            )
        # Three equations, three scales:
        #   ML-MIAOW = core + alpha * kept
        #   MIAOW2.0 = full - beta_both * removable_both
        #   MIAOW    = core + alpha*kept + beta_both*removable_both
        #              + beta_ours*removable_ours_only
        alpha = (ml_target - core) / kept
        beta_both = (full - m20_target) / removable_both
        beta_ours = (
            full - core - alpha * kept - beta_both * removable_both
        ) / removable_ours_only
        if alpha <= 0 or beta_both <= 0 or beta_ours <= 0:
            raise CalibrationError(
                f"calibration produced non-physical scales for {resource}: "
                f"alpha={alpha:.3f} beta_both={beta_both:.3f} "
                f"beta_ours={beta_ours:.3f}"
            )
        return {"core": 1.0, "alpha": alpha,
                "beta_both": beta_both, "beta_ours": beta_ours}

    def _scaled_weight(self, item: _Item, resource: str) -> float:
        scales = self._lut_scales if resource == "luts" else self._ff_scales
        weight = getattr(item, resource)
        if item.category == "core":
            return weight
        if self._is_kept_by_coverage(item, self.covered_ours):
            return weight * scales["alpha"]
        if not self._is_kept_by_instruction_flow(item, self.covered_single):
            return weight * scales["beta_both"]
        return weight * scales["beta_ours"]

    # ------------------------------------------------------------------
    # Areas
    # ------------------------------------------------------------------

    def _accumulate(self, keep) -> AreaVector:
        luts = ffs = 0.0
        for item in self.items:
            if keep(item):
                luts += self._scaled_weight(item, "luts")
                ffs += self._scaled_weight(item, "ffs")
        area = AreaVector(luts=luts, ffs=ffs, brams=CU_BRAMS)
        return self.library.convert(area).rounded()

    def full_area(self) -> AreaVector:
        """One untrimmed MIAOW CU."""
        return self._accumulate(lambda item: True)

    def coverage_trimmed_area(
        self, covered: Optional[Set[str]] = None
    ) -> AreaVector:
        """One ML-MIAOW CU given a merged coverage set."""
        covered = self.covered_ours if covered is None else covered
        return self._accumulate(
            lambda item: self._is_kept_by_coverage(item, covered)
        )

    def instruction_trimmed_area(
        self, covered: Optional[Set[str]] = None
    ) -> AreaVector:
        """One MIAOW2.0-style CU given a single-model coverage set."""
        covered = self.covered_single if covered is None else covered
        return self._accumulate(
            lambda item: self._is_kept_by_instruction_flow(item, covered)
        )

    def trimmed_point_names(
        self, covered: Optional[Set[str]] = None
    ) -> List[str]:
        covered = self.covered_ours if covered is None else covered
        return sorted(
            item.name
            for item in self.items
            if not self._is_kept_by_coverage(item, covered)
        )


# ---------------------------------------------------------------------------
# Peripheral (non-CU) RTAD modules — Table I rows
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModuleAreas:
    """Synthesized areas for the RTAD peripheral modules."""

    trace_analyzer: AreaVector
    p2s: AreaVector
    input_vector_generator: AreaVector
    internal_fifo: AreaVector
    ml_miaow_driver: AreaVector
    control_fsm: AreaVector
    interrupt_manager: AreaVector

    def mlpu_without_engine(self) -> AreaVector:
        total = AreaVector()
        for part in (
            self.trace_analyzer, self.p2s, self.input_vector_generator,
            self.internal_fifo, self.ml_miaow_driver, self.control_fsm,
            self.interrupt_manager,
        ):
            total = total + part
        return total


def rtad_module_areas(
    ta_units: int = 4,
    p2s_depth: int = 16,
    mapper_entries: int = 1024,
    fifo_depth_vectors: int = 64,
    vector_width: int = 16,
) -> ModuleAreas:
    """Structural estimator for the IGM/MCM blocks.

    Per-element constants are calibrated so the defaults reproduce
    Table I exactly; other configurations scale with their dominant
    structural parameter (e.g. BRAM count with FIFO capacity, TA LUTs
    with unit count — the TA is LUT-dominated because packet decode is
    wide combinational match logic with almost no state).
    """

    # Trace analyzer: byte-lane decoders are wide combinational match
    # logic (LUT heavy), shared state forwarding contributes little.
    ta = AreaVector(
        luts=2894 * ta_units + 386,
        ffs=74 * ta_units + 54,
        brams=0,
        gates=round(3034.75 * ta_units + 236),
    )

    # P2S: registered 4-to-1 serializer over 64-bit entries; FF heavy.
    p2s = AreaVector(
        luts=38 * (p2s_depth // 4) + 534,
        ffs=64 * p2s_depth + 50,
        brams=0,
        gates=round(856.4375 * p2s_depth + 660),
    )

    # IVG: mapper CAM slice per entry + encoder window registers.
    ivg = AreaVector(
        luts=round(0.727 * mapper_entries + 146),
        ffs=round(0.875 * mapper_entries + 171),
        brams=0,
        gates=round(9.0 * mapper_entries + 1214),
    )

    # MCM internal FIFO: BRAM-backed data, tiny flow-control logic.
    fifo_bytes = fifo_depth_vectors * vector_width * 4
    fifo = AreaVector(
        luts=13,
        ffs=33,
        brams=max(1, round(fifo_bytes / 410)),
        gates=round(fifo_bytes * 0.064),
    )

    driver = AreaVector(luts=489, ffs=265, brams=0, gates=5971)
    fsm = AreaVector(luts=1609, ffs=1698, brams=0, gates=16977)
    interrupt = AreaVector(luts=42, ffs=91, brams=0, gates=927)
    return ModuleAreas(
        trace_analyzer=ta,
        p2s=p2s,
        input_vector_generator=ivg,
        internal_fifo=fifo,
        ml_miaow_driver=driver,
        control_fsm=fsm,
        interrupt_manager=interrupt,
    )
