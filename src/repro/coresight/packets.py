"""PFT-inspired trace packet grammar.

The encoding follows the spirit of ARM's Program Flow Trace protocol
while staying self-contained:

========================  =========================================
Header byte               Packet
========================  =========================================
``0x00`` × 5 + ``0x80``   A-sync (alignment synchronisation)
``0x08``                  I-sync: 4-byte address + info byte
``0x6E``                  Context ID: 4-byte context value
``0x42``                  Timestamp: 8-byte cycle count
``0x20``                  Ignore (padding inserted by the TPIU)
bit0 == 1                 Branch address (1–5 bytes, + optional
                          exception info byte)
bits[2:0] == 0b100        Atom packet (1–4 atoms, stop-bit encoded)
========================  =========================================

Branch addresses are word aligned (ARM state), so ``address >> 2`` is
what gets compressed: the first byte carries 6 low bits, continuation
bytes 7 bits each, and the decoder merges the received low bits with
the *previous* branch address's high bits — the same prefix compression
PFT uses to keep the stream narrow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.errors import PacketDecodeError, PacketEncodeError

HEADER_ASYNC_FILL = 0x00
HEADER_ASYNC_END = 0x80
HEADER_ISYNC = 0x08
HEADER_CONTEXT_ID = 0x6E
HEADER_TIMESTAMP = 0x42
HEADER_IGNORE = 0x20

ASYNC_FILL_COUNT = 5

#: Maximum bytes in a branch-address packet (excluding exception byte).
BRANCH_ADDR_MAX_BYTES = 5

#: Address bits carried by each branch-packet byte position.
_FIRST_BYTE_BITS = 6
_MID_BYTE_BITS = 7
_LAST_BYTE_BITS = 3  # 6 + 7*3 + 3 = 30 bits = full word-aligned address

MAX_ATOMS_PER_PACKET = 4


class ExceptionType(enum.IntEnum):
    """Exception cause carried in a branch packet's info byte."""

    NONE = 0
    SVC = 1       # syscalls enter the kernel through SVC
    IRQ = 2
    FIQ = 3
    PREFETCH_ABORT = 4
    DATA_ABORT = 5


@dataclass(frozen=True)
class AsyncPacket:
    """Alignment synchronisation: 5 × 0x00 then 0x80."""

    def encode(self) -> bytes:
        return bytes([HEADER_ASYNC_FILL] * ASYNC_FILL_COUNT + [HEADER_ASYNC_END])


@dataclass(frozen=True)
class ISyncPacket:
    """Instruction synchronisation: full current address + state info."""

    address: int
    context_id: int = 0

    def encode(self) -> bytes:
        if self.address % 4:
            raise PacketEncodeError(
                f"i-sync address {self.address:#x} not word aligned"
            )
        if not 0 <= self.address <= 0xFFFFFFFF:
            raise PacketEncodeError(f"address out of range: {self.address:#x}")
        info = self.context_id & 0xFF
        return bytes([HEADER_ISYNC]) + self.address.to_bytes(4, "little") + bytes([info])


@dataclass(frozen=True)
class ContextIdPacket:
    """Current process context ID (emitted on context switches)."""

    context_id: int

    def encode(self) -> bytes:
        if not 0 <= self.context_id <= 0xFFFFFFFF:
            raise PacketEncodeError(f"context id out of range: {self.context_id:#x}")
        return bytes([HEADER_CONTEXT_ID]) + self.context_id.to_bytes(4, "little")


@dataclass(frozen=True)
class TimestampPacket:
    """Cycle-count timestamp."""

    cycles: int

    def encode(self) -> bytes:
        if not 0 <= self.cycles < (1 << 64):
            raise PacketEncodeError(f"timestamp out of range: {self.cycles}")
        return bytes([HEADER_TIMESTAMP]) + self.cycles.to_bytes(8, "little")


@dataclass(frozen=True)
class AtomPacket:
    """1–4 conditional-branch outcomes, stop-bit encoded.

    bits[3 .. 3+n-1] hold the atom values (1 = taken / E, 0 = not
    taken / N); bit[3+n] is the stop bit.
    """

    atoms: Tuple[bool, ...]

    def encode(self) -> bytes:
        n = len(self.atoms)
        if not 1 <= n <= MAX_ATOMS_PER_PACKET:
            raise PacketEncodeError(f"atom packet with {n} atoms")
        byte = 0b100
        for i, atom in enumerate(self.atoms):
            if atom:
                byte |= 1 << (3 + i)
        byte |= 1 << (3 + n)  # stop bit
        return bytes([byte])


@dataclass(frozen=True)
class BranchAddressPacket:
    """A taken-branch target address, prefix-compressed.

    ``previous`` (the last emitted branch address) determines how many
    bytes are needed: only enough low bits to reach the highest
    differing bit are transmitted.
    """

    address: int
    exception: ExceptionType = ExceptionType.NONE

    def encode(self, previous: int = 0) -> bytes:
        if self.address % 4:
            raise PacketEncodeError(
                f"branch address {self.address:#x} not word aligned"
            )
        if not 0 <= self.address <= 0xFFFFFFFF:
            raise PacketEncodeError(f"address out of range: {self.address:#x}")
        word = self.address >> 2
        prev_word = (previous >> 2) & 0x3FFFFFFF

        # How many bytes must we send so the receiver can reconstruct
        # the address by merging with the previous one's high bits?
        diff = word ^ prev_word
        cumulative = [_FIRST_BYTE_BITS]
        for _ in range(BRANCH_ADDR_MAX_BYTES - 2):
            cumulative.append(cumulative[-1] + _MID_BYTE_BITS)
        cumulative.append(cumulative[-1] + _LAST_BYTE_BITS)
        nbytes = BRANCH_ADDR_MAX_BYTES
        for count, bits in enumerate(cumulative, start=1):
            if diff < (1 << bits):
                nbytes = count
                break
        # An exception marker lives in byte 5, so force full length.
        if self.exception is not ExceptionType.NONE:
            nbytes = BRANCH_ADDR_MAX_BYTES

        out = []
        remaining = word
        # byte 0: marker bit0=1, 6 address bits in bits[6:1]
        byte0 = 0x01 | ((remaining & 0x3F) << 1)
        remaining >>= _FIRST_BYTE_BITS
        if nbytes > 1:
            byte0 |= 0x80
        out.append(byte0)
        for index in range(1, nbytes):
            is_last_possible = index == BRANCH_ADDR_MAX_BYTES - 1
            if is_last_possible:
                byte = remaining & 0x07  # 3 bits
                remaining >>= _LAST_BYTE_BITS
                if self.exception is not ExceptionType.NONE:
                    byte |= 0x40  # E bit: info byte follows
                out.append(byte)
            else:
                byte = remaining & 0x7F
                remaining >>= _MID_BYTE_BITS
                if index < nbytes - 1:
                    byte |= 0x80
                out.append(byte)
        encoded = bytes(out)
        if self.exception is not ExceptionType.NONE:
            encoded += bytes([int(self.exception) & 0x0F])
        return encoded


Packet = Union[
    AsyncPacket,
    ISyncPacket,
    ContextIdPacket,
    TimestampPacket,
    AtomPacket,
    BranchAddressPacket,
]


def is_branch_header(byte: int) -> bool:
    return bool(byte & 0x01)


def is_atom_header(byte: int) -> bool:
    return (byte & 0x07) == 0b100


def decode_atom_byte(byte: int) -> List[bool]:
    """Recover the atom values from a stop-bit encoded atom byte."""
    if not is_atom_header(byte):
        raise PacketDecodeError(f"not an atom header: {byte:#04x}")
    bits = byte >> 3
    if bits == 0:
        raise PacketDecodeError("atom byte missing stop bit")
    stop = bits.bit_length() - 1
    if stop < 1 or stop > MAX_ATOMS_PER_PACKET:
        raise PacketDecodeError(f"atom count {stop} out of range")
    return [bool((bits >> i) & 1) for i in range(stop)]


def merge_compressed_address(
    received_word: int, received_bits: int, previous_address: int
) -> int:
    """Combine received low address bits with the previous address.

    ``received_word`` holds ``received_bits`` low bits of the new
    word-aligned address; the rest come from ``previous_address``.
    """
    prev_word = (previous_address >> 2) & 0x3FFFFFFF
    if received_bits >= 30:
        word = received_word & 0x3FFFFFFF
    else:
        mask = (1 << received_bits) - 1
        word = (received_word & mask) | (prev_word & ~mask)
    return (word << 2) & 0xFFFFFFFF
