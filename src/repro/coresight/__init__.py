"""ARM CoreSight substrate: PTM trace generation and TPIU framing.

The real RTAD taps the Cortex-A9's Program Trace Macrocell (PTM)
through the Trace Port Interface Unit (TPIU).  This subpackage models
that path bit-accurately enough for the IGM's trace analyzer to do real
decode work:

- :mod:`repro.coresight.packets` — the PFT-inspired packet grammar
  (a-sync, i-sync, branch-address with 7-bit continuation compression,
  atoms, context-ID, timestamps).
- :mod:`repro.coresight.ptm` — encodes branch event streams into
  packets, in branch-broadcast mode (every taken branch emits its
  target address, as used when no program image is available offline).
- :mod:`repro.coresight.tpiu` — 16-byte trace-port frames with periodic
  full-sync, delivering 32-bit words to the IGM port.
- :mod:`repro.coresight.decoder` — golden software decoder used to
  verify the hardware trace analyzer.
"""

from repro.coresight.packets import (
    AsyncPacket,
    AtomPacket,
    BranchAddressPacket,
    ContextIdPacket,
    ExceptionType,
    ISyncPacket,
    TimestampPacket,
)
from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu, TpiuDeframer, FRAME_SIZE
from repro.coresight.decoder import PftDecoder, DecodedBranch, TruncatedPacket
from repro.coresight.driver import CoreSightDriver

__all__ = [
    "AsyncPacket",
    "AtomPacket",
    "BranchAddressPacket",
    "ContextIdPacket",
    "ExceptionType",
    "ISyncPacket",
    "TimestampPacket",
    "Ptm",
    "PtmConfig",
    "Tpiu",
    "TpiuDeframer",
    "FRAME_SIZE",
    "PftDecoder",
    "DecodedBranch",
    "TruncatedPacket",
    "CoreSightDriver",
]
