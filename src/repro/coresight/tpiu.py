"""TPIU model: trace byte stream -> framed 32-bit trace-port words.

The Trace Port Interface Unit packs trace source bytes into 16-byte
frames.  Our frame layout keeps the real TPIU's essentials — a source
ID, periodic full-synchronisation, and fixed-size frames delivered as
32-bit words — while replacing the data/ID bit-interleaving with an
explicit header byte (source ID + payload length), which removes the
ambiguity of value-based padding:

    byte 0      bits[7:4] = source ID, bits[3:0] = payload length (<=15)
    bytes 1..n  payload
    bytes n+1.. zero padding to 16 bytes

Every ``sync_period`` frames a full-sync frame (15 x 0xFF then 0x7F) is
inserted so a late-attaching receiver can align.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import FrameSyncError
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.utils.bitstream import bytes_to_words, words_to_bytes

FRAME_SIZE = 16
PAYLOAD_PER_FRAME = FRAME_SIZE - 1
SYNC_FRAME = bytes([0xFF] * (FRAME_SIZE - 1) + [0x7F])
DEFAULT_SOURCE_ID = 0x1


class Tpiu:
    """Framer: accepts trace bytes, emits complete frames / words."""

    def __init__(
        self,
        source_id: int = DEFAULT_SOURCE_ID,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0 <= source_id <= 0xF:
            raise ValueError("source id must fit in 4 bits")
        if sync_period < 1:
            raise ValueError("sync_period must be >= 1")
        self.source_id = source_id
        self.sync_period = sync_period
        self._buffer = bytearray()
        self._frames_since_sync = sync_period  # sync immediately at start
        self.frames_emitted = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_frames = self.metrics.counter("tpiu.frames")
        self._m_sync_frames = self.metrics.counter("tpiu.sync_frames")
        self._m_payload = self.metrics.counter("tpiu.payload_bytes")
        self._m_padding = self.metrics.counter("tpiu.padding_bytes")

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "buffer": bytes(self._buffer).hex(),
            "frames_since_sync": self._frames_since_sync,
            "frames_emitted": self.frames_emitted,
        }

    def restore_state(self, state: dict) -> None:
        self._buffer = bytearray(bytes.fromhex(state["buffer"]))
        self._frames_since_sync = state["frames_since_sync"]
        self.frames_emitted = state["frames_emitted"]

    def push(self, data: bytes) -> bytes:
        """Buffer trace bytes; return any complete frames produced."""
        self._buffer += data
        out = bytearray()
        while len(self._buffer) >= PAYLOAD_PER_FRAME:
            payload = bytes(self._buffer[:PAYLOAD_PER_FRAME])
            del self._buffer[:PAYLOAD_PER_FRAME]
            out += self._frame(payload)
        return bytes(out)

    def flush(self) -> bytes:
        """Emit a final (possibly short) frame with whatever remains."""
        if not self._buffer:
            return b""
        payload = bytes(self._buffer)
        self._buffer.clear()
        return self._frame(payload)

    def push_words(self, data: bytes) -> List[int]:
        """Frame and return 32-bit words (the IGM ingest format)."""
        return bytes_to_words(self.push(data))

    def _frame(self, payload: bytes) -> bytes:
        assert 1 <= len(payload) <= PAYLOAD_PER_FRAME
        out = bytearray()
        if self._frames_since_sync >= self.sync_period:
            out += SYNC_FRAME
            self._frames_since_sync = 0
            self._m_sync_frames.inc()
        header = (self.source_id << 4) | len(payload)
        frame = bytes([header]) + payload
        frame += bytes(FRAME_SIZE - len(frame))
        out += frame
        self.frames_emitted += 1
        self._frames_since_sync += 1
        self._m_frames.inc()
        self._m_payload.inc(len(payload))
        self._m_padding.inc(FRAME_SIZE - 1 - len(payload))
        return bytes(out)


class TpiuDeframer:
    """Receiver side: frames (or words) back to the trace byte stream.

    Starts unsynchronised: discards bytes until a full-sync frame is
    seen, then consumes 16-byte frames.  This mirrors how IGM attaches
    to an already-running trace port.

    With ``resync_hunt=True`` a malformed frame (impossible payload
    length or unexpected source ID — the symptoms of byte loss shifting
    the frame boundary) does not raise: the deframer drops sync, counts
    a ``frame_resyncs``, and hunts for the next full-sync frame, the
    recovery a real trace receiver performs.
    """

    def __init__(
        self,
        expected_source_id: Optional[int] = None,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.expected_source_id = expected_source_id
        self.resync_hunt = resync_hunt
        self._synced = False
        self._buffer = bytearray()
        self.frames_consumed = 0
        self.bytes_discarded = 0
        self.frame_resyncs = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_frame_resyncs = self.metrics.counter("tpiu.frame_resyncs")
        self._m_bytes_discarded = self.metrics.counter("tpiu.bytes_discarded")

    def _discard(self, amount: int) -> None:
        self.bytes_discarded += amount
        self._m_bytes_discarded.inc(amount)

    def _desync(self) -> None:
        """A malformed frame: drop sync and hunt for the next one."""
        self._synced = False
        self.frame_resyncs += 1
        self._m_frame_resyncs.inc()
        self._discard(FRAME_SIZE)

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "synced": self._synced,
            "buffer": bytes(self._buffer).hex(),
            "frames_consumed": self.frames_consumed,
            "bytes_discarded": self.bytes_discarded,
            "frame_resyncs": self.frame_resyncs,
        }

    def restore_state(self, state: dict) -> None:
        self._synced = state["synced"]
        self._buffer = bytearray(bytes.fromhex(state["buffer"]))
        self.frames_consumed = state["frames_consumed"]
        self.bytes_discarded = state["bytes_discarded"]
        self.frame_resyncs = state["frame_resyncs"]

    @property
    def synced(self) -> bool:
        return self._synced

    def push(self, data: bytes) -> bytes:
        """Consume frame bytes; return recovered trace payload bytes."""
        self._buffer += data
        out = bytearray()
        while True:
            if not self._synced:
                index = bytes(self._buffer).find(SYNC_FRAME)
                if index < 0:
                    # keep a tail that could be a sync prefix
                    keep = min(len(self._buffer), FRAME_SIZE - 1)
                    self._discard(len(self._buffer) - keep)
                    del self._buffer[:len(self._buffer) - keep]
                    break
                self._discard(index)
                del self._buffer[:index + FRAME_SIZE]
                self._synced = True
                continue
            if len(self._buffer) < FRAME_SIZE:
                break
            frame = bytes(self._buffer[:FRAME_SIZE])
            del self._buffer[:FRAME_SIZE]
            if frame == SYNC_FRAME:
                continue
            header = frame[0]
            source_id = header >> 4
            length = header & 0x0F
            if length > PAYLOAD_PER_FRAME:
                if self.resync_hunt:
                    self._desync()
                    continue
                raise FrameSyncError(f"impossible payload length {length}")
            if (
                self.expected_source_id is not None
                and source_id != self.expected_source_id
            ):
                if self.resync_hunt:
                    self._desync()
                    continue
                raise FrameSyncError(
                    f"unexpected trace source {source_id:#x} "
                    f"(wanted {self.expected_source_id:#x})"
                )
            out += frame[1:1 + length]
            self.frames_consumed += 1
        return bytes(out)

    def push_words(self, words: Iterable[int]) -> bytes:
        return self.push(words_to_bytes(list(words)))
