"""Golden software decoder for the PFT-inspired packet stream.

This is the reference the hardware trace analyzer (IGM) is verified
against — the role the paper's step-4 "verify" plays for ML-MIAOW, here
applied to the trace path.  The decoder is fully streaming: bytes can
be fed in arbitrary chunks and packet state is carried across calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.coresight.packets import (
    ASYNC_FILL_COUNT,
    BRANCH_ADDR_MAX_BYTES,
    ExceptionType,
    HEADER_ASYNC_END,
    HEADER_ASYNC_FILL,
    HEADER_CONTEXT_ID,
    HEADER_IGNORE,
    HEADER_ISYNC,
    HEADER_TIMESTAMP,
    decode_atom_byte,
    is_atom_header,
    is_branch_header,
    merge_compressed_address,
)
from repro.errors import PacketDecodeError
from repro.obs import MetricsRegistry, NULL_REGISTRY

_ADDR_BITS_BY_COUNT = [6, 13, 20, 27, 30]


@dataclass(frozen=True)
class DecodedBranch:
    """One taken branch recovered from the stream."""

    address: int
    exception: ExceptionType = ExceptionType.NONE

    @property
    def is_syscall(self) -> bool:
        return self.exception is ExceptionType.SVC


@dataclass(frozen=True)
class DecodedAtom:
    taken: bool


@dataclass(frozen=True)
class DecodedISync:
    address: int
    context_id: int


@dataclass(frozen=True)
class DecodedContext:
    context_id: int


@dataclass(frozen=True)
class DecodedTimestamp:
    cycles: int


@dataclass(frozen=True)
class TruncatedPacket:
    """End-of-stream marker: a packet was cut off mid-flight.

    Emitted by :meth:`PftDecoder.finish` on non-strict decoders (strict
    ones raise instead) so callers can distinguish "stream ended
    cleanly" from "the tail packet was truncated" without depending on
    flush order.
    """

    state: str
    pending_bytes: int


class _State(enum.Enum):
    IDLE = "idle"
    ASYNC = "async"
    ISYNC = "isync"
    CONTEXT = "context"
    TIMESTAMP = "timestamp"
    BRANCH = "branch"
    BRANCH_EXC = "branch-exc"
    HUNT = "hunt"


class PftDecoder:
    """Streaming packet decoder.

    Three error-handling modes:

    - ``strict=True`` (default): any malformed byte raises
      :class:`PacketDecodeError` — the golden-verification mode.
    - ``strict=False``: legacy lenient mode; unknown bytes are skipped
      in place and decoding continues optimistically.
    - ``resync_hunt=True``: full recovery mode.  Any decode error (and
      start-of-stream) puts the decoder into a *hunt* state that scans
      for the next a-sync burst, re-locks there, and counts the event
      in ``resyncs`` / the ``coresight.decoder.resyncs`` counter.  The
      initial lock of a late-attaching decoder is not a resync.
    """

    def __init__(
        self,
        strict: bool = True,
        resync_hunt: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.strict = strict
        self.resync_hunt = resync_hunt
        self._state = _State.HUNT if resync_hunt else _State.IDLE
        self._scratch: List[int] = []
        self._zeros = 0
        self._last_address = 0
        self._branch_complete = False
        self._ever_locked = False
        self.resyncs = 0
        self.truncated = 0
        self.hunt_bytes = 0
        self.metrics = metrics or NULL_REGISTRY
        self._m_resyncs = self.metrics.counter("coresight.decoder.resyncs")
        self._m_truncated = self.metrics.counter(
            "coresight.decoder.truncated"
        )
        self._m_hunt_bytes = self.metrics.counter(
            "coresight.decoder.hunt_bytes"
        )

    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> List[object]:
        """Decode a chunk; returns the packets completed by it."""
        out: List[object] = []
        for byte in data:
            decoded = self._step(byte)
            if decoded is not None:
                out.extend(decoded)
        return out

    def branches(self, data: bytes) -> List[DecodedBranch]:
        """Feed and keep only the branch-address packets."""
        return [p for p in self.feed(data) if isinstance(p, DecodedBranch)]

    def step_byte(self, byte: int) -> List[object]:
        """Decode exactly one byte (the TA-unit per-lane granularity)."""
        return self._step(byte) or []

    def finish(self) -> List[object]:
        """Declare end-of-stream; surface a truncated trailing packet.

        A decoder left mid-packet has lost data: strict decoders raise
        :class:`PacketDecodeError`, others count the event and return a
        :class:`TruncatedPacket` marker.  Idle (or hunting) decoders
        return ``[]``.  Either way the decoder is reset to its start
        state, ready for a new stream.
        """
        state = self._state
        if state in (_State.IDLE, _State.HUNT):
            return []
        pending = self._zeros if state is _State.ASYNC else len(self._scratch)
        self._scratch = []
        self._zeros = 0
        self._state = _State.HUNT if self.resync_hunt else _State.IDLE
        self.truncated += 1
        self._m_truncated.inc()
        if self.strict and not self.resync_hunt:
            raise PacketDecodeError(
                f"truncated {state.value} packet at end of stream "
                f"({pending} byte(s) pending)"
            )
        return [TruncatedPacket(state=state.value, pending_bytes=pending)]

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "state": self._state.value,
            "scratch": list(self._scratch),
            "zeros": self._zeros,
            "last_address": self._last_address,
            "branch_complete": self._branch_complete,
            "ever_locked": self._ever_locked,
            "resyncs": self.resyncs,
            "truncated": self.truncated,
            "hunt_bytes": self.hunt_bytes,
        }

    def restore_state(self, state: dict) -> None:
        self._state = _State(state["state"])
        self._scratch = list(state["scratch"])
        self._zeros = state["zeros"]
        self._last_address = state["last_address"]
        self._branch_complete = state["branch_complete"]
        self._ever_locked = state["ever_locked"]
        self.resyncs = state["resyncs"]
        self.truncated = state["truncated"]
        self.hunt_bytes = state["hunt_bytes"]

    # ------------------------------------------------------------------

    def _begin_hunt(self, byte: Optional[int]) -> Optional[List[object]]:
        """Enter hunt mode after an error; optionally retry ``byte``."""
        self._scratch = []
        self._zeros = 0
        self._state = _State.HUNT
        if byte is None:
            return None
        return self._hunt(byte)

    def _hunt(self, byte: int) -> Optional[List[object]]:
        """Scan for the a-sync pattern (>=5 x 0x00 then 0x80)."""
        if byte == HEADER_ASYNC_FILL:
            self._zeros += 1
            return None
        if byte == HEADER_ASYNC_END and self._zeros >= ASYNC_FILL_COUNT:
            self._state = _State.IDLE
            self._zeros = 0
            if self._ever_locked:
                self.resyncs += 1
                self._m_resyncs.inc()
            self._ever_locked = True
            return []
        self.hunt_bytes += self._zeros + 1
        self._m_hunt_bytes.inc(self._zeros + 1)
        self._zeros = 0
        return None

    def _step(self, byte: int) -> Optional[List[object]]:
        state = self._state
        if state is _State.HUNT:
            return self._hunt(byte)
        if state is _State.IDLE:
            return self._handle_header(byte)
        if state is _State.ASYNC:
            if byte == HEADER_ASYNC_FILL:
                self._zeros += 1
                return None
            if byte == HEADER_ASYNC_END and self._zeros >= ASYNC_FILL_COUNT:
                self._state = _State.IDLE
                self._zeros = 0
                self._ever_locked = True
                return []
            if self.resync_hunt:
                return self._begin_hunt(byte)
            if self.strict:
                raise PacketDecodeError(
                    f"bad a-sync termination byte {byte:#04x}"
                )
            self._state = _State.IDLE
            self._zeros = 0
            return self._handle_header(byte)
        if state is _State.ISYNC:
            self._scratch.append(byte)
            if len(self._scratch) == 5:
                address = int.from_bytes(bytes(self._scratch[:4]), "little")
                context = self._scratch[4]
                self._scratch = []
                self._state = _State.IDLE
                self._last_address = address
                return [DecodedISync(address=address, context_id=context)]
            return None
        if state is _State.CONTEXT:
            self._scratch.append(byte)
            if len(self._scratch) == 4:
                context = int.from_bytes(bytes(self._scratch), "little")
                self._scratch = []
                self._state = _State.IDLE
                return [DecodedContext(context_id=context)]
            return None
        if state is _State.TIMESTAMP:
            self._scratch.append(byte)
            if len(self._scratch) == 8:
                cycles = int.from_bytes(bytes(self._scratch), "little")
                self._scratch = []
                self._state = _State.IDLE
                return [DecodedTimestamp(cycles=cycles)]
            return None
        if state is _State.BRANCH:
            self._scratch.append(byte)
            return self._maybe_finish_branch()
        if state is _State.BRANCH_EXC:
            return self._finish_branch_with_exception(byte)
        raise PacketDecodeError(f"decoder in impossible state {state}")

    def _handle_header(self, byte: int) -> Optional[List[object]]:
        if byte == HEADER_ASYNC_FILL:
            self._state = _State.ASYNC
            self._zeros = 1
            return None
        if byte == HEADER_IGNORE:
            return []
        if is_branch_header(byte):
            self._scratch = [byte]
            self._state = _State.BRANCH
            return self._maybe_finish_branch()
        if is_atom_header(byte):
            return [DecodedAtom(taken=a) for a in decode_atom_byte(byte)]
        if byte == HEADER_ISYNC:
            self._state = _State.ISYNC
            self._scratch = []
            return None
        if byte == HEADER_CONTEXT_ID:
            self._state = _State.CONTEXT
            self._scratch = []
            return None
        if byte == HEADER_TIMESTAMP:
            self._state = _State.TIMESTAMP
            self._scratch = []
            return None
        if self.resync_hunt:
            return self._begin_hunt(byte)
        if self.strict:
            raise PacketDecodeError(f"unknown header byte {byte:#04x}")
        return []

    def _maybe_finish_branch(self) -> Optional[List[object]]:
        count = len(self._scratch)
        last = self._scratch[-1]
        full_length = count == BRANCH_ADDR_MAX_BYTES
        if not full_length and (last & 0x80):
            return None  # continuation bit set, more bytes coming
        if full_length and (self._scratch[-1] & 0x40):
            self._state = _State.BRANCH_EXC
            return None
        return self._complete_branch(ExceptionType.NONE)

    def _finish_branch_with_exception(self, info_byte: int) -> List[object]:
        try:
            exception = ExceptionType(info_byte & 0x0F)
        except ValueError:
            if self.resync_hunt:
                return self._begin_hunt(info_byte) or []
            if self.strict:
                raise PacketDecodeError(
                    f"unknown exception type {info_byte & 0x0F}"
                ) from None
            exception = ExceptionType.NONE
        return self._complete_branch(exception)

    def _complete_branch(self, exception: ExceptionType) -> List[object]:
        word = 0
        shift = 0
        for index, byte in enumerate(self._scratch):
            if index == 0:
                word |= ((byte >> 1) & 0x3F) << shift
                shift += 6
            elif index == BRANCH_ADDR_MAX_BYTES - 1:
                word |= (byte & 0x07) << shift
                shift += 3
            else:
                word |= (byte & 0x7F) << shift
                shift += 7
        received_bits = _ADDR_BITS_BY_COUNT[len(self._scratch) - 1]
        address = merge_compressed_address(
            word, received_bits, self._last_address
        )
        self._last_address = address
        self._scratch = []
        self._state = _State.IDLE
        return [DecodedBranch(address=address, exception=exception)]
