"""Golden software decoder for the PFT-inspired packet stream.

This is the reference the hardware trace analyzer (IGM) is verified
against — the role the paper's step-4 "verify" plays for ML-MIAOW, here
applied to the trace path.  The decoder is fully streaming: bytes can
be fed in arbitrary chunks and packet state is carried across calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.coresight.packets import (
    ASYNC_FILL_COUNT,
    BRANCH_ADDR_MAX_BYTES,
    ExceptionType,
    HEADER_ASYNC_END,
    HEADER_ASYNC_FILL,
    HEADER_CONTEXT_ID,
    HEADER_IGNORE,
    HEADER_ISYNC,
    HEADER_TIMESTAMP,
    decode_atom_byte,
    is_atom_header,
    is_branch_header,
    merge_compressed_address,
)
from repro.errors import PacketDecodeError

_ADDR_BITS_BY_COUNT = [6, 13, 20, 27, 30]


@dataclass(frozen=True)
class DecodedBranch:
    """One taken branch recovered from the stream."""

    address: int
    exception: ExceptionType = ExceptionType.NONE

    @property
    def is_syscall(self) -> bool:
        return self.exception is ExceptionType.SVC


@dataclass(frozen=True)
class DecodedAtom:
    taken: bool


@dataclass(frozen=True)
class DecodedISync:
    address: int
    context_id: int


@dataclass(frozen=True)
class DecodedContext:
    context_id: int


@dataclass(frozen=True)
class DecodedTimestamp:
    cycles: int


class _State(enum.Enum):
    IDLE = "idle"
    ASYNC = "async"
    ISYNC = "isync"
    CONTEXT = "context"
    TIMESTAMP = "timestamp"
    BRANCH = "branch"
    BRANCH_EXC = "branch-exc"


class PftDecoder:
    """Streaming packet decoder."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._state = _State.IDLE
        self._scratch: List[int] = []
        self._zeros = 0
        self._last_address = 0
        self._branch_complete = False

    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> List[object]:
        """Decode a chunk; returns the packets completed by it."""
        out: List[object] = []
        for byte in data:
            decoded = self._step(byte)
            if decoded is not None:
                out.extend(decoded)
        return out

    def branches(self, data: bytes) -> List[DecodedBranch]:
        """Feed and keep only the branch-address packets."""
        return [p for p in self.feed(data) if isinstance(p, DecodedBranch)]

    def step_byte(self, byte: int) -> List[object]:
        """Decode exactly one byte (the TA-unit per-lane granularity)."""
        return self._step(byte) or []

    # ------------------------------------------------------------------

    def _step(self, byte: int) -> Optional[List[object]]:
        state = self._state
        if state is _State.IDLE:
            return self._handle_header(byte)
        if state is _State.ASYNC:
            if byte == HEADER_ASYNC_FILL:
                self._zeros += 1
                return None
            if byte == HEADER_ASYNC_END and self._zeros >= ASYNC_FILL_COUNT:
                self._state = _State.IDLE
                self._zeros = 0
                return []
            if self.strict:
                raise PacketDecodeError(
                    f"bad a-sync termination byte {byte:#04x}"
                )
            self._state = _State.IDLE
            self._zeros = 0
            return self._handle_header(byte)
        if state is _State.ISYNC:
            self._scratch.append(byte)
            if len(self._scratch) == 5:
                address = int.from_bytes(bytes(self._scratch[:4]), "little")
                context = self._scratch[4]
                self._scratch = []
                self._state = _State.IDLE
                self._last_address = address
                return [DecodedISync(address=address, context_id=context)]
            return None
        if state is _State.CONTEXT:
            self._scratch.append(byte)
            if len(self._scratch) == 4:
                context = int.from_bytes(bytes(self._scratch), "little")
                self._scratch = []
                self._state = _State.IDLE
                return [DecodedContext(context_id=context)]
            return None
        if state is _State.TIMESTAMP:
            self._scratch.append(byte)
            if len(self._scratch) == 8:
                cycles = int.from_bytes(bytes(self._scratch), "little")
                self._scratch = []
                self._state = _State.IDLE
                return [DecodedTimestamp(cycles=cycles)]
            return None
        if state is _State.BRANCH:
            self._scratch.append(byte)
            return self._maybe_finish_branch()
        if state is _State.BRANCH_EXC:
            return self._finish_branch_with_exception(byte)
        raise PacketDecodeError(f"decoder in impossible state {state}")

    def _handle_header(self, byte: int) -> Optional[List[object]]:
        if byte == HEADER_ASYNC_FILL:
            self._state = _State.ASYNC
            self._zeros = 1
            return None
        if byte == HEADER_IGNORE:
            return []
        if is_branch_header(byte):
            self._scratch = [byte]
            self._state = _State.BRANCH
            return self._maybe_finish_branch()
        if is_atom_header(byte):
            return [DecodedAtom(taken=a) for a in decode_atom_byte(byte)]
        if byte == HEADER_ISYNC:
            self._state = _State.ISYNC
            self._scratch = []
            return None
        if byte == HEADER_CONTEXT_ID:
            self._state = _State.CONTEXT
            self._scratch = []
            return None
        if byte == HEADER_TIMESTAMP:
            self._state = _State.TIMESTAMP
            self._scratch = []
            return None
        if self.strict:
            raise PacketDecodeError(f"unknown header byte {byte:#04x}")
        return []

    def _maybe_finish_branch(self) -> Optional[List[object]]:
        count = len(self._scratch)
        last = self._scratch[-1]
        full_length = count == BRANCH_ADDR_MAX_BYTES
        if not full_length and (last & 0x80):
            return None  # continuation bit set, more bytes coming
        if full_length and (self._scratch[-1] & 0x40):
            self._state = _State.BRANCH_EXC
            return None
        return self._complete_branch(ExceptionType.NONE)

    def _finish_branch_with_exception(self, info_byte: int) -> List[object]:
        try:
            exception = ExceptionType(info_byte & 0x0F)
        except ValueError:
            if self.strict:
                raise PacketDecodeError(
                    f"unknown exception type {info_byte & 0x0F}"
                ) from None
            exception = ExceptionType.NONE
        return self._complete_branch(exception)

    def _complete_branch(self, exception: ExceptionType) -> List[object]:
        word = 0
        shift = 0
        for index, byte in enumerate(self._scratch):
            if index == 0:
                word |= ((byte >> 1) & 0x3F) << shift
                shift += 6
            elif index == BRANCH_ADDR_MAX_BYTES - 1:
                word |= (byte & 0x07) << shift
                shift += 3
            else:
                word |= (byte & 0x7F) << shift
                shift += 7
        received_bits = _ADDR_BITS_BY_COUNT[len(self._scratch) - 1]
        address = merge_compressed_address(
            word, received_bits, self._last_address
        )
        self._last_address = address
        self._scratch = []
        self._state = _State.IDLE
        return [DecodedBranch(address=address, exception=exception)]
