"""PTM model: branch event stream -> compressed trace packet stream.

Operates in *branch-broadcast* mode: every taken branch emits a
branch-address packet (prefix-compressed against the previous one),
not-taken conditionals accumulate into atom packets.  This is the ETM
configuration used when the trace sink cannot consult the program
image — exactly RTAD's situation, where the IGM must recover target
addresses from the stream alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.coresight.packets import (
    AsyncPacket,
    AtomPacket,
    BranchAddressPacket,
    ContextIdPacket,
    ExceptionType,
    ISyncPacket,
    MAX_ATOMS_PER_PACKET,
    TimestampPacket,
)
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.workloads.cfg import BranchEvent, BranchKind


@dataclass
class PtmConfig:
    """PTM programming model (a subset of the real control registers)."""

    context_id: int = 1
    #: Re-emit a-sync + i-sync after this many trace bytes.
    sync_interval_bytes: int = 1024
    #: Emit cycle-count timestamps alongside i-sync packets.
    timestamps_enabled: bool = False
    #: Branch-broadcast: emit an address packet for every taken branch.
    branch_broadcast: bool = True


class Ptm:
    """Stateful packet encoder for one traced context."""

    def __init__(
        self,
        config: Optional[PtmConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or PtmConfig()
        self._last_address = 0
        self._pending_atoms: List[bool] = []
        self._bytes_since_sync = 0
        self._started = False
        self.total_bytes = 0
        self.packet_counts = {
            "async": 0, "isync": 0, "context": 0,
            "timestamp": 0, "atom": 0, "branch": 0,
        }
        self.metrics = metrics or NULL_REGISTRY
        self._m_events = self.metrics.counter("ptm.events")
        self._m_bytes = self.metrics.counter("ptm.bytes")
        self._m_sync_bytes = self.metrics.counter("ptm.sync_bytes")
        self._m_packets = {
            kind: self.metrics.counter(f"ptm.packets.{kind}")
            for kind in self.packet_counts
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def feed(self, event: BranchEvent) -> bytes:
        """Encode one branch event; returns the bytes it produced.

        The caller owns delivery timing — the PTM is a pure encoder,
        and the SoC layer models the CPU-internal FIFO that batches
        these bytes before the TPIU drains them.
        """
        self._m_events.inc()
        out = bytearray()
        if not self._started:
            out += self._emit_sync(event)
            self._started = True

        if event.kind is BranchKind.CONDITIONAL and not event.taken:
            self._pending_atoms.append(False)
            if len(self._pending_atoms) >= MAX_ATOMS_PER_PACKET:
                out += self._flush_atoms()
        else:
            out += self._flush_atoms()
            if not self.config.branch_broadcast and event.kind in (
                BranchKind.CONDITIONAL,
                BranchKind.UNCONDITIONAL,
            ):
                # Waypoint-only mode: direct branches become E atoms.
                self._pending_atoms.append(True)
            else:
                exception = (
                    ExceptionType.SVC
                    if event.kind is BranchKind.SYSCALL
                    else ExceptionType.NONE
                )
                packet = BranchAddressPacket(event.target, exception)
                encoded = packet.encode(previous=self._last_address)
                self._last_address = event.target
                self.packet_counts["branch"] += 1
                self._m_packets["branch"].inc()
                out += encoded

        self._account(out)
        if self._bytes_since_sync >= self.config.sync_interval_bytes:
            sync = self._emit_sync(event)
            self._account(sync)
            out += sync
        return bytes(out)

    def flush(self) -> bytes:
        """Emit any buffered atoms (end of trace session)."""
        out = self._flush_atoms()
        self._account(out)
        return bytes(out)

    def switch_context(self, context_id: int) -> bytes:
        """Process switch: flush atoms, emit a context-ID packet.

        PTM "captures ... current process IDs"; the OS context-switch
        hook updates the CONTEXTIDR register and the macrocell emits
        the packet, letting downstream consumers attribute branches to
        processes.
        """
        out = bytearray(self._flush_atoms())
        self.config.context_id = context_id
        out += ContextIdPacket(context_id).encode()
        self.packet_counts["context"] += 1
        self._m_packets["context"].inc()
        self._account(out)
        return bytes(out)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        return {
            "context_id": self.config.context_id,
            "last_address": self._last_address,
            "pending_atoms": list(self._pending_atoms),
            "bytes_since_sync": self._bytes_since_sync,
            "started": self._started,
            "total_bytes": self.total_bytes,
            "packet_counts": dict(self.packet_counts),
        }

    def restore_state(self, state: dict) -> None:
        self.config.context_id = state["context_id"]
        self._last_address = state["last_address"]
        self._pending_atoms = [bool(atom) for atom in state["pending_atoms"]]
        self._bytes_since_sync = state["bytes_since_sync"]
        self._started = state["started"]
        self.total_bytes = state["total_bytes"]
        self.packet_counts = dict(state["packet_counts"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _account(self, chunk: bytes) -> None:
        self.total_bytes += len(chunk)
        self._bytes_since_sync += len(chunk)
        self._m_bytes.inc(len(chunk))

    def _flush_atoms(self) -> bytes:
        if not self._pending_atoms:
            return b""
        packet = AtomPacket(tuple(self._pending_atoms))
        self._pending_atoms = []
        self.packet_counts["atom"] += 1
        self._m_packets["atom"].inc()
        return packet.encode()

    def _emit_sync(self, event: BranchEvent) -> bytes:
        """A-sync, i-sync (+context, +timestamp) burst."""
        self._bytes_since_sync = 0
        out = bytearray()
        out += AsyncPacket().encode()
        self.packet_counts["async"] += 1
        self._m_packets["async"].inc()
        # Sync to the branch *source* block start (word aligned already).
        out += ISyncPacket(
            address=event.source & ~0x3, context_id=self.config.context_id
        ).encode()
        self.packet_counts["isync"] += 1
        self._m_packets["isync"].inc()
        out += ContextIdPacket(self.config.context_id).encode()
        self.packet_counts["context"] += 1
        self._m_packets["context"].inc()
        if self.config.timestamps_enabled:
            out += TimestampPacket(max(0, event.cycle)).encode()
            self.packet_counts["timestamp"] += 1
            self._m_packets["timestamp"].inc()
        # After a sync point compression restarts from a known address.
        self._last_address = event.source & ~0x3
        self._m_sync_bytes.inc(len(out))
        return bytes(out)


def encode_trace(
    events, config: Optional[PtmConfig] = None
) -> bytes:
    """Convenience: encode a whole event sequence into one byte stream."""
    ptm = Ptm(config)
    out = bytearray()
    for event in events:
        out += ptm.feed(event)
    out += ptm.flush()
    return bytes(out)
