"""Kernel-driver-style configuration facade for the CoreSight path.

The paper notes: "To activate the functionalities of PTM and TPIU, we
have also built a device driver running on the Linux kernel."  This
class plays that role for the simulation: it owns the PTM and TPIU
instances, exposes an enable/disable and configuration surface, and
provides the end-to-end convenience used by data collection (training
trace extraction through the same hardware path used at inference).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.coresight.ptm import Ptm, PtmConfig
from repro.coresight.tpiu import Tpiu, TpiuDeframer
from repro.errors import SocConfigError
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.workloads.cfg import BranchEvent


class CoreSightDriver:
    """Configures and drives the PTM -> TPIU trace path."""

    def __init__(
        self,
        ptm_config: Optional[PtmConfig] = None,
        source_id: int = 0x1,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.ptm_config = ptm_config or PtmConfig()
        self.source_id = source_id
        self.sync_period = sync_period
        self.metrics = metrics or NULL_REGISTRY
        self._ptm: Optional[Ptm] = None
        self._tpiu: Optional[Tpiu] = None
        self.enabled = False

    # ------------------------------------------------------------------
    # Control-plane (what the kernel driver's ioctls would do)
    # ------------------------------------------------------------------

    def enable(self) -> None:
        """Power up PTM and TPIU with the current configuration."""
        self._ptm = Ptm(self.ptm_config, metrics=self.metrics)
        self._tpiu = Tpiu(
            source_id=self.source_id,
            sync_period=self.sync_period,
            metrics=self.metrics,
        )
        self.enabled = True

    def disable(self) -> None:
        self._ptm = None
        self._tpiu = None
        self.enabled = False

    def set_context_id(self, context_id: int) -> None:
        """Track a different process (takes effect on next enable)."""
        if self.enabled:
            raise SocConfigError("disable tracing before reconfiguring")
        self.ptm_config.context_id = context_id

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (see repro.durability)."""
        if not self.enabled or self._ptm is None or self._tpiu is None:
            raise SocConfigError("CoreSight path not enabled")
        return {
            "ptm": self._ptm.export_state(),
            "tpiu": self._tpiu.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.disable()
        self.enable()
        assert self._ptm is not None and self._tpiu is not None
        self._ptm.restore_state(state["ptm"])
        self._tpiu.restore_state(state["tpiu"])

    # ------------------------------------------------------------------
    # Data-plane
    # ------------------------------------------------------------------

    def trace(self, event: BranchEvent) -> bytes:
        """Push one branch event through PTM; returns TPIU frame bytes."""
        if not self.enabled or self._ptm is None or self._tpiu is None:
            raise SocConfigError("CoreSight path not enabled")
        packet_bytes = self._ptm.feed(event)
        return self._tpiu.push(packet_bytes)

    def flush(self) -> bytes:
        if not self.enabled or self._ptm is None or self._tpiu is None:
            raise SocConfigError("CoreSight path not enabled")
        out = self._tpiu.push(self._ptm.flush())
        out += self._tpiu.flush()
        return out

    def trace_all(self, events: Iterable[BranchEvent]) -> bytes:
        """Trace a whole event stream and flush (training collection)."""
        out = bytearray()
        for event in events:
            out += self.trace(event)
        out += self.flush()
        return bytes(out)

    @staticmethod
    def new_deframer(source_id: int = 0x1) -> TpiuDeframer:
        """Receiver for the framed stream (what IGM instantiates)."""
        return TpiuDeframer(expected_source_id=source_id)
