"""RTAD reproduction: real-time anomalous branch behavior inference
with a GPU-inspired engine for machine learning models (DATE 2019).

The package is organized bottom-up:

- :mod:`repro.workloads`  — SPEC CINT2006-like synthetic programs
- :mod:`repro.coresight`  — PTM/TPIU trace substrate
- :mod:`repro.igm`        — Input Generation Module
- :mod:`repro.miaow`      — MIAOW GPU simulator + trimming flow
- :mod:`repro.synthesis`  — FPGA/ASIC area accounting
- :mod:`repro.ml`         — ELM / LSTM models and kernel compilation
- :mod:`repro.mcm`        — ML Computing Module
- :mod:`repro.soc`        — the assembled RTAD MPSoC
- :mod:`repro.eval`       — one module per paper table/figure

Quickstart::

    from repro.eval.prep import get_bundle, make_ml_miaow

    bundle = get_bundle("403.gcc", "lstm")
    soc = bundle.make_soc(make_ml_miaow())
    result = soc.run_attack_trial(
        normal_ids=bundle.normal_ids[:400],
        mean_interval_us=bundle.mean_interval_us,
        gadget_ids=[1, 5, 9, 2, 7, 4, 3, 8],
        onset_index=200,
    )
    print(result.detected, result.detection_latency_us)
"""

__version__ = "0.1.0"

from repro.errors import RtadError

__all__ = ["RtadError", "__version__"]
