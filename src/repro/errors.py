"""Exception hierarchy for the RTAD reproduction.

Every error raised by this package derives from :class:`RtadError`, so
callers can catch one base class at the SoC boundary.  Sub-hierarchies
mirror the hardware structure: trace-stream errors, GPU errors, and
SoC-level simulation errors.
"""

from __future__ import annotations


class RtadError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


#: Package-level alias: callers outside the SoC vocabulary catch
#: ``ReproError`` at the service boundary (repro.serve, repro.eval).
ReproError = RtadError


# ---------------------------------------------------------------------------
# Trace / CoreSight layer
# ---------------------------------------------------------------------------

class TraceError(RtadError):
    """Base class for CoreSight trace-stream errors."""


class PacketDecodeError(TraceError):
    """A PTM packet could not be decoded (malformed or truncated)."""


class PacketEncodeError(TraceError):
    """A branch event could not be encoded into a PTM packet."""


class FrameSyncError(TraceError):
    """The TPIU frame stream lost synchronisation."""


# ---------------------------------------------------------------------------
# IGM layer
# ---------------------------------------------------------------------------

class IgmError(RtadError):
    """Base class for Input Generation Module errors."""


class MapperConfigError(IgmError):
    """The address-mapper lookup table configuration is invalid."""


class EncoderConfigError(IgmError):
    """The vector-encoder conversion table configuration is invalid."""


# ---------------------------------------------------------------------------
# GPU (MIAOW) layer
# ---------------------------------------------------------------------------

class GpuError(RtadError):
    """Base class for MIAOW / ML-MIAOW simulator errors."""


class AssemblerError(GpuError):
    """Assembly source could not be assembled."""


class IllegalInstructionError(GpuError):
    """A wavefront executed an opcode the engine does not implement.

    On a trimmed engine this is the hardware analogue of hitting logic
    that was removed by the trimming flow.
    """


class GpuMemoryError(GpuError):
    """Out-of-range or misaligned access to GPU global memory or LDS."""


class KernelLaunchError(GpuError):
    """A kernel launch request was malformed (bad NDRange, missing args)."""


class TrimmingError(GpuError):
    """The trimming flow failed (e.g. verification mismatch)."""


# ---------------------------------------------------------------------------
# MCM / SoC layer
# ---------------------------------------------------------------------------

class McmError(RtadError):
    """Base class for ML Computing Module errors."""


class FifoOverflowError(McmError):
    """A push was attempted on a full FIFO configured to raise."""


class FsmProtocolError(McmError):
    """The MCM control FSM received an event illegal in its state."""


class SocConfigError(RtadError):
    """The RTAD SoC was wired or configured inconsistently."""


class TenantCrashError(RtadError):
    """A tenant's monitored program (or its trace source) died mid-run.

    Raised by the fault-injection layer; :class:`repro.soc.manager.
    SocManager` catches it, quarantines the tenant, and keeps serving
    the healthy ones.
    """


class DurabilityError(RtadError):
    """Base class for write-ahead journal / recovery errors."""


class JournalCorruptionError(DurabilityError):
    """A journal segment failed validation beyond the tolerated torn tail.

    A truncated record at the very end of the *last* segment is expected
    after a crash and silently dropped; a bad CRC, length, or sequence
    anywhere else means the journal was corrupted on disk and replaying
    it would diverge from the original run.
    """


class ProcessCrashError(DurabilityError):
    """A simulated whole-process crash fired at an injected crash point.

    Raised by :class:`repro.faults.crashpoints.CrashPointInjector`; the
    recovery harness catches it, reopens the journal, and replays.
    """


class ServeError(RtadError):
    """Base class for ingestion front-door (repro.serve) errors."""


class FrameProtocolError(ServeError):
    """A client frame violated the length-prefixed wire protocol."""


class FleetError(RtadError):
    """Base class for sharded-fleet (repro.fleet) errors."""


class TransportError(FleetError):
    """A fleet transport failed to move a round payload or reply.

    Raised for torn shared-memory slots (CRC/sequence mismatch — the
    durability layer's integrity vocabulary applied to the ring), for
    descriptors a worker cannot map (attach failure), and for rings
    that cannot be created.  The coordinator reacts by falling back to
    the pipe transport, never by dropping the round.
    """


class ShardDeadError(FleetError):
    """A worker shard died (or missed its heartbeat deadline) and the
    supervisor's restart budget could not bring it back."""


class WorkloadError(RtadError):
    """A synthetic workload description is invalid."""


class ModelError(RtadError):
    """An ML model was used before fit / with inconsistent shapes."""


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

class Backoff:
    """Bounded exponential backoff with deterministic seeded jitter.

    One retry policy shared by every layer that hands out "try again
    later" decisions: the serve front door's SHED retry-after hints and
    the fleet supervisor's worker-restart delays.  ``delay(attempt)``
    is a pure function — the jitter fraction is derived by hashing
    ``(seed, label, attempt)``, so a given policy always produces the
    same schedule (tests and chaos runs stay reproducible) while
    distinct labels/seeds de-correlate, which is what jitter is for
    (no thundering-herd retry alignment across clients or shards).
    """

    def __init__(
        self,
        base_s: float,
        cap_s: float,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        label: str = "backoff",
    ) -> None:
        if not base_s > 0:
            raise RtadError(f"base_s must be positive, got {base_s!r}")
        if cap_s < base_s:
            raise RtadError(
                f"cap_s must be >= base_s, got {cap_s!r} < {base_s!r}"
            )
        if multiplier < 1.0:
            raise RtadError(
                f"multiplier must be >= 1, got {multiplier!r}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise RtadError(f"jitter must be in [0, 1], got {jitter!r}")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.label = str(label)

    def _fraction(self, attempt: int) -> float:
        """Deterministic jitter fraction in [0, 1) for one attempt."""
        import hashlib

        digest = hashlib.sha256(
            f"{self.seed}:{self.label}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def delay(self, attempt: int) -> float:
        """Delay in seconds before retry number ``attempt`` (0-based).

        The undithered curve is ``min(cap_s, base_s * multiplier **
        attempt)``; jitter then scales it into ``[(1 - jitter) * full,
        full]`` ("equal jitter": the floor keeps an escalating lower
        bound, so a retry storm still spreads without collapsing the
        backoff guarantee).
        """
        if attempt < 0:
            raise RtadError(f"attempt must be >= 0, got {attempt!r}")
        full = min(self.cap_s, self.base_s * self.multiplier ** attempt)
        spread = full * self.jitter
        return (full - spread) + spread * self._fraction(attempt)

    def schedule(self, attempts: int) -> "list[float]":
        """The first ``attempts`` delays, as a list (for display/tests)."""
        return [self.delay(index) for index in range(attempts)]
