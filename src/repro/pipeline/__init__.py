"""Staged dataplane: the batched trace-path pipeline.

The per-event loop in :meth:`repro.soc.rtad.RtadSoc.run_events` is
re-expressed here as composable *stages* connected by bounded *ports*:

- :class:`~repro.pipeline.stage.Stage` — the protocol every stage
  implements (``process(batch) -> batch`` plus ``flush()``),
- :class:`~repro.pipeline.port.Port` — a bounded ring buffer with
  backpressure/overflow accounting (MCM FIFO semantics),
- :class:`~repro.pipeline.pipeline.Pipeline` — the assembler that
  wires stages with ports and threads ``repro.obs`` instruments
  through every connection,
- :mod:`~repro.pipeline.stages` — the concrete trace-path stages
  (PTM encode, TPIU framing, PTM-FIFO batching, IGM map+encode,
  delivery), rewritten to operate on numpy *batches* of events.

The batched stages are **behaviour-preserving**: every simulated
timestamp, byte count, and counter matches the per-event reference
loop bit-for-bit (``tests/test_golden_trace.py`` and
``tests/test_pipeline_equivalence.py`` pin this down), while the
vectorized internals run an order of magnitude faster on long traces.
"""

from repro.pipeline.batch import EventBatch, FifoFlush, TraceBatch
from repro.pipeline.pipeline import Pipeline, build_trace_pipeline
from repro.pipeline.port import Port, PortPolicy
from repro.pipeline.stage import Stage, StageBase
from repro.pipeline.stages import (
    DeliverStage,
    IgmStage,
    PtmEncodeStage,
    PtmFifoStage,
    TpiuFrameStage,
)

__all__ = [
    "DeliverStage",
    "EventBatch",
    "FifoFlush",
    "IgmStage",
    "Pipeline",
    "Port",
    "PortPolicy",
    "PtmEncodeStage",
    "PtmFifoStage",
    "Stage",
    "StageBase",
    "TpiuFrameStage",
    "TraceBatch",
    "build_trace_pipeline",
]
