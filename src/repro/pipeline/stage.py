"""The stage protocol of the staged dataplane.

A stage is a batch transformer with carried state: ``process`` accepts
a :class:`~repro.pipeline.batch.TraceBatch`, annotates it, and returns
it; state that spans batch boundaries (PTM compression context, TPIU
buffer occupancy, FIFO fill, encoder window) lives on the stage and is
cleared by ``reset``.  ``flush`` drains that carried state by sending
a *tail* batch through ``process`` — the batched analogue of the
end-of-trace-session flush in the per-event loop.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.pipeline.batch import TraceBatch


@runtime_checkable
class Stage(Protocol):
    """What the pipeline assembler requires of every stage."""

    name: str

    def process(self, batch: TraceBatch) -> TraceBatch:
        """Transform one batch (or drain state when ``batch.tail``)."""
        ...

    def flush(self) -> TraceBatch:
        """Drain carried state into a fresh tail batch."""
        ...

    def reset(self) -> None:
        """Forget carried state (new trace session)."""
        ...


class StageBase:
    """Shared plumbing: metrics handle, tail-flush convenience."""

    name = "stage"

    #: Stages that legitimately rewrite ``batch.events`` (e.g. fault
    #: injection) set this so the pipeline re-stamps the integrity tag
    #: after them; a mutation by any other stage is flagged as silent
    #: corruption.
    mutates_events = False

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or NULL_REGISTRY
        self._m_batches = self.metrics.counter(
            f"pipeline.stage.{self.name}.batches"
        )
        self._m_stage_events = self.metrics.counter(
            f"pipeline.stage.{self.name}.events"
        )

    def _account_batch(self, batch: TraceBatch) -> None:
        self._m_batches.inc()
        self._m_stage_events.inc(len(batch))

    def process(self, batch: TraceBatch) -> TraceBatch:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> TraceBatch:
        return self.process(TraceBatch.tail_marker())

    def reset(self) -> None:  # pragma: no cover - trivial default
        pass

    def export_state(self) -> dict:
        """JSON-able carry state for checkpointing (stateless default)."""
        return {}

    def restore_state(self, state: dict) -> None:
        pass
