"""Bounded ports connecting dataplane stages.

A :class:`Port` is a ring buffer of batches built on the MCM's
:class:`~repro.mcm.fifo.InternalFifo`, inheriting its overflow
accounting.  Two policies cover the two hardware analogues:

- ``STALL`` (default): a full port exerts *backpressure* — ``put``
  refuses the batch and counts a stall; the pipeline scheduler then
  services downstream stages first.  Nothing is ever lost.  This is
  the trace-path behaviour (CoreSight links are flow-controlled).
- ``DROP``: a full port loses the incoming batch, mirroring the MCM
  internal FIFO's "overflow loses newly sent data" semantics for
  consumers that prefer freshness over completeness.

Every port threads its depth/throughput instruments through the
shared :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import enum
from typing import Generic, Optional, TypeVar

from repro.errors import SocConfigError
from repro.mcm.fifo import InternalFifo
from repro.obs import MetricsRegistry, NULL_REGISTRY

T = TypeVar("T")


class PortPolicy(enum.Enum):
    STALL = "stall"
    DROP = "drop"


class Port(Generic[T]):
    """Bounded batch queue between two stages."""

    def __init__(
        self,
        name: str,
        capacity: int = 4,
        policy: PortPolicy = PortPolicy.STALL,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise SocConfigError(f"port {name!r} capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.policy = policy
        self._fifo: InternalFifo[T] = InternalFifo(depth=capacity)
        self.stalls = 0
        metrics = metrics or NULL_REGISTRY
        self._m_depth = metrics.gauge(f"pipeline.port.{name}.depth")
        self._m_in = metrics.counter(f"pipeline.port.{name}.batches_in")
        self._m_stalls = metrics.counter(f"pipeline.port.{name}.stalls")
        self._m_drops = metrics.counter(f"pipeline.port.{name}.drops")

    def put(self, batch: T) -> bool:
        """Enqueue a batch; False on stall (STALL) or drop (DROP)."""
        if self.full and self.policy is PortPolicy.STALL:
            self.stalls += 1
            self._m_stalls.inc()
            return False
        accepted = self._fifo.push(batch, arrival_ns=0.0)
        if accepted:
            self._m_in.inc()
            self._m_depth.set(len(self._fifo))
        else:
            self._m_drops.inc()
        return accepted

    def get(self) -> Optional[T]:
        entry = self._fifo.pop()
        if entry is None:
            return None
        self._m_depth.set(len(self._fifo))
        return entry.item

    def peek(self) -> Optional[T]:
        """The batch ``get`` would return, without consuming it."""
        entry = self._fifo.peek()
        return None if entry is None else entry.item

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def empty(self) -> bool:
        return self._fifo.empty

    @property
    def depth(self) -> int:
        return len(self._fifo)

    @property
    def drops(self) -> int:
        return self._fifo.drops

    def clear(self) -> None:
        while not self._fifo.empty:
            self._fifo.pop()
        self._m_depth.set(0)
