"""Concrete trace-path stages, batched.

Each stage reproduces one segment of the per-event reference loop in
:meth:`repro.soc.rtad.RtadSoc.run_events` — PTM packet encoding, TPIU
framing, PTM-FIFO batching, address map + vector encode, and vector
delivery — but operates on numpy arrays over whole chunks of events.

**Exactness contract.**  Every byte count, simulated timestamp, and
observability counter matches the reference loop bit-for-bit.  The
vectorized PTM encoder models the stream at the *byte-accounting*
level: per-packet lengths (prefix-compressed branch addresses, atom
packets, sync bursts) are computed with array arithmetic, and the
data-dependent sync placement is resolved with a binary-search loop
over the cumulative byte counts — one Python iteration per ~1 KiB of
trace instead of one per branch.  Configurations the fast path does
not model (waypoint mode, pathological sync intervals) fall back to
feeding a real :class:`~repro.coresight.ptm.Ptm` per event, so the
stage is always correct, merely slower off the happy path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.coresight.ptm import Ptm, PtmConfig
from repro.errors import PacketEncodeError
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import EncoderMode, InputVector, VectorEncoder
from repro.obs import MetricsRegistry
from repro.pipeline.batch import EventBatch, FifoFlush, TraceBatch
from repro.pipeline.stage import StageBase
from repro.soc.clocks import CPU_CLOCK, RTAD_CLOCK, ClockDomain

#: Branch-address diff thresholds: a diff below ``_DIFF_BOUNDS[k]``
#: fits in ``k + 1`` packet bytes (6 + 7 + 7 + 7 + 3 address bits).
_DIFF_BOUNDS = np.array(
    [1 << 6, 1 << 13, 1 << 20, 1 << 27], dtype=np.int64
)

#: a-sync (6) + i-sync (6) + context-ID (5) burst bytes.
_SYNC_BURST_BYTES = 17
#: Timestamp packet appended to the burst when enabled.
_TIMESTAMP_BYTES = 9

_TPIU_PAYLOAD = 15
_TPIU_FRAME = 16


class PtmEncodeStage(StageBase):
    """Branch events -> per-event PTM byte counts (batched).

    Carries the encoder context across batches: compression base
    address, pending atom count, bytes-since-sync, and the started
    flag — exactly the state a :class:`Ptm` holds.
    """

    name = "ptm"

    def __init__(
        self,
        config: Optional[PtmConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.config = config or PtmConfig()
        self._sync_len = _SYNC_BURST_BYTES + (
            _TIMESTAMP_BYTES if self.config.timestamps_enabled else 0
        )
        # The vectorized path assumes branch-broadcast encoding and a
        # sync interval that cannot retrigger within one burst.
        self._fast = (
            self.config.branch_broadcast
            and self.config.sync_interval_bytes > 2 * self._sync_len
        )
        self._ref_ptm: Optional[Ptm] = None
        self.reset()
        self._m_events = self.metrics.counter("ptm.events")
        self._m_bytes = self.metrics.counter("ptm.bytes")
        self._m_sync_bytes = self.metrics.counter("ptm.sync_bytes")
        self._m_packets = {
            kind: self.metrics.counter(f"ptm.packets.{kind}")
            for kind in (
                "async", "isync", "context", "timestamp", "atom", "branch",
            )
        }

    def reset(self) -> None:
        self._started = False
        self._last_address = 0
        self._pending_atoms = 0
        self._bytes_since_sync = 0
        self._ref_ptm = None

    def export_state(self) -> dict:
        return {
            "started": self._started,
            "last_address": self._last_address,
            "pending_atoms": self._pending_atoms,
            "bytes_since_sync": self._bytes_since_sync,
            "ref_ptm": (
                self._ref_ptm.export_state()
                if self._ref_ptm is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        self._started = state["started"]
        self._last_address = state["last_address"]
        self._pending_atoms = state["pending_atoms"]
        self._bytes_since_sync = state["bytes_since_sync"]
        if state["ref_ptm"] is not None:
            self._ref_ptm = Ptm(self.config, metrics=self.metrics)
            self._ref_ptm.restore_state(state["ref_ptm"])
        else:
            self._ref_ptm = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _packet_len(target: int, previous: int, syscall: bool) -> int:
        """Byte length of one branch-address packet (reference math)."""
        if syscall:
            return 6  # full 5 address bytes + exception info byte
        diff = (target >> 2) ^ ((previous >> 2) & 0x3FFFFFFF)
        for count, bound in enumerate(_DIFF_BOUNDS, start=1):
            if diff < bound:
                return count
        return 5

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            return self._process_tail(batch)
        if len(batch) == 0:
            batch.ptm_bytes = np.zeros(0, dtype=np.int64)
            return batch
        if not self._fast:
            return self._process_reference(batch)
        return self._process_fast(batch)

    def _process_tail(self, batch: TraceBatch) -> TraceBatch:
        if self._ref_ptm is not None:
            batch.tail_ptm_bytes = len(self._ref_ptm.flush())
            return batch
        if self._pending_atoms > 0:
            batch.tail_ptm_bytes = 1
            self._pending_atoms = 0
            self._bytes_since_sync += 1
            self._m_bytes.inc(1)
            self._m_packets["atom"].inc()
        return batch

    def _process_reference(self, batch: TraceBatch) -> TraceBatch:
        """Slow path: drive a real Ptm per event (exotic configs)."""
        if self._ref_ptm is None:
            self._ref_ptm = Ptm(self.config, metrics=self.metrics)
        ptm = self._ref_ptm
        assert batch.events is not None and batch.events.events is not None
        batch.ptm_bytes = np.fromiter(
            (len(ptm.feed(event)) for event in batch.events.events),
            np.int64,
            count=len(batch),
        )
        return batch

    def _process_fast(self, batch: TraceBatch) -> TraceBatch:
        ev = batch.events
        assert ev is not None
        n = len(ev)
        is_atom = ev.atom
        is_branch = ~is_atom
        bidx = np.nonzero(is_branch)[0]
        if len(bidx):
            btargets = ev.target[bidx]
            if np.any((btargets & 0x3) != 0):
                raise PacketEncodeError("branch address not word aligned")
            if np.any((btargets < 0) | (btargets > 0xFFFFFFFF)):
                raise PacketEncodeError("branch address out of range")

        # --- atom packets -------------------------------------------------
        # Atoms accumulate per run (between taken branches); a packet
        # closes at every 4th atom, and a branch flushes the remainder.
        cum_atoms = np.cumsum(is_atom.astype(np.int64))
        cum_branch = np.cumsum(is_branch.astype(np.int64))
        cum_branch_excl = cum_branch - is_branch.astype(np.int64)
        branch_marks = np.where(is_branch, cum_atoms, 0)
        prev_mark = np.concatenate(
            ([0], np.maximum.accumulate(branch_marks)[:-1])
        )
        base = np.where(cum_branch_excl == 0, self._pending_atoms, 0)
        run_count = cum_atoms - prev_mark + base
        atom_emit = is_atom & (run_count % 4 == 0)
        branch_flush = is_branch & (run_count % 4 != 0)

        nb = atom_emit.astype(np.int64)

        # --- branch-address packet lengths --------------------------------
        nbytes = np.zeros(0, dtype=np.int64)
        if len(bidx):
            word = ev.target[bidx] >> 2
            prev_word = np.empty_like(word)
            prev_word[0] = (self._last_address >> 2) & 0x3FFFFFFF
            prev_word[1:] = word[:-1]
            diff = word ^ prev_word
            nbytes = (
                np.searchsorted(_DIFF_BOUNDS, diff, side="right").astype(
                    np.int64
                )
                + 1
            )
            nbytes[ev.syscall[bidx]] = 6
            nb[bidx] = branch_flush[bidx].astype(np.int64) + nbytes

        # --- data-dependent sync placement --------------------------------
        # Walk sync-to-sync runs: inside a run the byte counts are the
        # precomputed vector above, except the *first* branch after a
        # sync restarts compression from the sync address (a patch of
        # one element).  Each run boundary is found with searchsorted
        # over the cumulative byte counts.
        interval = self.config.sync_interval_bytes
        sync_len = self._sync_len
        C = np.cumsum(nb)
        sync_events: List[int] = []
        initial_sync = False
        committed: Dict[int, int] = {}  # branch position -> length delta
        pend_pos, pend_delta, pend_event = -1, 0, n
        s = self._bytes_since_sync
        p = 0
        if not self._started:
            initial_sync = True
            sync_events.append(0)
            if len(bidx):
                reset = int(ev.source[0]) & ~0x3
                new_len = self._packet_len(
                    int(ev.target[bidx[0]]), reset, bool(ev.syscall[bidx[0]])
                )
                pend_pos = 0
                pend_delta = new_len - int(nbytes[0])
                pend_event = int(bidx[0])
            s = sync_len
            self._started = True
        while True:
            C0 = int(C[p - 1]) if p > 0 else 0
            j = -1
            hi = min(pend_event, n)
            if p < hi:
                jj = int(
                    np.searchsorted(C[p:hi], interval - s + C0, side="left")
                ) + p
                if jj < hi:
                    j = jj
            if j < 0 and pend_event < n:
                lo = max(p, pend_event)
                jj = int(
                    np.searchsorted(
                        C[lo:], interval - s + C0 - pend_delta, side="left"
                    )
                ) + lo
                if jj < n:
                    j = jj
            if j < 0:
                break
            if pend_pos >= 0 and pend_event <= j:
                # The patched branch is behind the new sync: it was
                # really encoded with the patched length.
                if pend_delta:
                    committed[pend_pos] = pend_delta
            # A pending patch *ahead* of the sync is superseded: that
            # branch restarts from the newer sync's address instead.
            sync_events.append(j)
            reset = int(ev.source[j]) & ~0x3
            k = int(np.searchsorted(bidx, j, side="right"))
            if k < len(bidx):
                fb = int(bidx[k])
                new_len = self._packet_len(
                    int(ev.target[fb]), reset, bool(ev.syscall[fb])
                )
                pend_pos, pend_delta, pend_event = (
                    k, new_len - int(nbytes[k]), fb,
                )
            else:
                pend_pos, pend_delta, pend_event = -1, 0, n
            s = sync_len
            p = j + 1
        if pend_pos >= 0 and pend_event < n and pend_delta:
            committed[pend_pos] = pend_delta
        C0 = int(C[p - 1]) if p > 0 else 0
        self._bytes_since_sync = (
            s + int(C[-1]) - C0
            + (pend_delta if pend_event < n else 0)
        )

        # --- finalize per-event byte counts -------------------------------
        for pos, delta in committed.items():
            nb[bidx[pos]] += delta
        for j in sync_events:
            nb[j] += sync_len

        # --- carry state ---------------------------------------------------
        if len(bidx):
            self._pending_atoms = int(
                cum_atoms[-1] - cum_atoms[bidx[-1]]
            ) % 4
        else:
            self._pending_atoms = (
                self._pending_atoms + int(cum_atoms[-1])
            ) % 4
        lb = int(bidx[-1]) if len(bidx) else -1
        # Mid-run syncs reset the compression base *after* the event's
        # own packet; the initial burst precedes the first packet.
        post_syncs = sync_events[1:] if initial_sync else sync_events
        ls = max(post_syncs) if post_syncs else -1
        if ls >= 0 and ls >= lb:
            self._last_address = int(ev.source[ls]) & ~0x3
        elif lb >= 0:
            self._last_address = int(ev.target[lb])
        elif initial_sync:
            self._last_address = int(ev.source[0]) & ~0x3

        # --- observability -------------------------------------------------
        num_syncs = len(sync_events)
        self._m_events.inc(n)
        self._m_bytes.inc(int(nb.sum()))
        self._m_sync_bytes.inc(sync_len * num_syncs)
        self._m_packets["branch"].inc(int(len(bidx)))
        self._m_packets["atom"].inc(
            int(atom_emit.sum()) + int(branch_flush.sum())
        )
        for kind in ("async", "isync", "context"):
            self._m_packets[kind].inc(num_syncs)
        if self.config.timestamps_enabled:
            self._m_packets["timestamp"].inc(num_syncs)

        batch.ptm_bytes = nb
        return batch


class ByteCountEncodeStage(StageBase):
    """Grammar-neutral encode stage: drives a per-event packet encoder.

    Any trace frontend whose encoder exposes ``feed(event) -> bytes``
    and ``flush() -> bytes`` (plus ``export_state``/``restore_state``)
    rides the batched dataplane through this stage.  Downstream stages
    consume only the per-event byte *counts* — framing, FIFO timing —
    so per-event reference encoding is exact by construction; grammars
    with a vectorized fast path (CoreSight) subclass or replace this
    stage rather than extend it.
    """

    def __init__(
        self,
        name: str,
        encoder_factory: Callable[[], object],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # Counter names derive from ``self.name`` inside StageBase, so
        # the instance attribute must exist before super().__init__.
        self.name = name
        super().__init__(metrics=metrics)
        self._encoder_factory = encoder_factory
        self._encoder: Optional[object] = None

    def reset(self) -> None:
        self._encoder = None

    def export_state(self) -> dict:
        return {
            "encoder": (
                self._encoder.export_state()
                if self._encoder is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        if state["encoder"] is not None:
            self._encoder = self._encoder_factory()
            self._encoder.restore_state(state["encoder"])
        else:
            self._encoder = None

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            if self._encoder is not None:
                batch.tail_ptm_bytes = len(self._encoder.flush())
            return batch
        if len(batch) == 0:
            batch.ptm_bytes = np.zeros(0, dtype=np.int64)
            return batch
        if self._encoder is None:
            self._encoder = self._encoder_factory()
        encoder = self._encoder
        assert batch.events is not None and batch.events.events is not None
        batch.ptm_bytes = np.fromiter(
            (len(encoder.feed(event)) for event in batch.events.events),
            np.int64,
            count=len(batch),
        )
        return batch


class TpiuFrameStage(StageBase):
    """PTM byte counts -> TPIU frame bytes leaving the trace port."""

    name = "tpiu"

    def __init__(
        self,
        sync_period: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        if sync_period < 1:
            raise ValueError("sync_period must be >= 1")
        self.sync_period = sync_period
        self.reset()
        self._m_frames = self.metrics.counter("tpiu.frames")
        self._m_sync_frames = self.metrics.counter("tpiu.sync_frames")
        self._m_payload = self.metrics.counter("tpiu.payload_bytes")
        self._m_padding = self.metrics.counter("tpiu.padding_bytes")

    def reset(self) -> None:
        self._buffer = 0
        # A fresh TPIU emits a full-sync frame before its first frame.
        self._frames_since_sync = self.sync_period

    def export_state(self) -> dict:
        return {
            "buffer": self._buffer,
            "frames_since_sync": self._frames_since_sync,
        }

    def restore_state(self, state: dict) -> None:
        self._buffer = state["buffer"]
        self._frames_since_sync = state["frames_since_sync"]

    def _advance_frames(self, frames: int) -> int:
        """Consume ``frames`` data-frame slots; return sync frames."""
        period = self.sync_period
        g0 = period - self._frames_since_sync
        if frames <= g0:
            self._frames_since_sync += frames
            return 0
        syncs = (frames - g0 - 1) // period + 1
        last = g0 + (syncs - 1) * period
        self._frames_since_sync = frames - last
        return syncs

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            total = self._buffer + batch.tail_ptm_bytes
            complete, remainder = divmod(total, _TPIU_PAYLOAD)
            data_frames = complete + (1 if remainder else 0)
            syncs = self._advance_frames(data_frames)
            batch.tail_frame_bytes = _TPIU_FRAME * (data_frames + syncs)
            self._buffer = 0
            self._m_frames.inc(data_frames)
            self._m_sync_frames.inc(syncs)
            self._m_payload.inc(total)
            if remainder:
                self._m_padding.inc(_TPIU_PAYLOAD - remainder)
            return batch
        if len(batch) == 0:
            batch.frame_bytes = np.zeros(0, dtype=np.int64)
            return batch
        assert batch.ptm_bytes is not None
        cumulative = self._buffer + np.cumsum(batch.ptm_bytes)
        frames_after = cumulative // _TPIU_PAYLOAD
        frames_per_event = np.diff(frames_after, prepend=0)
        total_frames = int(frames_after[-1])
        period = self.sync_period
        g0 = period - self._frames_since_sync
        syncs_before = np.where(
            frames_after <= g0,
            0,
            (frames_after - g0 - 1) // period + 1,
        )
        syncs_per_event = np.diff(syncs_before, prepend=0)
        batch.frame_bytes = (frames_per_event + syncs_per_event) * _TPIU_FRAME
        total_syncs = int(syncs_before[-1])
        self._advance_frames(total_frames)
        self._buffer = int(cumulative[-1]) % _TPIU_PAYLOAD
        self._m_frames.inc(total_frames)
        self._m_sync_frames.inc(total_syncs)
        self._m_payload.inc(_TPIU_PAYLOAD * total_frames)
        return batch


class PtmFifoStage(StageBase):
    """CPU-internal PTM FIFO: frame bytes accumulate, drain in bulk.

    Reproduces :class:`repro.soc.cpu.PtmFifoModel` batching: bytes
    queue until occupancy reaches the threshold, then everything
    drains at 4 bytes per trace-port cycle.  At the tail everything
    still buffered drains as one delivering flush — even when the
    final push itself crosses the threshold (the reference loop once
    dropped that drain handle, silently losing the session's last
    vectors; both dataplanes now deliver them).
    """

    name = "ptm_fifo"

    def __init__(
        self,
        threshold_bytes: int = 176,
        port_clock: ClockDomain = RTAD_CLOCK,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.threshold_bytes = threshold_bytes
        self.port_clock = port_clock
        self.reset()
        self._m_occupancy = self.metrics.gauge("ptm_fifo.occupancy")
        self._m_flushes = self.metrics.counter("ptm_fifo.flushes")
        self._m_flushed_bytes = self.metrics.counter("ptm_fifo.flushed_bytes")

    def reset(self) -> None:
        self._occupancy = 0
        self._last_ns = 0.0

    def export_state(self) -> dict:
        return {"occupancy": self._occupancy, "last_ns": self._last_ns}

    def restore_state(self, state: dict) -> None:
        self._occupancy = state["occupancy"]
        self._last_ns = state["last_ns"]

    def _drain_ns(self, occupancy: int) -> float:
        return self.port_clock.to_ns((occupancy + 3) // 4)

    def _record_flush(self, flush: FifoFlush) -> None:
        self._m_flushes.inc()
        self._m_flushed_bytes.inc(flush.amount)
        self._m_occupancy.set(flush.amount)
        self._m_occupancy.set(0)

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            flushes: List[FifoFlush] = []
            occupancy = self._occupancy + batch.tail_frame_bytes
            if occupancy > 0:
                # End of session: everything left drains in one go and
                # carries the pending vectors with it, whether or not
                # the tail bytes happened to cross the threshold.
                flush = FifoFlush(
                    event_pos=0,
                    done_ns=self._last_ns + self._drain_ns(occupancy),
                    amount=occupancy,
                    delivers=True,
                )
                self._record_flush(flush)
                flushes.append(flush)
            self._occupancy = 0
            batch.flushes = flushes
            return batch
        if len(batch) == 0:
            return batch
        assert batch.frame_bytes is not None and batch.events is not None
        times = batch.events.time_ns
        cumulative = self._occupancy + np.cumsum(batch.frame_bytes)
        flushes = []
        flushed = 0
        threshold = self.threshold_bytes
        while True:
            i = int(
                np.searchsorted(cumulative, flushed + threshold, side="left")
            )
            if i >= len(cumulative):
                break
            amount = int(cumulative[i]) - flushed
            flush = FifoFlush(
                event_pos=i,
                done_ns=float(times[i]) + self._drain_ns(amount),
                amount=amount,
            )
            self._record_flush(flush)
            flushes.append(flush)
            flushed = int(cumulative[i])
        self._occupancy = int(cumulative[-1]) - flushed
        self._m_occupancy.set(self._occupancy)
        self._last_ns = float(times[-1])
        batch.flushes = flushes
        return batch


class IgmStage(StageBase):
    """Address map + vector encode over a batch of events.

    The mapper lookup becomes one ``searchsorted`` against the sorted
    monitored-address table (indices are assigned in sorted order, so
    position + 1 *is* the mapper index), and window completion becomes
    a sliding-window view over the mapped-index stream.  The stage
    mirrors its progress back onto the wrapped
    :class:`~repro.igm.vector_encoder.VectorEncoder` so sequence
    numbers stay coherent if the caller mixes batched and per-event
    use of the same SoC.
    """

    name = "igm"

    def __init__(
        self,
        mapper: AddressMapper,
        encoder: VectorEncoder,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        if encoder.stride != 1:
            raise ValueError(
                "batched IGM stage supports stride=1 encoders only"
            )
        self.mapper = mapper
        self.encoder = encoder
        self.reset()
        self._m_hits = self.metrics.counter("igm.mapper.hits")
        self._m_misses = self.metrics.counter("igm.mapper.misses")
        self._m_pushes = self.metrics.counter("igm.encoder.pushes")
        self._m_vectors = self.metrics.counter("igm.vectors_encoded")

    def reset(self) -> None:
        self._tail = np.zeros(0, dtype=np.int64)
        self._pushes = 0
        self._sequence = 0

    def export_state(self) -> dict:
        return {
            "tail": [int(v) for v in self._tail],
            "pushes": self._pushes,
            "sequence": self._sequence,
        }

    def restore_state(self, state: dict) -> None:
        self._tail = np.asarray(state["tail"], dtype=np.int64)
        self._pushes = state["pushes"]
        self._sequence = state["sequence"]
        self._sync_encoder()

    def _window_values(self, window: np.ndarray) -> np.ndarray:
        if self.encoder.mode is EncoderMode.SEQUENCE:
            return np.array(window, dtype=np.int64)
        counts = np.bincount(
            window, minlength=self.encoder.vocabulary_size
        ).astype(np.int64)
        return counts[: self.encoder.vocabulary_size]

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail or len(batch) == 0:
            self._sync_encoder()
            return batch
        ev = batch.events
        assert ev is not None
        table = np.fromiter(
            self.mapper.entries, np.int64, count=self.mapper.size
        )
        if len(table):
            pos = np.searchsorted(table, ev.target)
            safe = np.minimum(pos, len(table) - 1)
            hit = (pos < len(table)) & (table[safe] == ev.target)
        else:
            safe = np.zeros(len(ev), dtype=np.int64)
            hit = np.zeros(len(ev), dtype=bool)
        hit_idx = np.nonzero(hit)[0]
        num_hits = int(len(hit_idx))
        num_misses = len(ev) - num_hits
        self.mapper.hits += num_hits
        self.mapper.misses += num_misses
        self._m_hits.inc(num_hits)
        self._m_misses.inc(num_misses)
        self._m_pushes.inc(num_hits)

        window = self.encoder.window
        prior = self._pushes
        indices = (safe[hit_idx] + 1).astype(np.int64)
        vectors: List[InputVector] = []
        positions: List[int] = []
        emit_from = max(0, window - 1 - prior)
        if num_hits > emit_from:
            buf = np.concatenate([self._tail, indices])
            if window == 1:
                windows = indices[emit_from:, None]
            else:
                view = np.lib.stride_tricks.sliding_window_view(buf, window)
                start = len(self._tail) + emit_from - window + 1
                windows = view[start : start + (num_hits - emit_from)]
            for row, k in enumerate(range(emit_from, num_hits)):
                event_pos = int(hit_idx[k])
                vectors.append(
                    InputVector(
                        values=self._window_values(windows[row]),
                        sequence_number=self._sequence,
                        trigger_address=int(ev.target[event_pos]),
                        trigger_cycle=int(ev.cycle[event_pos]),
                    )
                )
                self._sequence += 1
                positions.append(event_pos)
        # carry the last window-1 mapped indices across the boundary
        keep = min(window - 1, prior + num_hits)
        if keep:
            merged = (
                indices
                if num_hits >= keep
                else np.concatenate([self._tail, indices])
            )
            self._tail = merged[len(merged) - keep :].copy()
        self._pushes = prior + num_hits
        self._m_vectors.inc(len(vectors))
        self._sync_encoder()
        batch.vectors = vectors
        batch.vector_event_pos = np.asarray(positions, dtype=np.int64)
        return batch

    def _sync_encoder(self) -> None:
        """Mirror progress onto the wrapped per-event encoder."""
        encoder = self.encoder
        encoder._sequence_number = self._sequence
        encoder.vectors_emitted = self._sequence
        encoder._history.clear()
        encoder._history.extend(int(v) for v in self._tail)


class DeliverStage(StageBase):
    """Join encoded vectors to FIFO drains and hand them to the sink.

    A vector leaves the IGM when the PTM FIFO drain that carries its
    trace bytes completes; the fixed IGM vectorize latency is added on
    top, exactly as in ``RtadSoc._deliver``.
    """

    name = "deliver"

    def __init__(
        self,
        sink: Callable[[InputVector, float], None],
        igm_pipe_ns: float = 24.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.sink = sink
        self.igm_pipe_ns = igm_pipe_ns
        self.reset()
        self._m_read = self.metrics.histogram("pipeline.read_ns")
        self._m_vectorize = self.metrics.histogram("pipeline.vectorize_ns")
        self._m_delivered = self.metrics.counter("pipeline.deliver.vectors")
        self._m_lost = self.metrics.counter("pipeline.deliver.lost_vectors")

    def reset(self) -> None:
        self._pending: List[InputVector] = []

    def export_state(self) -> dict:
        return {
            "pending": [
                {
                    "values": [int(v) for v in vector.values],
                    "sequence_number": vector.sequence_number,
                    "trigger_address": vector.trigger_address,
                    "trigger_cycle": vector.trigger_cycle,
                }
                for vector in self._pending
            ]
        }

    def restore_state(self, state: dict) -> None:
        self._pending = [
            InputVector(
                values=np.asarray(doc["values"], dtype=np.int64),
                sequence_number=doc["sequence_number"],
                trigger_address=doc["trigger_address"],
                trigger_cycle=doc["trigger_cycle"],
            )
            for doc in state["pending"]
        ]

    def _deliver(self, vectors: List[InputVector], flush_ns: float) -> None:
        for vector in vectors:
            trigger_ns = CPU_CLOCK.to_ns(vector.trigger_cycle)
            self._m_read.observe(max(0.0, flush_ns - trigger_ns))
            self._m_vectorize.observe(self.igm_pipe_ns)
            self._m_delivered.inc()
            self.sink(vector, flush_ns + self.igm_pipe_ns)

    def process(self, batch: TraceBatch) -> TraceBatch:
        self._account_batch(batch)
        if batch.tail:
            for flush in batch.flushes:
                if flush.delivers:
                    self._deliver(self._pending, flush.done_ns)
                    self._pending = []
            if self._pending:
                # Safety net: a tail whose flushes were all marked
                # non-delivering strands its pending vectors; count
                # the loss instead of leaking them into the next
                # session.  (PtmFifoStage no longer produces such a
                # tail — its end-of-session drain always delivers.)
                self._m_lost.inc(len(self._pending))
                self._pending = []
            return batch
        vectors = batch.vectors
        flushes = batch.flushes
        if not flushes:
            self._pending.extend(vectors)
            return batch
        bounds = np.fromiter(
            (flush.event_pos for flush in flushes),
            np.int64,
            count=len(flushes),
        )
        slots = (
            np.searchsorted(bounds, batch.vector_event_pos, side="left")
            if len(vectors)
            else np.zeros(0, dtype=np.int64)
        )
        for index, flush in enumerate(flushes):
            group = [
                vectors[k] for k in np.nonzero(slots == index)[0]
            ]
            if index == 0 and self._pending:
                group = self._pending + group
                self._pending = []
            if group:
                self._deliver(group, flush.done_ns)
        leftover = np.nonzero(slots == len(flushes))[0]
        self._pending.extend(vectors[k] for k in leftover)
        return batch
