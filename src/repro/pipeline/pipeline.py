"""Pipeline assembler: stages wired with bounded ports.

The :class:`Pipeline` owns an ordered list of stages and one input
:class:`~repro.pipeline.port.Port` per stage.  ``run`` slices the
event stream into chunks, admits each chunk at the head port, and
services stages *downstream-first* so a full port drains before its
producer runs again — cooperative backpressure with nothing dropped.
After the last chunk, a single tail batch walks the stage list in
order, draining carried state exactly like the per-event loop's
end-of-session flush.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.coresight.ptm import PtmConfig
from repro.errors import SocConfigError
from repro.igm.address_mapper import AddressMapper
from repro.igm.vector_encoder import InputVector, VectorEncoder
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.pipeline.batch import EventBatch, TraceBatch
from repro.pipeline.port import Port, PortPolicy
from repro.pipeline.stage import Stage
from repro.pipeline.stages import (
    DeliverStage,
    IgmStage,
    PtmFifoStage,
)
from repro.soc.clocks import RTAD_CLOCK, ClockDomain
from repro.workloads.cfg import BranchEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.frontends.base import TraceFrontend

#: Default events per batch: large enough to amortize numpy dispatch,
#: small enough that a chunk's arrays stay cache-resident.
DEFAULT_CHUNK_EVENTS = 32768


class Pipeline:
    """An ordered chain of stages connected by bounded ports."""

    def __init__(
        self,
        stages: Sequence[Stage],
        metrics: Optional[MetricsRegistry] = None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        port_capacity: int = 4,
        port_policy: PortPolicy = PortPolicy.STALL,
        verify_integrity: bool = True,
    ) -> None:
        if not stages:
            raise SocConfigError("pipeline needs at least one stage")
        if chunk_events < 1:
            raise SocConfigError("chunk_events must be >= 1")
        self.stages: List[Stage] = list(stages)
        self.metrics = metrics or NULL_REGISTRY
        self.chunk_events = chunk_events
        self.verify_integrity = verify_integrity
        self.ports: List[Port[TraceBatch]] = [
            Port(
                stage.name,
                capacity=port_capacity,
                policy=port_policy,
                metrics=metrics,
            )
            for stage in self.stages
        ]
        self._m_chunks = self.metrics.counter("pipeline.chunks")
        self._m_checks = self.metrics.counter("pipeline.integrity.checks")
        self._m_crc_bad = self.metrics.counter(
            "pipeline.integrity.crc_mismatches"
        )
        self._m_gaps = self.metrics.counter("pipeline.integrity.gaps")
        self._chunk_sequence = 0
        self._last_seen: List[Optional[int]] = [None] * len(self.stages)

    def reset(self) -> None:
        """New trace session: clear stage carry state and the ports."""
        for stage in self.stages:
            stage.reset()
        for port in self.ports:
            port.clear()
        self._chunk_sequence = 0
        self._last_seen = [None] * len(self.stages)

    # ------------------------------------------------------------------
    # Integrity tags
    # ------------------------------------------------------------------

    def _check_integrity(self, batch: TraceBatch, index: int) -> None:
        """Verify a batch's CRC/sequence tag at a stage boundary.

        Catches *silent* in-flight corruption (a batch mutated without
        re-stamping) and chunk gaps — failure modes the byte-level
        resync path downstream can never observe.
        """
        if batch.events is None or batch.chunk_crc is None:
            return
        self._m_checks.inc()
        if batch.events.integrity_crc() != batch.chunk_crc:
            self._m_crc_bad.inc()
        sequence = batch.chunk_sequence
        previous = self._last_seen[index]
        if previous is not None and sequence != previous + 1:
            self._m_gaps.inc()
        self._last_seen[index] = sequence

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Stage carry state for checkpointing (see repro.durability).

        Only a *quiescent* pipeline (no in-flight batches) can be
        checkpointed — batches hold numpy arrays and closures that do
        not serialize; round boundaries guarantee quiescence.
        """
        if any(not port.empty for port in self.ports):
            raise SocConfigError(
                "cannot checkpoint a pipeline with in-flight batches"
            )
        return {
            "chunk_sequence": self._chunk_sequence,
            "stages": [stage.export_state() for stage in self.stages],
        }

    def restore_state(self, state: dict) -> None:
        stage_states = state["stages"]
        if len(stage_states) != len(self.stages):
            raise SocConfigError(
                f"checkpoint has {len(stage_states)} stage states for a "
                f"{len(self.stages)}-stage pipeline"
            )
        self._chunk_sequence = state["chunk_sequence"]
        self._last_seen = [None] * len(self.stages)
        for stage, stage_state in zip(self.stages, stage_states):
            stage.restore_state(stage_state)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _service(self) -> bool:
        """One sweep over the stages, downstream first.

        Draining consumers before producers means a STALL port that
        refused a batch is guaranteed space the next time its producer
        runs — backpressure without busy-waiting.
        """
        progress = False
        for index in range(len(self.stages) - 1, -1, -1):
            port = self.ports[index]
            downstream = (
                self.ports[index + 1]
                if index + 1 < len(self.ports)
                else None
            )
            while not port.empty:
                if downstream is not None and downstream.full:
                    break
                batch = port.get()
                assert batch is not None
                if self.verify_integrity:
                    self._check_integrity(batch, index)
                stage = self.stages[index]
                out = stage.process(batch)
                if (
                    getattr(stage, "mutates_events", False)
                    and out.events is not None
                    and out.chunk_crc is not None
                ):
                    # Legitimate event mutation (e.g. fault injection)
                    # re-stamps the tag; silent corruptors do not.
                    out.chunk_crc = out.events.integrity_crc()
                if downstream is not None:
                    downstream.put(out)
                progress = True
        return progress

    def run(self, events: Sequence[BranchEvent]) -> TraceBatch:
        """Push a whole event stream through, then drain the tail."""
        total = len(events)
        start = 0
        head = self.ports[0]
        while start < total:
            chunk = events[start : start + self.chunk_events]
            batch = TraceBatch(events=EventBatch.from_events(chunk))
            if self.verify_integrity:
                batch.chunk_sequence = self._chunk_sequence
                batch.chunk_crc = batch.events.integrity_crc()
            self._chunk_sequence += 1
            self._m_chunks.inc()
            while not head.put(batch):
                if not self._service():  # pragma: no cover - safety net
                    raise SocConfigError(
                        "pipeline stalled with no serviceable stage"
                    )
            start += len(chunk)
            self._service()
        while any(not port.empty for port in self.ports):
            if not self._service():  # pragma: no cover - safety net
                raise SocConfigError(
                    "pipeline failed to drain queued batches"
                )
        tail = TraceBatch.tail_marker()
        for stage in self.stages:
            tail = stage.process(tail)
        return tail


def build_trace_pipeline(
    mapper: AddressMapper,
    encoder: VectorEncoder,
    sink: Callable[[InputVector, float], None],
    *,
    ptm_config: Optional[PtmConfig] = None,
    tpiu_sync_period: int = 64,
    fifo_threshold_bytes: int = 176,
    port_clock: ClockDomain = RTAD_CLOCK,
    igm_pipe_ns: float = 24.0,
    metrics: Optional[MetricsRegistry] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    port_capacity: int = 4,
    fault_plan: Optional["FaultPlan"] = None,
    verify_integrity: bool = True,
    frontend: Optional["TraceFrontend"] = None,
) -> Pipeline:
    """Assemble the standard five-stage trace dataplane.

    Mirrors the wiring of :class:`repro.soc.rtad.RtadSoc`: the
    frontend's encode + framing stages (CoreSight PTM/TPIU by
    default), PTM-FIFO batching, address map + vector encode, and
    delivery into ``sink`` (usually ``Mcm.push``).  ``frontend``
    selects the trace grammar; the legacy ``ptm_config`` /
    ``tpiu_sync_period`` knobs configure the default CoreSight
    frontend and must not be combined with an explicit one.

    ``fault_plan`` optionally inserts fault-injection stages: an
    event-level injector ahead of the encode stages and a
    FIFO-overflow model ahead of delivery.  A plan with only zero
    rates (or ``None``) leaves the pipeline byte-identical to the
    fault-free build.
    """
    if frontend is None:
        # Deferred import: repro.frontends late-binds its builtins.
        from repro.frontends.coresight import CoreSightFrontend

        frontend = CoreSightFrontend(
            ptm_config=ptm_config, sync_period=tpiu_sync_period
        )
    elif ptm_config is not None:
        raise SocConfigError(
            "pass ptm_config through the frontend, not alongside it"
        )
    stages: List[Stage] = [
        *frontend.build_encode_stages(metrics=metrics),
        PtmFifoStage(
            threshold_bytes=fifo_threshold_bytes,
            port_clock=port_clock,
            metrics=metrics,
        ),
        IgmStage(mapper, encoder, metrics=metrics),
        DeliverStage(sink, igm_pipe_ns=igm_pipe_ns, metrics=metrics),
    ]
    if fault_plan is not None and not fault_plan.is_noop:
        # Deferred import: repro.faults.stages imports this package.
        from repro.faults.plan import EVENT_KINDS, FaultKind
        from repro.faults.stages import (
            ChunkCorruptStage,
            EventFaultStage,
            VectorFaultStage,
        )

        if fault_plan.active((FaultKind.CHUNK_CORRUPT,)):
            # Ahead of the IGM so the silent mutation has a real
            # downstream effect (a wrong mapper lookup).
            stages.insert(
                len(stages) - 2,
                ChunkCorruptStage(fault_plan, metrics=metrics),
            )
        if fault_plan.active(EVENT_KINDS):
            stages.insert(
                0, EventFaultStage(fault_plan, metrics=metrics)
            )
        if fault_plan.active((FaultKind.FIFO_OVERFLOW,)):
            stages.insert(
                len(stages) - 1,
                VectorFaultStage(fault_plan, metrics=metrics),
            )
    return Pipeline(
        stages,
        metrics=metrics,
        chunk_events=chunk_events,
        port_capacity=port_capacity,
        verify_integrity=verify_integrity,
    )
