"""Batch carriers flowing between dataplane stages.

A :class:`TraceBatch` is the unit of work a stage processes: a chunk
of branch events in struct-of-arrays form plus the per-event artifacts
each stage annotates as the batch moves down the pipeline (PTM byte
counts, TPIU frame bytes, FIFO flush edges, encoded vectors).  A
*tail* batch carries no events; it tells every stage to drain its
carried state exactly the way the per-event loop's end-of-session
flush does.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.igm.vector_encoder import InputVector
from repro.soc.clocks import CPU_CLOCK, ClockDomain
from repro.workloads.cfg import BranchEvent, BranchKind, is_map_only


@dataclass
class EventBatch:
    """Struct-of-arrays view of a chunk of :class:`BranchEvent`.

    ``time_ns`` is precomputed with the CPU clock so downstream stages
    never touch the event objects on the hot path.  ``events`` keeps a
    reference to the original slice for stages that fall back to the
    per-event reference implementation under non-default configs.
    """

    cycle: np.ndarray      # int64 CPU cycles
    source: np.ndarray     # int64 branch source addresses
    target: np.ndarray     # int64 branch target addresses
    atom: np.ndarray       # bool: conditional and not taken (PTM atom)
    syscall: np.ndarray    # bool: SYSCALL kind (exception info byte)
    time_ns: np.ndarray    # float64 retirement times
    events: Optional[Sequence[BranchEvent]] = None

    @classmethod
    def from_events(
        cls,
        events: Sequence[BranchEvent],
        clock: ClockDomain = CPU_CLOCK,
    ) -> "EventBatch":
        n = len(events)
        cycle = np.fromiter((e.cycle for e in events), np.int64, count=n)
        source = np.fromiter((e.source for e in events), np.int64, count=n)
        target = np.fromiter((e.target for e in events), np.int64, count=n)
        atom = np.fromiter(
            (is_map_only(e) for e in events), bool, count=n
        )
        syscall = np.fromiter(
            (e.kind is BranchKind.SYSCALL for e in events), bool, count=n
        )
        # Identical float op sequence to ClockDomain.to_ns per event.
        time_ns = cycle.astype(np.float64) * clock.period_ns
        return cls(
            cycle=cycle,
            source=source,
            target=target,
            atom=atom,
            syscall=syscall,
            time_ns=time_ns,
            events=events,
        )

    def __len__(self) -> int:
        return int(self.cycle.shape[0])

    def integrity_crc(self) -> int:
        """CRC32 over the event columns (end-to-end integrity tag).

        Covers exactly the data stages consume (cycle, source, target,
        atom, syscall), so any in-flight mutation of a batch — silent
        corruption the resync path cannot see — changes the tag.
        """
        crc = zlib.crc32(self.cycle.tobytes())
        crc = zlib.crc32(self.source.tobytes(), crc)
        crc = zlib.crc32(self.target.tobytes(), crc)
        crc = zlib.crc32(self.atom.tobytes(), crc)
        return zlib.crc32(self.syscall.tobytes(), crc)


@dataclass(frozen=True)
class FifoFlush:
    """One PTM-FIFO drain: everything buffered leaves the CPU at once.

    ``event_pos`` is the index (within the batch) of the event whose
    push crossed the threshold; tail flushes use ``len(batch)``.
    ``delivers`` mirrors the reference loop: a threshold flush whose
    drain-completion handle was discarded (the end-of-session push in
    ``run_events``) still counts as a flush but delivers no vectors.
    """

    event_pos: int
    done_ns: float
    amount: int
    delivers: bool = True


@dataclass
class TraceBatch:
    """The carrier annotated by successive stages."""

    events: Optional[EventBatch] = None
    tail: bool = False
    # --- integrity tags (stamped by Pipeline.run, checked per stage) ---
    chunk_sequence: Optional[int] = None
    chunk_crc: Optional[int] = None
    # --- PTM encode stage ---
    ptm_bytes: Optional[np.ndarray] = None   # int64 bytes emitted per event
    tail_ptm_bytes: int = 0                  # end-of-session atom flush
    # --- TPIU framing stage ---
    frame_bytes: Optional[np.ndarray] = None  # int64 frame bytes per event
    tail_frame_bytes: int = 0                 # final (partial) frame bytes
    # --- PTM FIFO stage ---
    flushes: List[FifoFlush] = field(default_factory=list)
    # --- IGM stage ---
    vectors: List[InputVector] = field(default_factory=list)
    vector_event_pos: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return 0 if self.events is None else len(self.events)

    @classmethod
    def tail_marker(cls) -> "TraceBatch":
        return cls(events=None, tail=True)
