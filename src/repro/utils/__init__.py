"""Shared low-level utilities: bitstreams, fixed point, RNG, statistics."""

from repro.utils.bitstream import BitReader, BitWriter, bytes_to_words, words_to_bytes
from repro.utils.fixed_point import FixedPointFormat, Q16_16, Q8_8
from repro.utils.rng import make_rng, derive_seed
from repro.utils.stats import geometric_mean, summarize, Summary

__all__ = [
    "BitReader",
    "BitWriter",
    "bytes_to_words",
    "words_to_bytes",
    "FixedPointFormat",
    "Q16_16",
    "Q8_8",
    "make_rng",
    "derive_seed",
    "geometric_mean",
    "summarize",
    "Summary",
]
