"""Byte/word stream helpers used by the CoreSight trace path.

The PTM emits a *byte* stream; the TPIU forwards it to IGM over a 32-bit
port.  These helpers convert between the two representations and provide
little bit-level readers/writers for packet payload fields.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import PacketDecodeError

WORD_BYTES = 4


class BitWriter:
    """Accumulates little-endian bit fields into a byte buffer.

    Bits are written LSB-first within each byte, matching the 7-bit
    continuation chunks used by PTM branch-address packets.
    """

    def __init__(self) -> None:
        self._bytes: List[int] = []
        self._bit_pos = 0  # bits already used in the last byte

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (LSB first)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width):
            bit = (value >> i) & 1
            if self._bit_pos == 0:
                self._bytes.append(0)
            if bit:
                self._bytes[-1] |= 1 << self._bit_pos
            self._bit_pos = (self._bit_pos + 1) % 8

    def write_byte(self, value: int) -> None:
        """Append a full byte; requires byte alignment."""
        if self._bit_pos != 0:
            raise ValueError("write_byte requires byte alignment")
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte out of range: {value}")
        self._bytes.append(value)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        self._bit_pos = 0

    def getvalue(self) -> bytes:
        return bytes(self._bytes)

    def __len__(self) -> int:
        return len(self._bytes)


class BitReader:
    """Reads little-endian bit fields from a byte buffer."""

    def __init__(self, data: bytes, start: int = 0) -> None:
        self._data = data
        self._byte_pos = start
        self._bit_pos = 0

    @property
    def byte_pos(self) -> int:
        return self._byte_pos

    def exhausted(self) -> bool:
        return self._byte_pos >= len(self._data)

    def read_bits(self, width: int) -> int:
        value = 0
        for i in range(width):
            if self._byte_pos >= len(self._data):
                raise PacketDecodeError("bit read past end of stream")
            bit = (self._data[self._byte_pos] >> self._bit_pos) & 1
            value |= bit << i
            self._bit_pos += 1
            if self._bit_pos == 8:
                self._bit_pos = 0
                self._byte_pos += 1
        return value

    def read_byte(self) -> int:
        if self._bit_pos != 0:
            raise PacketDecodeError("read_byte requires byte alignment")
        if self._byte_pos >= len(self._data):
            raise PacketDecodeError("byte read past end of stream")
        value = self._data[self._byte_pos]
        self._byte_pos += 1
        return value

    def peek_byte(self) -> int:
        if self._byte_pos >= len(self._data):
            raise PacketDecodeError("peek past end of stream")
        return self._data[self._byte_pos]

    def align(self) -> None:
        if self._bit_pos != 0:
            self._bit_pos = 0
            self._byte_pos += 1


def bytes_to_words(data: bytes, pad_byte: int = 0x00) -> List[int]:
    """Pack a byte stream into 32-bit little-endian words.

    The TPIU hands IGM one 32-bit word per beat; a trailing partial word
    is padded with ``pad_byte``.
    """
    words = []
    for offset in range(0, len(data), WORD_BYTES):
        chunk = data[offset:offset + WORD_BYTES]
        if len(chunk) < WORD_BYTES:
            chunk = chunk + bytes([pad_byte]) * (WORD_BYTES - len(chunk))
        words.append(int.from_bytes(chunk, "little"))
    return words


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Unpack 32-bit little-endian words back into a byte stream."""
    out = bytearray()
    for word in words:
        if not 0 <= word <= 0xFFFFFFFF:
            raise ValueError(f"word out of range: {word:#x}")
        out += word.to_bytes(WORD_BYTES, "little")
    return bytes(out)


def chunk7(value: int) -> List[int]:
    """Split a non-negative integer into 7-bit little-endian chunks.

    Used by PTM branch-address compression: each byte carries 7 address
    bits plus a continuation bit.  At least one chunk is always produced.
    """
    if value < 0:
        raise ValueError("chunk7 requires a non-negative value")
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append(value & 0x7F)
        value >>= 7
    return chunks


def unchunk7(chunks: Iterable[int]) -> int:
    """Inverse of :func:`chunk7`."""
    value = 0
    for i, chunk in enumerate(chunks):
        if not 0 <= chunk <= 0x7F:
            raise ValueError(f"chunk out of range: {chunk}")
        value |= chunk << (7 * i)
    return value
