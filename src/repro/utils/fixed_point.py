"""Fixed-point formats for the quantized ML deployment path.

ML-MIAOW inherits MIAOW's FP32 datapath, but the paper's trimming flow
keeps only the circuits the deployed models exercise; a quantized
deployment exercises strictly fewer, so ``repro.ml.quantize`` offers a
fixed-point path.  This module holds the signed Qm.n arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement Qm.n fixed-point format.

    ``integer_bits`` includes the sign bit, so total width is
    ``integer_bits + fraction_bits``.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("need at least the sign bit")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")

    @property
    def width(self) -> int:
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.width - 1)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def quantize(self, value: float) -> int:
        """Convert a float to the nearest representable raw integer,
        saturating at the format limits."""
        raw = int(round(value * self.scale))
        return max(self.min_raw, min(self.max_raw, raw))

    def dequantize(self, raw: int) -> float:
        return raw / self.scale

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        raw = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(raw, self.min_raw, self.max_raw).astype(np.int64)

    def dequantize_array(self, raw: np.ndarray) -> np.ndarray:
        return np.asarray(raw, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize — the value the hardware would see."""
        return self.dequantize_array(self.quantize_array(values))

    def saturating_add(self, a: int, b: int) -> int:
        return max(self.min_raw, min(self.max_raw, a + b))

    def multiply(self, a: int, b: int) -> int:
        """Raw fixed-point multiply with rounding and saturation."""
        product = a * b
        # round-to-nearest on the discarded fraction bits
        rounding = 1 << (self.fraction_bits - 1) if self.fraction_bits else 0
        shifted = (product + rounding) >> self.fraction_bits
        return max(self.min_raw, min(self.max_raw, shifted))

    def __str__(self) -> str:
        return f"Q{self.integer_bits}.{self.fraction_bits}"


Q16_16 = FixedPointFormat(integer_bits=16, fraction_bits=16)
Q8_8 = FixedPointFormat(integer_bits=8, fraction_bits=8)
Q4_12 = FixedPointFormat(integer_bits=4, fraction_bits=12)
