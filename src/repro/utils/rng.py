"""Deterministic random-number utilities.

Everything stochastic in the reproduction — synthetic CFGs, branch
walks, ELM random hidden weights, attack injection points — derives its
generator from an explicit seed so every experiment is replayable.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20190325  # DATE 2019 conference date


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from a base seed and a label path.

    Labels keep independent subsystems (workload walk vs. attack
    injection vs. model init) decorrelated while remaining reproducible
    across processes — the derivation hashes, it does not depend on
    Python's per-process ``hash``.
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def make_child_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Convenience: :func:`derive_seed` then :func:`make_rng`."""
    return make_rng(derive_seed(base_seed, *labels))
