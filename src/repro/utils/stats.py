"""Small statistics helpers for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, as used for the Fig. 6 overhead summary.

    Values must be positive; the paper reports overhead percentages
    which we pass through as (1 + overhead) would hide small values, so
    like the paper we take the plain geomean of the raw percentages.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(array <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
    )
