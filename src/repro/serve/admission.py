"""Layered overload controls for the ingestion front door.

Admission is a funnel — each layer is cheaper than the one it
protects, and each refusal carries a retry-after hint so clients can
back off instead of hammering:

1. :class:`CircuitBreaker` (per tenant) — integrates the SoC
   manager's HEALTHY/DEGRADED/QUARANTINED health machine with the
   front door: a DEGRADED (or shed-storming) tenant's stream is
   *sampled* (1 in ``sample_stride`` frames admitted) before the
   health machine ever has to quarantine it; a QUARANTINED tenant's
   stream is refused outright until probation ends.
2. :class:`TokenBucket` (per tenant) — sustained event-rate cap with
   a burst allowance.
3. :class:`AdmissionController` (global) — queue-depth cap plus
   deadline-aware shedding: using an EWMA of the drain loop's
   observed service rate, a batch whose *predicted* queueing delay
   already exceeds the ingest deadline is refused at the door — work
   that would go stale is never admitted, which is what keeps the
   admitted-request tail latency bounded under overload.

Retry-after hints come from one shared :class:`repro.errors.Backoff`
policy (bounded exponential, deterministic seeded jitter) — the same
helper that paces fleet worker restarts.  Consecutive refusals
escalate the hint and a successful admission resets it, so a client
hammering a saturated door is told to back off harder each time while
distinct doors stay de-correlated.

All classes take explicit ``now_s`` timestamps, so tests drive them
with a fake clock and the asyncio server with ``time.monotonic()``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import Backoff, ServeError
from repro.soc.manager import TenantHealth


class TokenBucket:
    """Sustained-rate limiter: ``rate_per_s`` tokens/s, ``burst`` cap."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ServeError(f"rate_per_s must be positive, got {rate_per_s}")
        if burst <= 0:
            raise ServeError(f"burst must be positive, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s: Optional[float] = None

    def _refill(self, now_s: float) -> None:
        if self._last_s is not None and now_s > self._last_s:
            self._tokens = min(
                self.burst,
                self._tokens + (now_s - self._last_s) * self.rate_per_s,
            )
        self._last_s = now_s

    def admit(self, amount: float, now_s: float) -> Tuple[bool, float]:
        """Try to take ``amount`` tokens; ``(ok, retry_after_s)``.

        A refusal consumes nothing; ``retry_after_s`` is how long the
        client must wait (at zero incoming load) for the bucket to
        cover ``amount``.
        """
        self._refill(now_s)
        if amount <= self._tokens:
            self._tokens -= amount
            return True, 0.0
        needed = min(amount, self.burst) - self._tokens
        return False, needed / self.rate_per_s

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionController:
    """Global queue-depth + deadline-aware shedding.

    ``deadline_us`` reuses the arbiter watchdog's vocabulary: the same
    per-unit-of-work budget, applied at the door (wall-clock queueing
    estimate) instead of at the grant (simulated service time).
    """

    def __init__(
        self,
        deadline_us: Optional[float],
        max_queued_events: int,
        drain_rate_guess_eps: float = 50_000.0,
        ewma_alpha: float = 0.3,
        backoff: Optional[Backoff] = None,
    ) -> None:
        if deadline_us is not None and not deadline_us > 0:
            raise ServeError(
                f"deadline_us must be positive (or None), got {deadline_us!r}"
            )
        if max_queued_events < 1:
            raise ServeError("max_queued_events must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ServeError("ewma_alpha must be in (0, 1]")
        self.deadline_us = deadline_us
        self.max_queued_events = max_queued_events
        self.queued_events = 0
        self._alpha = ewma_alpha
        #: Events/second the drain loop has been observed to retire.
        self.drain_rate_eps = drain_rate_guess_eps
        #: Retry-after policy; consecutive refusals walk the schedule,
        #: an admission resets it.
        self.backoff = backoff or Backoff(
            base_s=0.002,
            cap_s=2.0,
            multiplier=2.0,
            jitter=0.5,
            label="serve.admission",
        )
        self._refusals = 0

    # -- bookkeeping the server calls around the drain loop ------------

    def admitted(self, events: int) -> None:
        self.queued_events += events
        self._refusals = 0

    def shed_hint_s(self) -> float:
        """One refusal's retry-after hint; escalates until an admit.

        Shared by every post-breaker shed site (queue depth, deadline
        prediction, a full tenant window), so a client that keeps
        being refused — for whatever mix of reasons — sees one
        coherent, escalating backoff schedule instead of per-layer
        guesses computed from instantaneous queue state.
        """
        hint = self.backoff.delay(self._refusals)
        self._refusals += 1
        return hint

    def drained(self, events: int, elapsed_s: float) -> None:
        """One drain round finished: update queue depth + rate EWMA."""
        self.queued_events = max(0, self.queued_events - events)
        if events and elapsed_s > 0:
            observed = events / elapsed_s
            self.drain_rate_eps += self._alpha * (
                observed - self.drain_rate_eps
            )

    def shed_stale(self, events: int) -> None:
        """Stale work removed from the queue without being served."""
        self.queued_events = max(0, self.queued_events - events)

    # -- the admission decision ----------------------------------------

    def check(self, events: int) -> Tuple[Optional[str], float]:
        """Would admitting ``events`` violate a control?

        Returns ``(None, 0.0)`` to admit, else a ``(reason,
        retry_after_s)`` shed decision — ``"queue_depth"`` when the
        bounded queue is full, ``"deadline"`` when the predicted wait
        for this batch already exceeds the ingest deadline.  The
        retry-after hint walks the shared :class:`Backoff` schedule
        (see :meth:`shed_hint_s`).
        """
        if self.queued_events + events > self.max_queued_events:
            return "queue_depth", self.shed_hint_s()
        if self.deadline_us is not None:
            predicted_wait_s = self.queued_events / max(
                1.0, self.drain_rate_eps
            )
            deadline_s = self.deadline_us / 1e6
            if predicted_wait_s > deadline_s:
                return "deadline", self.shed_hint_s()
        return None, 0.0


class BreakerState(enum.Enum):
    """Per-tenant front-door state, ordered by severity."""

    CLOSED = "closed"        # full ingest
    SAMPLING = "sampling"    # degraded: 1 in sample_stride admitted
    OPEN = "open"            # refused until probation/recovery


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds of the per-tenant circuit breaker."""

    #: Shed fraction (sheds / frames) in one round above which the
    #: round counts against the tenant.
    trip_shed_ratio: float = 0.5
    #: Consecutive bad rounds before CLOSED -> SAMPLING.
    trip_rounds: int = 2
    #: Consecutive clean rounds before SAMPLING -> CLOSED.
    recover_rounds: int = 2
    #: In SAMPLING, admit one frame in this many.
    sample_stride: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.trip_shed_ratio <= 1.0:
            raise ServeError("trip_shed_ratio must be in (0, 1]")
        for name in ("trip_rounds", "recover_rounds", "sample_stride"):
            if getattr(self, name) < 1:
                raise ServeError(f"{name} must be >= 1")


class CircuitBreaker:
    """One tenant's front-door state machine.

    Health dominates: QUARANTINED forces OPEN and DEGRADED forces at
    least SAMPLING, so the front door always respects the dataplane's
    judgment.  On top of that the breaker trips to SAMPLING on its own
    when a tenant's frames keep being shed (a flooding client keeps
    paying for its own backlog, healthy neighbours do not).
    """

    def __init__(self, policy: Optional[BreakerPolicy] = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.state = BreakerState.CLOSED
        self.health = TenantHealth.HEALTHY
        self.trips = 0
        self.recoveries = 0
        self._bad_rounds = 0
        self._clean_rounds = 0
        self._frame_seq = 0
        # Current-round frame accounting, consumed by observe_round.
        self._frames = 0
        self._sheds = 0

    # -- per-frame -----------------------------------------------------

    def admit_frame(self) -> Tuple[bool, str]:
        """Gate one frame; ``(admit, reason)``.

        ``reason`` is ``""`` when admitted, else the shed-counter
        suffix (``"breaker_open"`` / ``"sampled"``).
        """
        self._frames += 1
        if self.state is BreakerState.OPEN:
            return False, "breaker_open"
        if self.state is BreakerState.SAMPLING:
            self._frame_seq += 1
            if self._frame_seq % self.policy.sample_stride != 1:
                return False, "sampled"
        return True, ""

    def record_shed(self) -> None:
        """A downstream layer shed one of this tenant's frames."""
        self._sheds += 1

    def record_refused_frame(self) -> None:
        """A frame refused *before* the admission gate ever saw it
        (undecodable payload, protocol violation): counts as both an
        attempt and a shed, so a corrupt-heavy stream still trips."""
        self._frames += 1
        self._sheds += 1

    # -- per-round -----------------------------------------------------

    def observe_round(self, health: TenantHealth) -> None:
        """Fold one drain round's evidence into the state machine."""
        self.health = health
        frames, sheds = self._frames, self._sheds
        self._frames = 0
        self._sheds = 0
        if health is TenantHealth.QUARANTINED:
            if self.state is not BreakerState.OPEN:
                self.state = BreakerState.OPEN
                self.trips += 1
            return
        if self.state is BreakerState.OPEN:
            # Probation ended: degrade to sampled ingest, not full.
            self.state = BreakerState.SAMPLING
            self._clean_rounds = 0
            self._bad_rounds = 0
            return
        if health is TenantHealth.DEGRADED:
            if self.state is BreakerState.CLOSED:
                self.state = BreakerState.SAMPLING
                self.trips += 1
            self._clean_rounds = 0
            return
        # HEALTHY: the breaker's own shed-storm logic.
        shed_ratio = sheds / frames if frames else 0.0
        if frames and shed_ratio > self.policy.trip_shed_ratio:
            self._bad_rounds += 1
            self._clean_rounds = 0
            if (
                self.state is BreakerState.CLOSED
                and self._bad_rounds >= self.policy.trip_rounds
            ):
                self.state = BreakerState.SAMPLING
                self.trips += 1
        else:
            self._bad_rounds = 0
            if self.state is BreakerState.SAMPLING:
                self._clean_rounds += 1
                if self._clean_rounds >= self.policy.recover_rounds:
                    self.state = BreakerState.CLOSED
                    self._clean_rounds = 0
                    self.recoveries += 1
