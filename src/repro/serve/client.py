"""Client helpers for the ingestion front door.

:class:`ServeClient` is the plain async client: HELLO, stream frames,
BYE, with one response expected per request frame.  It works over any
``(StreamReader, writer)`` pair — a real TCP connection or the
server's in-memory transport (``IngestServer.local_connection``), which
is how the soak harness attaches 1000+ clients without touching file
descriptors.

:class:`SimulatedClient` wraps it with a
:class:`~repro.faults.connection.ConnectionFaultInjector`: every
outgoing frame draws a :class:`~repro.faults.connection.FrameFate` from
the seeded plan and is delivered accordingly — dribbled (slow-loris),
cut mid-frame, corrupted in flight, or duplicated into a burst flood.
The chaos sweep uses it to prove the server sheds and recovers without
poisoning healthy tenants.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.faults.connection import (
    LORIS_CHUNK_BYTES,
    ConnectionFaultInjector,
    FrameFate,
)
from repro.serve import protocol
from repro.workloads.cfg import BranchEvent


class ClientDisconnected(ServeError):
    """The (simulated) client died mid-frame, as instructed."""


class ServeClient:
    """One client session over an established transport."""

    def __init__(self, reader: asyncio.StreamReader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self._decoder = protocol.FrameDecoder()
        self._pending: List[protocol.Frame] = []
        self._sequence = 0
        #: Response tallies, handy for soak/chaos bookkeeping.
        self.acks = 0
        self.sheds = 0
        self.errors = 0
        self.accepted_events = 0
        self.retry_after_ms: List[float] = []

    @classmethod
    def local(cls, server) -> "ServeClient":
        """Attach in-memory to an :class:`IngestServer`."""
        reader, writer = server.local_connection()
        return cls(reader, writer)

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # -- transport -----------------------------------------------------

    async def _send(self, frame: bytes) -> None:
        self.writer.write(frame)
        await self.writer.drain()

    async def _recv(self) -> protocol.Frame:
        while not self._pending:
            data = await self.reader.read(4096)
            if not data:
                raise ClientDisconnected("server closed the session")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.pop(0)

    def _note(self, frame: protocol.Frame) -> Dict[str, object]:
        document = protocol.decode_json(frame.payload)
        if frame.type == protocol.FrameType.ACK:
            self.acks += 1
            self.accepted_events += int(document.get("accepted_events", 0))
        elif frame.type == protocol.FrameType.SHED:
            self.sheds += 1
            self.retry_after_ms.append(
                float(document.get("retry_after_ms", 0.0))
            )
        elif frame.type == protocol.FrameType.ERR:
            self.errors += 1
        document["frame_type"] = frame.type
        return document

    async def _request(self, frame: bytes) -> Dict[str, object]:
        await self._send(frame)
        return self._note(await self._recv())

    # -- session API ---------------------------------------------------

    async def hello(
        self,
        tenant: str,
        mode: str = protocol.MODE_EVENTS,
        frontend: Optional[str] = None,
    ) -> Dict[str, object]:
        response = await self._request(
            protocol.hello_frame(tenant, mode, frontend)
        )
        if response["frame_type"] == protocol.FrameType.ERR:
            raise ServeError(f"HELLO refused: {response.get('error')}")
        return response

    async def send_events(
        self, events: Sequence[BranchEvent]
    ) -> Dict[str, object]:
        self._sequence += 1
        return await self._request(
            protocol.events_frame(events, sequence=self._sequence)
        )

    async def send_raw(self, stream: bytes) -> Dict[str, object]:
        return await self._request(protocol.raw_frame(stream))

    async def bye(self) -> Dict[str, object]:
        response = await self._request(protocol.bye_frame())
        self.close()
        return response

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class SimulatedClient(ServeClient):
    """A :class:`ServeClient` whose frames suffer seeded fates.

    ``loris_delay_s`` is the real pause between slow-loris dribbles;
    keep it at 0 for deterministic chaos runs (the dribble still
    exercises partial-read reassembly) and set it above the server's
    ``idle_timeout_s`` to force slow-client timeouts.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer,
        injector: Optional[ConnectionFaultInjector] = None,
        loris_delay_s: float = 0.0,
    ) -> None:
        super().__init__(reader, writer)
        self.injector = injector
        self.loris_delay_s = loris_delay_s
        self.disconnected = False

    @classmethod
    def local_faulty(
        cls,
        server,
        injector: Optional[ConnectionFaultInjector],
        loris_delay_s: float = 0.0,
    ) -> "SimulatedClient":
        reader, writer = server.local_connection()
        return cls(reader, writer, injector, loris_delay_s)

    async def _write_slow(self, frame: bytes) -> None:
        for start in range(0, len(frame), LORIS_CHUNK_BYTES):
            self.writer.write(frame[start:start + LORIS_CHUNK_BYTES])
            await self.writer.drain()
            if self.loris_delay_s > 0:
                await asyncio.sleep(self.loris_delay_s)
            else:
                await asyncio.sleep(0)

    def _apply_corruption(self, frame: bytes, fate: FrameFate) -> bytes:
        """Flip one payload byte *inside the body* so framing survives
        and the server's CRC check is what catches it."""
        body_len = len(frame) - protocol.HEADER_BYTES
        if body_len <= 1:
            return frame
        # Skip the type byte too: a corrupted type with a valid-looking
        # body would still fail CRC, but flipping payload keeps the
        # failure mode uniform.
        offset = protocol.HEADER_BYTES + 1 + (
            fate.corrupt_offset % (body_len - 1)
        )
        corrupted = bytearray(frame)
        corrupted[offset] ^= 0xFF
        return bytes(corrupted)

    async def _deliver(self, frame: bytes, fate: FrameFate) -> int:
        """Put one fated frame on the wire; returns frames delivered."""
        if fate.disconnect:
            cut = max(1, int(len(frame) * fate.cut_fraction))
            self.writer.write(frame[:cut])
            await self.writer.drain()
            self.close()
            self.disconnected = True
            raise ClientDisconnected("injected mid-frame disconnect")
        if fate.corrupt:
            frame = self._apply_corruption(frame, fate)
        copies = 1 + fate.flood_copies
        for _ in range(copies):
            if fate.slow:
                await self._write_slow(frame)
            else:
                await self._send(frame)
        return copies

    async def _request(self, frame: bytes) -> Dict[str, object]:
        fate = (
            self.injector.draw()
            if self.injector is not None
            else FrameFate()
        )
        copies = await self._deliver(frame, fate)
        responses = [self._note(await self._recv()) for _ in range(copies)]
        return responses[-1]
